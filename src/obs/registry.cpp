#include "campuslab/obs/registry.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <utility>

#include "campuslab/obs/stage_timer.h"

namespace campuslab::obs {

// ---------------------------------------------------------------------------
// Histogram

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot snap;
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += snap.buckets[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile, 1-based.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // The rank falls in bucket b: interpolate linearly by rank position
    // between the bucket's bounds.
    const double lo = b == 0 ? 0.0
                             : static_cast<double>(Histogram::bucket_upper(b - 1));
    const double hi = static_cast<double>(Histogram::bucket_upper(b));
    const double frac =
        (rank - before) / static_cast<double>(buckets[b]);
    return lo + frac * (hi - lo);
  }
  return static_cast<double>(Histogram::bucket_upper(kBuckets - 1));
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  // Leaked on purpose: references handed out must outlive every static
  // and thread that might still update a metric during shutdown.
  static Registry* const instance = new Registry();
  return *instance;
}

namespace {
char kind_marker(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return 'c';
    case MetricKind::kGauge: return 'g';
    case MetricKind::kHistogram: return 'h';
  }
  return '?';
}

std::string make_key(MetricKind kind, std::string_view name,
                     std::string_view labels) {
  std::string key;
  key.reserve(name.size() + labels.size() + 4);
  key.push_back(kind_marker(kind));
  key.push_back(':');
  key.append(name);
  key.push_back('{');
  key.append(labels);
  key.push_back('}');
  return key;
}
}  // namespace

Registry::Entry& Registry::entry_for(MetricKind kind, std::string_view name,
                                     std::string_view labels) {
  std::string key = make_key(kind, name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(std::move(key));
  if (inserted) {
    Entry& e = it->second;
    e.kind = kind;
    e.name.assign(name);
    e.labels.assign(labels);
    switch (kind) {
      case MetricKind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  return *entry_for(MetricKind::kCounter, name, labels).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  return *entry_for(MetricKind::kGauge, name, labels).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::string_view labels) {
  return *entry_for(MetricKind::kHistogram, name, labels).histogram;
}

Registry::CallbackHandle Registry::register_callback(
    std::string name, std::string labels, std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_callback_id_++;
  callbacks_.emplace(
      id, Callback{std::move(name), std::move(labels), std::move(fn)});
  return CallbackHandle(this, id);
}

void Registry::unregister_callback(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.erase(id);
}

Registry::CallbackHandle::CallbackHandle(CallbackHandle&& other) noexcept
    : owner_(std::exchange(other.owner_, nullptr)),
      id_(std::exchange(other.id_, 0)) {}

Registry::CallbackHandle& Registry::CallbackHandle::operator=(
    CallbackHandle&& other) noexcept {
  if (this != &other) {
    if (owner_ != nullptr) owner_->unregister_callback(id_);
    owner_ = std::exchange(other.owner_, nullptr);
    id_ = std::exchange(other.id_, 0);
  }
  return *this;
}

Registry::CallbackHandle::~CallbackHandle() {
  if (owner_ != nullptr) owner_->unregister_callback(id_);
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.metrics.reserve(entries_.size() + callbacks_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = static_cast<double>(entry.gauge->value());
        break;
      case MetricKind::kHistogram:
        s.histogram = entry.histogram->snapshot();
        break;
    }
    snap.metrics.push_back(std::move(s));
  }
  // Callbacks export as gauges; same (name, labels) sums so several
  // instances of one component aggregate like counters do.
  std::map<std::pair<std::string, std::string>, double> callback_values;
  for (const auto& [id, cb] : callbacks_) {
    callback_values[{cb.name, cb.labels}] += cb.fn();
  }
  for (auto& [key, value] : callback_values) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = MetricKind::kGauge;
    s.value = value;
    snap.metrics.push_back(std::move(s));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size() + callbacks_.size();
}

// ---------------------------------------------------------------------------
// Snapshot export

const MetricSample* RegistrySnapshot::find(
    std::string_view name, std::string_view labels) const noexcept {
  for (const MetricSample& m : metrics) {
    if (m.name != name) continue;
    if (!labels.empty() && m.labels != labels) continue;
    return &m;
  }
  return nullptr;
}

double RegistrySnapshot::value_or(std::string_view name,
                                  std::string_view labels,
                                  double fallback) const noexcept {
  const MetricSample* m = find(name, labels);
  if (m == nullptr || m->kind == MetricKind::kHistogram) return fallback;
  return m->value;
}

namespace {
std::string format_double(double v) {
  char buf[64];
  // %g keeps integers short (counter values) and sub-ns noise bounded.
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

std::string RegistrySnapshot::to_text() const {
  std::string out;
  for (const MetricSample& m : metrics) {
    out += m.name;
    if (!m.labels.empty()) {
      out += '{';
      out += m.labels;
      out += '}';
    }
    out += ' ';
    if (m.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = m.histogram;
      out += "count=" + format_double(static_cast<double>(h.count));
      out += " p50=" + format_double(h.quantile(0.50));
      out += " p99=" + format_double(h.quantile(0.99));
      out += " p999=" + format_double(h.quantile(0.999));
      out += " mean=" + format_double(h.mean());
    } else {
      out += format_double(m.value);
    }
    out += '\n';
  }
  return out;
}

std::string RegistrySnapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSample& m : metrics) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, m.name);
    out += "\",\"labels\":\"";
    append_json_escaped(out, m.labels);
    out += "\",\"kind\":\"";
    switch (m.kind) {
      case MetricKind::kCounter: out += "counter"; break;
      case MetricKind::kGauge: out += "gauge"; break;
      case MetricKind::kHistogram: out += "histogram"; break;
    }
    out += '"';
    if (m.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = m.histogram;
      out += ",\"count\":" + format_double(static_cast<double>(h.count));
      out += ",\"sum\":" + format_double(static_cast<double>(h.sum));
      out += ",\"mean\":" + format_double(h.mean());
      out += ",\"p50\":" + format_double(h.quantile(0.50));
      out += ",\"p99\":" + format_double(h.quantile(0.99));
      out += ",\"p999\":" + format_double(h.quantile(0.999));
    } else {
      out += ",\"value\":" + format_double(m.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Stage tracing

void set_trace_sample_period(std::uint32_t period) noexcept {
  if (period == 0) period = 1;
  // Mask stays below kKnobOff so a mask value can never read as "off".
  const std::uint32_t mask =
      std::min(std::bit_ceil(period) - 1, 0x3FFFFFFFu);
  detail::g_sample_mask.store(mask, std::memory_order_relaxed);
  // Publish to the packed fast-path knob unless tracing is disabled.
  if (detail::g_trace_knob.load(std::memory_order_relaxed) !=
      detail::kKnobOff)
    detail::g_trace_knob.store(mask, std::memory_order_relaxed);
}

std::uint32_t trace_sample_period() noexcept {
  return detail::g_sample_mask.load(std::memory_order_relaxed) + 1;
}

Histogram& stage_histogram(std::string_view stage) {
  std::string labels = "stage=";
  labels.append(stage);
  return Registry::global().histogram("pipeline_stage_ns", labels);
}

}  // namespace campuslab::obs

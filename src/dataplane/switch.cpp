#include "campuslab/dataplane/switch.h"

namespace campuslab::dataplane {

SoftwareSwitch::SoftwareSwitch(
    std::unique_ptr<CompiledClassifier> program, Quantizer quantizer,
    features::PacketFeatureConfig feature_config)
    : program_(std::move(program)), quantizer_(std::move(quantizer)),
      extractor_(feature_config) {}

Verdict SoftwareSwitch::process(const packet::Packet& pkt,
                                const packet::PacketView& view,
                                sim::Direction dir) {
  ++stats_.processed;
  const auto x = extractor_.extract(pkt, view, dir);
  if (x.empty()) {
    ++stats_.non_ip_passed;
    return Verdict{0, 0.0};
  }
  const auto qx = quantizer_.quantize_row(x);
  const auto verdict = program_->classify(qx);
  if (static_cast<std::size_t>(verdict.cls) < stats_.verdicts.size())
    ++stats_.verdicts[static_cast<std::size_t>(verdict.cls)];
  return verdict;
}

bool SoftwareSwitch::filter(const packet::Packet& pkt,
                            const packet::PacketView& view,
                            sim::Direction dir,
                            const FilterPolicy& policy) {
  const auto verdict = process(pkt, view, dir);
  const bool drop = verdict.cls == policy.drop_class &&
                    verdict.confidence >= policy.min_confidence;
  if (drop) ++stats_.dropped;
  return drop;
}

}  // namespace campuslab::dataplane

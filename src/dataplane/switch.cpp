#include "campuslab/dataplane/switch.h"

#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"

namespace campuslab::dataplane {

namespace {
struct SwitchMetrics {
  obs::Counter& processed =
      obs::Registry::global().counter("switch.processed");
  obs::Counter& dropped = obs::Registry::global().counter("switch.dropped");
  obs::Histogram& apply_ns = obs::stage_histogram("switch_apply");

  static SwitchMetrics& get() {
    static SwitchMetrics m;
    return m;
  }
};
}  // namespace

SoftwareSwitch::SoftwareSwitch(
    std::unique_ptr<CompiledClassifier> program, Quantizer quantizer,
    features::PacketFeatureConfig feature_config)
    : program_(std::move(program)), quantizer_(std::move(quantizer)),
      extractor_(feature_config) {}

Verdict SoftwareSwitch::process(const packet::Packet& pkt,
                                const packet::PacketView& view,
                                sim::Direction dir) {
  auto& metrics = SwitchMetrics::get();
  obs::StageTimer stage_timer(metrics.apply_ns);
  ++stats_.processed;
  metrics.processed.increment();
  const auto x = extractor_.extract(pkt, view, dir);
  if (x.empty()) {
    ++stats_.non_ip_passed;
    return Verdict{0, 0.0};
  }
  const auto qx = quantizer_.quantize_row(x);
  const auto verdict = program_->classify(qx);
  if (static_cast<std::size_t>(verdict.cls) < stats_.verdicts.size())
    ++stats_.verdicts[static_cast<std::size_t>(verdict.cls)];
  return verdict;
}

bool SoftwareSwitch::filter(const packet::Packet& pkt,
                            const packet::PacketView& view,
                            sim::Direction dir,
                            const FilterPolicy& policy) {
  const auto verdict = process(pkt, view, dir);
  const bool drop = verdict.cls == policy.drop_class &&
                    verdict.confidence >= policy.min_confidence;
  if (drop) {
    ++stats_.dropped;
    SwitchMetrics::get().dropped.increment();
  }
  return drop;
}

}  // namespace campuslab::dataplane

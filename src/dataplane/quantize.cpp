#include "campuslab/dataplane/quantize.h"

#include <algorithm>
#include <cmath>

namespace campuslab::dataplane {

Quantizer Quantizer::fit(const ml::Dataset& data) {
  auto ranges = data.feature_ranges();
  for (auto& [lo, hi] : ranges) {
    const double headroom = (hi - lo) * 0.01;
    lo -= headroom;
    hi += headroom;
  }
  return from_ranges(std::move(ranges));
}

Quantizer Quantizer::from_ranges(
    std::vector<std::pair<double, double>> ranges) {
  Quantizer q;
  q.lo_.reserve(ranges.size());
  q.step_.reserve(ranges.size());
  for (const auto& [lo, hi] : ranges) {
    q.lo_.push_back(lo);
    const double span = hi - lo;
    q.step_.push_back(span > 0 ? span / static_cast<double>(kMaxQ + 1)
                               : 0.0);
  }
  return q;
}

Quantizer Quantizer::from_levels(std::vector<double> lo,
                                 std::vector<double> step) {
  Quantizer q;
  q.lo_ = std::move(lo);
  q.step_ = std::move(step);
  q.step_.resize(q.lo_.size(), 0.0);
  return q;
}

std::uint32_t Quantizer::quantize(std::size_t feature,
                                  double v) const noexcept {
  if (step_[feature] <= 0.0) return 0;
  const double scaled = (v - lo_[feature]) / step_[feature];
  if (scaled <= 0.0) return 0;
  if (scaled >= static_cast<double>(kMaxQ)) return kMaxQ;
  return static_cast<std::uint32_t>(scaled);
}

std::vector<std::uint32_t> Quantizer::quantize_row(
    std::span<const double> x) const {
  std::vector<std::uint32_t> q(x.size());
  for (std::size_t f = 0; f < x.size(); ++f) q[f] = quantize(f, x[f]);
  return q;
}

std::uint32_t Quantizer::quantize_threshold(
    std::size_t feature, double threshold) const noexcept {
  return quantize(feature, threshold);
}

double Quantizer::dequantize(std::size_t feature,
                             std::uint32_t q) const noexcept {
  // Bucket center.
  return lo_[feature] + (static_cast<double>(q) + 0.5) * step_[feature];
}

ml::Dataset Quantizer::quantize_dataset(const ml::Dataset& data) const {
  ml::Dataset out(data.feature_names(), data.class_names());
  std::vector<double> x(data.n_features());
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < x.size(); ++f)
      x[f] = static_cast<double>(quantize(f, row[f]));
    out.add(x, data.label(i));
  }
  return out;
}

}  // namespace campuslab::dataplane

#include "campuslab/dataplane/tables.h"

#include <algorithm>
#include <cassert>

namespace campuslab::dataplane {

void TernaryTable::add(TernaryEntry entry) {
  assert(entry.value.size() == n_fields_ &&
         entry.mask.size() == n_fields_);
  // Stable insert keeping priority-descending order.
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const TernaryEntry& a, const TernaryEntry& b) {
        return a.priority > b.priority;
      });
  entries_.insert(pos, std::move(entry));
}

std::optional<std::uint32_t> TernaryTable::lookup(
    std::span<const std::uint32_t> key) const {
  for (const auto& entry : entries_)
    if (entry.matches(key)) return entry.action_data;
  return std::nullopt;
}

void ExactTable::add(std::uint32_t key, std::uint32_t action_data) {
  map_.emplace_back(key, action_data);
  sorted_ = false;
}

std::optional<std::uint32_t> ExactTable::lookup(std::uint32_t key) const {
  if (!sorted_) {
    std::sort(map_.begin(), map_.end());
    sorted_ = true;
  }
  const auto it = std::lower_bound(
      map_.begin(), map_.end(), std::make_pair(key, std::uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == map_.end() || it->first != key) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> RangeTable::lookup(std::uint32_t key) const {
  for (const auto& entry : entries_)
    if (key >= entry.lo && key <= entry.hi) return entry.action_data;
  return std::nullopt;
}

std::vector<Prefix> range_to_prefixes(std::uint32_t lo, std::uint32_t hi,
                                      int width) {
  assert(width > 0 && width <= 32);
  assert(lo <= hi);
  const std::uint32_t field_mask =
      width == 32 ? 0xFFFFFFFFu : ((1u << width) - 1);
  assert(hi <= field_mask);

  std::vector<Prefix> out;
  std::uint64_t cursor = lo;
  const std::uint64_t end = static_cast<std::uint64_t>(hi) + 1;
  while (cursor < end) {
    // Largest aligned block starting at cursor that fits in the range.
    std::uint32_t block = 1;
    while (true) {
      const std::uint32_t next = block << 1;
      if (next == 0) break;                        // 2^32 overflow guard
      if (cursor & (static_cast<std::uint64_t>(next) - 1)) break;
      if (cursor + next > end) break;
      block = next;
    }
    Prefix p;
    p.value = static_cast<std::uint32_t>(cursor);
    p.mask = field_mask & ~(block - 1);
    out.push_back(p);
    cursor += block;
  }
  return out;
}

}  // namespace campuslab::dataplane

#include "campuslab/dataplane/programs.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace campuslab::dataplane {

std::uint32_t pack_verdict(const Verdict& v) noexcept {
  const auto conf = static_cast<std::uint32_t>(
      std::clamp(v.confidence, 0.0, 1.0) * 255.0 + 0.5);
  return (static_cast<std::uint32_t>(v.cls) << 8) | conf;
}

Verdict unpack_verdict(std::uint32_t action_data) noexcept {
  Verdict v;
  v.cls = static_cast<int>(action_data >> 8);
  v.confidence = static_cast<double>(action_data & 0xFF) / 255.0;
  return v;
}

namespace {

Verdict leaf_verdict(const ml::TreeNode& node) {
  const auto best = static_cast<std::size_t>(
      std::max_element(node.class_probs.begin(), node.class_probs.end()) -
      node.class_probs.begin());
  return Verdict{static_cast<int>(best), node.class_probs[best]};
}

int count_registers(const std::vector<bool>& mask,
                    const std::vector<bool>& used) {
  int count = 0;
  for (std::size_t f = 0; f < used.size(); ++f)
    if (used[f] && f < mask.size() && mask[f]) ++count;
  return count;
}

}  // namespace

// ------------------------------------------------------------ TreeProgram

Result<TreeProgram> TreeProgram::compile(
    const ml::DecisionTree& tree, const Quantizer& quantizer,
    std::vector<bool> register_feature_mask) {
  if (tree.nodes().empty())
    return Error::make("empty", "tree has no nodes");
  if (tree.feature_names().size() > quantizer.n_features() &&
      quantizer.n_features() > 0) {
    return Error::make("shape", "quantizer does not cover tree features");
  }

  TreeProgram program;
  std::vector<bool> used(tree.feature_names().size(), false);

  // BFS assigning per-level ids. Node ids are per-level indexes carried
  // in metadata between stages (16 bits is ample: 2^depth leaves).
  const auto& nodes = tree.nodes();
  struct Pending {
    int node;
    int level;
    std::uint16_t id;
  };
  std::queue<Pending> queue;
  queue.push({0, 0, 0});
  std::vector<std::uint16_t> next_id_at_level;
  next_id_at_level.push_back(1);

  // Ids must be assigned to children before parents are emitted; do a
  // two-pass BFS: first assign, then emit.
  // Single pass works if we assign children ids as we pop parents.
  while (!queue.empty()) {
    const auto [node_idx, level, id] = queue.front();
    queue.pop();
    const auto& node = nodes[static_cast<std::size_t>(node_idx)];
    if (static_cast<std::size_t>(level) >= program.levels_.size())
      program.levels_.emplace_back();

    NodeEntry entry;
    entry.node_id = id;
    if (node.is_leaf()) {
      entry.is_leaf = true;
      entry.verdict = pack_verdict(leaf_verdict(node));
    } else {
      const auto f = static_cast<std::size_t>(node.feature);
      if (f < used.size()) used[f] = true;
      entry.feature = static_cast<std::uint16_t>(node.feature);
      entry.threshold = quantizer.quantize_threshold(f, node.threshold);
      if (static_cast<std::size_t>(level + 1) >= next_id_at_level.size())
        next_id_at_level.push_back(0);
      entry.left_id = next_id_at_level[static_cast<std::size_t>(level + 1)]++;
      entry.right_id =
          next_id_at_level[static_cast<std::size_t>(level + 1)]++;
      queue.push({node.left, level + 1, entry.left_id});
      queue.push({node.right, level + 1, entry.right_id});
    }
    program.levels_[static_cast<std::size_t>(level)].push_back(entry);
  }
  program.register_arrays_ = count_registers(register_feature_mask, used);
  return program;
}

Verdict TreeProgram::classify(std::span<const std::uint32_t> qx) const {
  std::uint16_t node_id = 0;
  for (const auto& level : levels_) {
    // Exact-match on node_id; levels are emitted in id order, so the
    // id is the index.
    assert(node_id < level.size());
    const auto& entry = level[node_id];
    if (entry.is_leaf) return unpack_verdict(entry.verdict);
    node_id = qx[entry.feature] <= entry.threshold ? entry.left_id
                                                   : entry.right_id;
  }
  // A well-formed program always ends at a leaf.
  assert(false && "tree program fell off the last stage");
  return Verdict{};
}

std::size_t TreeProgram::total_entries() const noexcept {
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

ResourceReport TreeProgram::resources() const {
  ResourceReport report;
  // One stage for feature/register computation plus one per tree level.
  report.stages_used = 1 + static_cast<int>(levels_.size());
  // Entry layout: node_id(16) + flags(8) + feature(8) + threshold(16)
  //             + left(16) + right(16) + verdict(16) = 96 bits.
  report.sram_bits = total_entries() * 96;
  report.tcam_entries = 0;
  report.register_arrays_used = register_arrays_;
  return report;
}

// -------------------------------------------------------- RuleTcamProgram

Result<RuleTcamProgram> RuleTcamProgram::compile(
    const xai::RuleList& rules, const Quantizer& quantizer,
    std::size_t max_entries, std::vector<bool> register_feature_mask) {
  const std::size_t n_fields = quantizer.n_features();
  if (n_fields == 0) return Error::make("shape", "quantizer is empty");

  RuleTcamProgram program(n_fields);
  program.source_rules_ = rules.rules().size();
  std::vector<bool> used(n_fields, false);

  std::int32_t priority = static_cast<std::int32_t>(rules.rules().size());
  for (const auto& rule : rules.rules()) {
    // Fold conditions into per-field inclusive ranges.
    std::vector<std::uint32_t> lo(n_fields, 0);
    std::vector<std::uint32_t> hi(n_fields, Quantizer::kMaxQ);
    bool satisfiable = true;
    for (const auto& cond : rule.conditions) {
      const auto f = static_cast<std::size_t>(cond.feature);
      used[f] = true;
      const std::uint32_t qthr =
          quantizer.quantize_threshold(f, cond.threshold);
      if (cond.op == xai::RuleCondition::Op::kLe) {
        hi[f] = std::min(hi[f], qthr);
      } else {
        if (qthr == Quantizer::kMaxQ) {
          satisfiable = false;
          break;
        }
        lo[f] = std::max(lo[f], qthr + 1);
      }
      if (lo[f] > hi[f]) {
        satisfiable = false;
        break;
      }
    }
    --priority;
    if (!satisfiable) continue;

    // Expand each constrained field to prefixes; cartesian product.
    const std::uint32_t action = pack_verdict(
        Verdict{rule.predicted_class, rule.confidence});
    std::vector<std::vector<Prefix>> per_field(n_fields);
    for (std::size_t f = 0; f < n_fields; ++f) {
      if (lo[f] == 0 && hi[f] == Quantizer::kMaxQ) {
        per_field[f] = {Prefix{0, 0}};  // wildcard
      } else {
        per_field[f] = range_to_prefixes(lo[f], hi[f], 16);
      }
    }
    // Product size check before materializing.
    std::size_t product = 1;
    for (const auto& prefixes : per_field) {
      product *= prefixes.size();
      if (program.table_.size() + product > max_entries) {
        return Error::make(
            "budget", "TCAM expansion exceeds " +
                          std::to_string(max_entries) + " entries");
      }
    }
    // Materialize the cross product (odometer enumeration).
    std::vector<std::size_t> odo(n_fields, 0);
    while (true) {
      TernaryEntry entry;
      entry.value.resize(n_fields);
      entry.mask.resize(n_fields);
      for (std::size_t f = 0; f < n_fields; ++f) {
        entry.value[f] = per_field[f][odo[f]].value;
        entry.mask[f] = per_field[f][odo[f]].mask;
      }
      entry.priority = priority;
      entry.action_data = action;
      program.table_.add(std::move(entry));

      std::size_t carry = 0;
      while (carry < n_fields) {
        if (++odo[carry] < per_field[carry].size()) break;
        odo[carry] = 0;
        ++carry;
      }
      if (carry == n_fields) break;
    }
  }
  program.register_arrays_ = count_registers(register_feature_mask, used);
  return program;
}

Verdict RuleTcamProgram::classify(
    std::span<const std::uint32_t> qx) const {
  const auto action = table_.lookup(qx);
  if (!action) return Verdict{0, 0.0};  // default: benign, no confidence
  return unpack_verdict(*action);
}

ResourceReport RuleTcamProgram::resources() const {
  ResourceReport report;
  report.tcam_entries = table_.size();
  // Feature stage + however many stages this TCAM block spans at
  // 2048 entries per stage.
  report.stages_used =
      1 + static_cast<int>((table_.size() + 2047) / 2048);
  // Each entry: (value+mask) * fields * 16 bits + action 32.
  report.sram_bits = 0;
  report.register_arrays_used = register_arrays_;
  return report;
}

}  // namespace campuslab::dataplane

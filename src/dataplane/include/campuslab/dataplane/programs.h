// Compiled classifier programs — Figure 2 step (iii): "compile the
// deployable learning model into a target-specific program".
//
// Two compilation strategies, both consuming the same extracted tree:
//
//   TreeProgram     level-per-stage node walk. Stage k resolves the
//                   tree's depth-k node via an exact-match table on the
//                   node id carried in metadata; entries hold
//                   (feature, threshold, children). Cost: one pipeline
//                   stage per tree level, SRAM-only.
//
//   RuleTcamProgram every leaf rule becomes ternary entries in one
//                   logical TCAM: per-field ranges are expanded to
//                   prefixes and the cross product installed. Cost:
//                   single-lookup latency, but the entry count can
//                   blow up combinatorially — exactly the trade-off
//                   the T-P4 ablation measures.
//
// Both operate on quantized 16-bit metadata produced by Quantizer and
// yield byte-exact identical verdicts to the source tree on quantized
// inputs (tested by property test).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "campuslab/dataplane/quantize.h"
#include "campuslab/dataplane/resources.h"
#include "campuslab/dataplane/tables.h"
#include "campuslab/ml/tree.h"
#include "campuslab/xai/rules.h"

namespace campuslab::dataplane {

struct Verdict {
  int cls = 0;
  double confidence = 0.0;  // 8-bit fixed point on the wire
};

class CompiledClassifier {
 public:
  virtual ~CompiledClassifier() = default;
  virtual Verdict classify(std::span<const std::uint32_t> qx) const = 0;
  virtual ResourceReport resources() const = 0;
  virtual std::string name() const = 0;
};

/// Pack/unpack a verdict into 32-bit action data (class | confidence).
std::uint32_t pack_verdict(const Verdict& v) noexcept;
Verdict unpack_verdict(std::uint32_t action_data) noexcept;

class TreeProgram final : public CompiledClassifier {
 public:
  /// `register_feature_mask[f]` marks features needing a stateful
  /// register array (counted in the resource report). May be empty.
  static Result<TreeProgram> compile(
      const ml::DecisionTree& tree, const Quantizer& quantizer,
      std::vector<bool> register_feature_mask = {});

  Verdict classify(std::span<const std::uint32_t> qx) const override;
  ResourceReport resources() const override;
  std::string name() const override { return "tree_walk"; }

  int levels() const noexcept { return static_cast<int>(levels_.size()); }
  std::size_t total_entries() const noexcept;

  /// For the P4 generator.
  struct NodeEntry {
    std::uint16_t node_id = 0;
    bool is_leaf = false;
    std::uint16_t feature = 0;
    std::uint32_t threshold = 0;
    std::uint16_t left_id = 0;
    std::uint16_t right_id = 0;
    std::uint32_t verdict = 0;  // packed, for leaves
  };
  const std::vector<std::vector<NodeEntry>>& level_tables() const noexcept {
    return levels_;
  }

 private:
  std::vector<std::vector<NodeEntry>> levels_;
  int register_arrays_ = 0;
};

class RuleTcamProgram final : public CompiledClassifier {
 public:
  /// Fails with code "budget" if expansion exceeds `max_entries`.
  static Result<RuleTcamProgram> compile(
      const xai::RuleList& rules, const Quantizer& quantizer,
      std::size_t max_entries = 1 << 20,
      std::vector<bool> register_feature_mask = {});

  Verdict classify(std::span<const std::uint32_t> qx) const override;
  ResourceReport resources() const override;
  std::string name() const override { return "rule_tcam"; }

  const TernaryTable& table() const noexcept { return table_; }
  std::size_t source_rules() const noexcept { return source_rules_; }

 private:
  explicit RuleTcamProgram(std::size_t n_fields) : table_(n_fields) {}
  TernaryTable table_;
  std::size_t source_rules_ = 0;
  int register_arrays_ = 0;
};

}  // namespace campuslab::dataplane

// Match-action table primitives: exact, ternary (TCAM) and range
// matching over 16-bit metadata fields, plus range-to-prefix expansion
// (the classic trick for encoding ranges in TCAMs, and the source of
// the entry blowup the T-P4 ablation measures).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace campuslab::dataplane {

/// One ternary match over a set of fields: (value, mask) per field.
/// A field with mask 0 is wildcarded.
struct TernaryEntry {
  std::vector<std::uint32_t> value;
  std::vector<std::uint32_t> mask;
  std::int32_t priority = 0;  // higher wins
  std::uint32_t action_data = 0;

  bool matches(std::span<const std::uint32_t> key) const noexcept {
    for (std::size_t f = 0; f < value.size(); ++f)
      if ((key[f] & mask[f]) != (value[f] & mask[f])) return false;
    return true;
  }
};

/// Linear-scan TCAM model: highest-priority matching entry wins
/// (ties broken by insertion order, as real TCAMs do by address).
class TernaryTable {
 public:
  explicit TernaryTable(std::size_t n_fields) : n_fields_(n_fields) {}

  void add(TernaryEntry entry);

  /// Action data of the winning entry; nullopt on miss.
  std::optional<std::uint32_t> lookup(
      std::span<const std::uint32_t> key) const;

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t n_fields() const noexcept { return n_fields_; }
  const std::vector<TernaryEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::size_t n_fields_;
  std::vector<TernaryEntry> entries_;  // kept sorted by priority desc
};

/// Exact-match table over one 32-bit key (hash table in SRAM).
class ExactTable {
 public:
  void add(std::uint32_t key, std::uint32_t action_data);
  std::optional<std::uint32_t> lookup(std::uint32_t key) const;
  std::size_t size() const noexcept { return map_.size(); }

 private:
  // Sorted lazily on first lookup after a batch of inserts.
  mutable std::vector<std::pair<std::uint32_t, std::uint32_t>> map_;
  mutable bool sorted_ = true;
};

/// A [lo, hi] range over one field (inclusive).
struct RangeEntry {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  std::uint32_t action_data = 0;
};

/// Range table over one field; first matching entry wins.
class RangeTable {
 public:
  void add(RangeEntry entry) { entries_.push_back(entry); }
  std::optional<std::uint32_t> lookup(std::uint32_t key) const;
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<RangeEntry> entries_;
};

/// A (value, mask) prefix pair on a W-bit field.
struct Prefix {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;
};

/// Minimal prefix cover of the inclusive range [lo, hi] on a
/// `width`-bit field. At most 2*width - 2 prefixes (classic bound).
std::vector<Prefix> range_to_prefixes(std::uint32_t lo, std::uint32_t hi,
                                      int width);

}  // namespace campuslab::dataplane

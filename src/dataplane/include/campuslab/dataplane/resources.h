// Resource model of the target switch — the budget a deployable model
// must fit (Figure 2 step (iii): compile for "programmable switches
// (e.g., Barefoot Tofino)").
//
// The numbers are representative of a Tofino-1-class RMT pipeline:
// a dozen match-action stages, a few thousand TCAM entries and about a
// megabyte of SRAM per stage, and a handful of stateful register
// arrays. CampusLab treats them as a budget to report against, not a
// timing model.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace campuslab::dataplane {

struct ResourceBudget {
  int stages = 12;
  std::size_t tcam_entries_per_stage = 2048;
  std::size_t sram_bits_per_stage = 8ull * 1024 * 1024;  // 1 MiB
  int register_arrays = 8;

  static ResourceBudget tofino_like() { return ResourceBudget{}; }
};

struct ResourceReport {
  int stages_used = 0;
  std::size_t tcam_entries = 0;
  std::size_t sram_bits = 0;
  int register_arrays_used = 0;

  bool fits(const ResourceBudget& budget) const noexcept {
    return stages_used <= budget.stages &&
           tcam_entries <= budget.tcam_entries_per_stage *
                               static_cast<std::size_t>(budget.stages) &&
           sram_bits <= budget.sram_bits_per_stage *
                            static_cast<std::size_t>(budget.stages) &&
           register_arrays_used <= budget.register_arrays;
  }

  /// Worst-dimension fraction of the budget consumed (1.0 = exactly at
  /// budget). The automation loop's canary gate rolls a candidate back
  /// when this exceeds its headroom policy, not merely when fits()
  /// flips false.
  double utilization(const ResourceBudget& budget) const noexcept {
    const auto frac = [](double used, double limit) {
      return limit <= 0.0 ? (used > 0.0 ? 1e9 : 0.0) : used / limit;
    };
    const auto stages = static_cast<double>(budget.stages);
    double u = frac(static_cast<double>(stages_used), stages);
    u = std::max(
        u, frac(static_cast<double>(tcam_entries),
                static_cast<double>(budget.tcam_entries_per_stage) * stages));
    u = std::max(
        u, frac(static_cast<double>(sram_bits),
                static_cast<double>(budget.sram_bits_per_stage) * stages));
    u = std::max(u, frac(static_cast<double>(register_arrays_used),
                         static_cast<double>(budget.register_arrays)));
    return u;
  }

  std::string to_string() const {
    return "stages=" + std::to_string(stages_used) +
           " tcam_entries=" + std::to_string(tcam_entries) +
           " sram_bits=" + std::to_string(sram_bits) +
           " register_arrays=" + std::to_string(register_arrays_used);
  }
};

}  // namespace campuslab::dataplane

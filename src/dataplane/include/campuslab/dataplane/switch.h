// SoftwareSwitch — executes a compiled classifier against live packets,
// exactly as the programmable border switch would: parse headers,
// update register state, quantize metadata, run the match-action
// program, act on the verdict.
//
// Plugs directly into CampusNetwork::set_ingress_filter via filter():
// "drop attack traffic on ingress if confidence in detection is at
// least 90%" (§2) becomes FilterPolicy{attack_class, 0.90}.
#pragma once

#include <array>
#include <memory>

#include "campuslab/dataplane/programs.h"
#include "campuslab/features/packet_features.h"

namespace campuslab::dataplane {

struct FilterPolicy {
  int drop_class = 1;
  double min_confidence = 0.90;  // the paper's 90% rule
};

struct SwitchStats {
  std::uint64_t processed = 0;
  std::uint64_t non_ip_passed = 0;
  std::uint64_t dropped = 0;
  std::array<std::uint64_t, 16> verdicts{};  // per predicted class
};

class SoftwareSwitch {
 public:
  SoftwareSwitch(std::unique_ptr<CompiledClassifier> program,
                 Quantizer quantizer,
                 features::PacketFeatureConfig feature_config = {});

  /// Classify one packet (updates register state; packets must arrive
  /// in timestamp order). Non-IPv4 frames yield {0, 0}. The view-taking
  /// forms are the parse-once path: `view` must decode `pkt`'s bytes;
  /// the two-argument forms re-parse.
  Verdict process(const packet::Packet& pkt,
                  const packet::PacketView& view, sim::Direction dir);
  Verdict process(const packet::Packet& pkt, sim::Direction dir) {
    return process(pkt, packet::PacketView(pkt), dir);
  }

  /// Ingress-filter decision: true = drop.
  bool filter(const packet::Packet& pkt, const packet::PacketView& view,
              sim::Direction dir, const FilterPolicy& policy);
  bool filter(const packet::Packet& pkt, sim::Direction dir,
              const FilterPolicy& policy) {
    return filter(pkt, packet::PacketView(pkt), dir, policy);
  }

  const SwitchStats& stats() const noexcept { return stats_; }
  const CompiledClassifier& program() const noexcept { return *program_; }

  /// Full pipeline resources: the program's plus the feature stage's
  /// register arrays.
  ResourceReport resources() const { return program_->resources(); }

 private:
  std::unique_ptr<CompiledClassifier> program_;
  Quantizer quantizer_;
  features::StatefulFeatureExtractor extractor_;
  SwitchStats stats_;
};

}  // namespace campuslab::dataplane

// Quantizer — maps double-valued features to the 16-bit integers a
// switch pipeline actually carries in metadata.
//
// Per-feature affine quantization q(v) = clamp(floor((v - lo) / step)).
// The mapping is monotone, so tree threshold comparisons survive:
// v <= t implies q(v) <= q(t). Equality at the boundary can flip for
// values strictly between quantization levels — models intended for
// exact dataplane equivalence are trained on pre-quantized features
// (see the T-P4 bench and dataplane tests).
#pragma once

#include <cstdint>
#include <vector>

#include "campuslab/ml/dataset.h"

namespace campuslab::dataplane {

class Quantizer {
 public:
  static constexpr std::uint32_t kMaxQ = 0xFFFF;  // 16-bit metadata

  /// Fit per-feature ranges from data (with 1% headroom).
  static Quantizer fit(const ml::Dataset& data);
  /// Explicit ranges (lo == hi marks a constant feature -> q = 0).
  static Quantizer from_ranges(
      std::vector<std::pair<double, double>> ranges);
  /// Exact reconstruction from persisted per-feature (lo, step) pairs —
  /// the model-registry round trip must be bit-identical, which a
  /// lo/hi re-derivation of step cannot guarantee in floating point.
  static Quantizer from_levels(std::vector<double> lo,
                               std::vector<double> step);

  std::size_t n_features() const noexcept { return lo_.size(); }

  /// Persisted-form accessors (see from_levels).
  double lo(std::size_t feature) const noexcept { return lo_[feature]; }
  double step(std::size_t feature) const noexcept {
    return step_[feature];
  }

  std::uint32_t quantize(std::size_t feature, double v) const noexcept;
  std::vector<std::uint32_t> quantize_row(
      std::span<const double> x) const;

  /// Quantize a split threshold: the largest q such that any value v
  /// with q(v) <= q satisfies the intent of (v <= threshold).
  std::uint32_t quantize_threshold(std::size_t feature,
                                   double threshold) const noexcept;

  /// Map a dataset onto its quantized grid (each value replaced by the
  /// center of its bucket) — train on this for exact dataplane
  /// equivalence.
  ml::Dataset quantize_dataset(const ml::Dataset& data) const;

  double dequantize(std::size_t feature, std::uint32_t q) const noexcept;

 private:
  std::vector<double> lo_;
  std::vector<double> step_;
};

}  // namespace campuslab::dataplane

// P4 source generation — renders a compiled program as a P4-16 style
// source file, the "target-specific program" artifact of Figure 2
// step (iii). The output is a faithful, readable description of the
// pipeline (metadata fields, per-stage tables, const entries, the
// confidence-threshold drop action); it targets a v1model-like
// architecture and is intended for review and documentation alongside
// the executable SoftwareSwitch, not for a vendor toolchain.
#pragma once

#include <string>
#include <vector>

#include "campuslab/dataplane/programs.h"
#include "campuslab/dataplane/switch.h"

namespace campuslab::dataplane {

/// Generate P4 for a tree-walk program.
std::string generate_p4(const TreeProgram& program,
                        const std::vector<std::string>& feature_names,
                        const FilterPolicy& policy);

/// Generate P4 for a TCAM rule program.
std::string generate_p4(const RuleTcamProgram& program,
                        const std::vector<std::string>& feature_names,
                        const FilterPolicy& policy);

}  // namespace campuslab::dataplane

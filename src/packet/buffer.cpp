#include "campuslab/packet/buffer.h"

#include <new>
#include <vector>

#include "campuslab/obs/registry.h"

namespace campuslab::packet {

PacketBuffer* PacketBuffer::allocate(BufferPool* pool,
                                     std::uint32_t capacity) {
  void* raw = ::operator new(sizeof(PacketBuffer) + capacity);
  return new (raw) PacketBuffer(pool, capacity);
}

void PacketBuffer::destroy(PacketBuffer* buf) noexcept {
  buf->~PacketBuffer();
  ::operator delete(buf);
}

void PacketBuffer::release() noexcept {
  // acq_rel: the releasing thread publishes its writes to the buffer;
  // the thread that observes the count hit zero acquires them before
  // recycling the storage.
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pool_->on_last_release(this);
  }
}

BufferPool::BufferPool(BufferPoolConfig config) : config_(config) {}

BufferPool::~BufferPool() {
  std::lock_guard lock(mu_);
  for (auto* buf : freelist_) PacketBuffer::destroy(buf);
  freelist_.clear();
}

BufferRef BufferPool::acquire(std::size_t n) {
  PacketBuffer* buf = nullptr;
  if (n <= config_.buffer_capacity) {
    {
      std::lock_guard lock(mu_);
      if (!freelist_.empty()) {
        buf = freelist_.back();
        freelist_.pop_back();
      }
    }
    if (buf != nullptr) {
      pool_hits_.fetch_add(1, std::memory_order_relaxed);
      buf->refs_.store(1, std::memory_order_relaxed);
    } else {
      pool_misses_.fetch_add(1, std::memory_order_relaxed);
      buf = PacketBuffer::allocate(this, config_.buffer_capacity);
    }
  } else {
    // Oversize frame: one-off heap buffer, freed (not recycled) on the
    // last release so the freelist stays homogeneous.
    oversize_allocations_.fetch_add(1, std::memory_order_relaxed);
    buf = PacketBuffer::allocate(this, static_cast<std::uint32_t>(n));
  }
  buf->set_size(static_cast<std::uint32_t>(n));

  const auto out = outstanding_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto high = high_water_.load(std::memory_order_relaxed);
  while (out > high &&
         !high_water_.compare_exchange_weak(high, out,
                                            std::memory_order_relaxed)) {
  }
  return BufferRef(buf);
}

void BufferPool::on_last_release(PacketBuffer* buf) noexcept {
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (buf->capacity() == config_.buffer_capacity) {
    std::lock_guard lock(mu_);
    if (freelist_.size() < config_.max_pooled) {
      buf->set_size(0);
      freelist_.push_back(buf);
      return;
    }
  }
  PacketBuffer::destroy(buf);
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats s;
  s.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  s.pool_misses = pool_misses_.load(std::memory_order_relaxed);
  s.oversize_allocations =
      oversize_allocations_.load(std::memory_order_relaxed);
  s.heap_allocations = s.pool_misses + s.oversize_allocations;
  s.outstanding = outstanding_.load(std::memory_order_relaxed);
  s.high_water = high_water_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    s.freelist_size = freelist_.size();
  }
  return s;
}

BufferPool& default_buffer_pool() {
  static BufferPool* pool = [] {
    auto* p = new BufferPool();  // leaked by design
    // Export the shared pool's gauges. The handles leak with the pool
    // (registered once, never unregistered) so a snapshot can always
    // see hit/miss/outstanding without any pool-side bookkeeping.
    auto expose = [p](const char* name,
                      std::uint64_t BufferPoolStats::* field) {
      static std::vector<obs::Registry::CallbackHandle>* handles =
          new std::vector<obs::Registry::CallbackHandle>();
      handles->push_back(obs::Registry::global().register_callback(
          name, "", [p, field] {
            return static_cast<double>(p->stats().*field);
          }));
    };
    expose("bufferpool.pool_hits", &BufferPoolStats::pool_hits);
    expose("bufferpool.pool_misses", &BufferPoolStats::pool_misses);
    expose("bufferpool.heap_allocations",
           &BufferPoolStats::heap_allocations);
    expose("bufferpool.oversize_allocations",
           &BufferPoolStats::oversize_allocations);
    expose("bufferpool.outstanding", &BufferPoolStats::outstanding);
    expose("bufferpool.high_water", &BufferPoolStats::high_water);
    expose("bufferpool.freelist_size", &BufferPoolStats::freelist_size);
    return p;
  }();
  return *pool;
}

}  // namespace campuslab::packet

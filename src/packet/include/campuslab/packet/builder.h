// PacketBuilder — constructs complete, checksummed Ethernet/IPv4 frames.
//
// The simulator's traffic and attack generators produce real wire-format
// bytes through this builder, so every downstream stage (capture, flow
// metering, the data store, the software switch) operates on frames that
// a real NIC could have delivered.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "campuslab/packet/addr.h"
#include "campuslab/packet/dns.h"
#include "campuslab/packet/headers.h"
#include "campuslab/packet/label.h"
#include "campuslab/packet/view.h"
#include "campuslab/util/time.h"

namespace campuslab::packet {

/// Endpoint identity used when building frames.
struct Endpoint {
  MacAddress mac;
  Ipv4Address ip;
  std::uint16_t port = 0;
};

/// Fluent builder. Typical use:
///   auto pkt = PacketBuilder(ts)
///       .tcp(src, dst, TcpFlags::kSyn, seq, ack)
///       .payload_size(512)
///       .label(TrafficLabel::kSynFlood)
///       .build();
class PacketBuilder {
 public:
  explicit PacketBuilder(Timestamp ts) : ts_(ts) {}

  /// TCP segment; payload attached via payload()/payload_size().
  PacketBuilder& tcp(const Endpoint& src, const Endpoint& dst,
                     std::uint8_t flags, std::uint32_t seq = 0,
                     std::uint32_t ack = 0);

  /// UDP datagram.
  PacketBuilder& udp(const Endpoint& src, const Endpoint& dst);

  /// ICMP message (echo by default).
  PacketBuilder& icmp(const Endpoint& src, const Endpoint& dst,
                      std::uint8_t type = IcmpHeader::kEchoRequest,
                      std::uint8_t code = 0, std::uint32_t rest = 0);

  /// Attach explicit payload bytes.
  PacketBuilder& payload(std::span<const std::uint8_t> data);
  /// Attach `n` deterministic filler bytes (for size-accurate traffic).
  PacketBuilder& payload_size(std::size_t n);

  PacketBuilder& ttl(std::uint8_t ttl_value) {
    ttl_ = ttl_value;
    return *this;
  }
  PacketBuilder& label(TrafficLabel l) {
    label_ = l;
    return *this;
  }
  /// Tag the frame with the scenario instance that generated it.
  PacketBuilder& scenario(std::uint32_t id) {
    scenario_id_ = id;
    return *this;
  }

  /// Assemble the frame: Ethernet + IPv4 (+TCP/UDP/ICMP) + payload, with
  /// all lengths and checksums correct. Precondition: one of
  /// tcp()/udp()/icmp() was called.
  Packet build() const;

 private:
  enum class L4 { kNone, kTcp, kUdp, kIcmp };

  Timestamp ts_;
  Endpoint src_{};
  Endpoint dst_{};
  L4 l4_ = L4::kNone;
  std::uint8_t tcp_flags_ = 0;
  std::uint32_t seq_ = 0;
  std::uint32_t ack_ = 0;
  std::uint8_t icmp_type_ = 0;
  std::uint8_t icmp_code_ = 0;
  std::uint32_t icmp_rest_ = 0;
  std::uint8_t ttl_ = Ipv4Header::kDefaultTtl;
  TrafficLabel label_ = TrafficLabel::kBenign;
  std::uint32_t scenario_id_ = 0;
  std::vector<std::uint8_t> payload_;
};

/// Convenience: a UDP frame carrying a serialized DNS message.
Packet build_dns_packet(Timestamp ts, const Endpoint& src,
                        const Endpoint& dst, const DnsMessage& msg,
                        TrafficLabel label = TrafficLabel::kBenign);

}  // namespace campuslab::packet

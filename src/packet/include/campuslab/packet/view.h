// Packet: the timestamped frame that flows through the whole platform.
// PacketView: a zero-copy layered decoder over a frame's bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "campuslab/packet/addr.h"
#include "campuslab/packet/dns.h"
#include "campuslab/packet/headers.h"
#include "campuslab/packet/label.h"
#include "campuslab/util/time.h"

namespace campuslab::packet {

/// An owning, timestamped frame. `label` is generation-time ground truth
/// (kBenign for anything not injected by an attack generator) and is
/// metadata: it is never serialized into the frame bytes, mirroring how
/// a labelled dataset annotates rather than alters its samples.
struct Packet {
  Timestamp ts;
  std::vector<std::uint8_t> data;
  TrafficLabel label = TrafficLabel::kBenign;

  std::size_t size() const noexcept { return data.size(); }
  std::span<const std::uint8_t> bytes() const noexcept { return data; }
};

/// Layered decode of one frame. Construction parses L2-L4 eagerly (a
/// handful of bounded reads); `dns()` parses the application layer on
/// demand. The view does not own the bytes: it must not outlive them.
class PacketView {
 public:
  explicit PacketView(std::span<const std::uint8_t> frame);
  explicit PacketView(const Packet& pkt) : PacketView(pkt.bytes()) {}

  /// False if the frame was too short or not IPv4/IPv6 — callers treat
  /// such frames as opaque (they still count toward byte totals).
  bool valid() const noexcept { return valid_; }

  std::size_t frame_size() const noexcept { return frame_.size(); }

  bool is_ipv4() const noexcept { return has_ipv4_; }
  bool is_ipv6() const noexcept { return has_ipv6_; }

  /// Preconditions: the corresponding has-layer accessor is true.
  const EthernetHeader& eth() const noexcept { return eth_; }
  const Ipv4Header& ipv4() const noexcept { return ipv4_; }
  const Ipv6Header& ipv6() const noexcept { return ipv6_; }

  bool is_tcp() const noexcept { return has_tcp_; }
  bool is_udp() const noexcept { return has_udp_; }
  bool is_icmp() const noexcept { return has_icmp_; }
  const TcpHeader& tcp() const noexcept { return tcp_; }
  const UdpHeader& udp() const noexcept { return udp_; }
  const IcmpHeader& icmp() const noexcept { return icmp_; }

  /// Transport payload (after L4 header). Empty if none.
  std::span<const std::uint8_t> payload() const noexcept { return payload_; }

  /// 5-tuple for IPv4 TCP/UDP (ports zero for other protocols);
  /// nullopt when there is no IPv4 layer.
  std::optional<FiveTuple> five_tuple() const noexcept;

  /// True when either UDP port is 53.
  bool is_dns() const noexcept;

  /// Parse the payload as DNS. Precondition: is_dns() (callable anyway;
  /// returns an error Result for non-DNS payloads).
  Result<DnsMessage> dns() const { return DnsMessage::parse(payload_); }

 private:
  std::span<const std::uint8_t> frame_;
  EthernetHeader eth_{};
  Ipv4Header ipv4_{};
  Ipv6Header ipv6_{};
  TcpHeader tcp_{};
  UdpHeader udp_{};
  IcmpHeader icmp_{};
  std::span<const std::uint8_t> payload_{};
  bool valid_ = false;
  bool has_ipv4_ = false;
  bool has_ipv6_ = false;
  bool has_tcp_ = false;
  bool has_udp_ = false;
  bool has_icmp_ = false;
};

}  // namespace campuslab::packet

// Packet: the timestamped frame that flows through the whole platform.
// PacketView: a zero-copy layered decoder over a frame's bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "campuslab/packet/addr.h"
#include "campuslab/packet/buffer.h"
#include "campuslab/packet/dns.h"
#include "campuslab/packet/headers.h"
#include "campuslab/packet/label.h"
#include "campuslab/util/time.h"

namespace campuslab::packet {

/// A timestamped frame handle. `label` is generation-time ground truth
/// (kBenign for anything not injected by an attack generator) and is
/// metadata: it is never serialized into the frame bytes, mirroring how
/// a labelled dataset annotates rather than alters its samples.
/// `scenario_id` extends the annotation with provenance: which scenario
/// phase instance generated the frame (0 = none, i.e. background
/// traffic), so evaluation can be broken down per scenario.
///
/// The frame bytes live in a refcounted pool buffer (see buffer.h), so
/// copying a Packet is a refcount bump — no allocation, no memcpy — and
/// the bytes stay at a stable address for every copy of the handle.
/// Mutation goes through the copy-on-write accessors (`resize`,
/// `mutable_bytes`), which clone the buffer first when it is shared, so
/// mutating one handle can never be observed through another.
class Packet {
 public:
  Timestamp ts;
  TrafficLabel label = TrafficLabel::kBenign;
  std::uint32_t scenario_id = 0;  // generating scenario instance; 0 = none

  Packet() noexcept = default;

  std::size_t size() const noexcept {
    return buf_ ? buf_->size() : 0;
  }
  std::span<const std::uint8_t> bytes() const noexcept {
    return buf_ ? std::span<const std::uint8_t>(buf_->data(), buf_->size())
                : std::span<const std::uint8_t>{};
  }
  /// Materialize an owned copy of the bytes (tests, golden comparisons).
  std::vector<std::uint8_t> copy_bytes() const {
    const auto b = bytes();
    return std::vector<std::uint8_t>(b.begin(), b.end());
  }

  /// Replace the frame contents (reuses the buffer when this handle is
  /// the sole owner and the bytes fit; acquires from the pool otherwise).
  void assign(std::span<const std::uint8_t> frame);
  /// Replace the frame with `n` bytes of `fill`.
  void assign(std::size_t n, std::uint8_t fill);
  /// Copy-on-write resize; grown bytes are zero-filled.
  void resize(std::size_t n);
  /// Copy-on-write mutable access to the frame bytes.
  std::span<std::uint8_t> mutable_bytes();
  /// Drop the frame (releases this handle's buffer reference).
  void clear_bytes() noexcept { buf_.reset(); }

  /// True when both handles alias the same pool buffer (diagnostics).
  bool shares_buffer_with(const Packet& other) const noexcept {
    return buf_ && buf_.get() == other.buf_.get();
  }
  const BufferRef& buffer() const noexcept { return buf_; }

 private:
  BufferRef buf_;
};

/// Layered decode of one frame. Construction parses L2-L4 eagerly (a
/// handful of bounded reads); `dns()` parses the application layer on
/// demand. The view does not own the bytes: it must not outlive them.
class PacketView {
 public:
  /// Empty, invalid view — placeholder until a real decode is assigned
  /// (ring slots and default-constructed DecodedPackets need this).
  PacketView() noexcept = default;
  explicit PacketView(std::span<const std::uint8_t> frame);
  explicit PacketView(const Packet& pkt) : PacketView(pkt.bytes()) {}

  /// False if the frame was too short or not IPv4/IPv6 — callers treat
  /// such frames as opaque (they still count toward byte totals).
  bool valid() const noexcept { return valid_; }

  std::size_t frame_size() const noexcept { return frame_.size(); }

  /// The raw frame bytes this view decodes.
  std::span<const std::uint8_t> frame() const noexcept { return frame_; }

  bool is_ipv4() const noexcept { return has_ipv4_; }
  bool is_ipv6() const noexcept { return has_ipv6_; }

  /// Preconditions: the corresponding has-layer accessor is true.
  const EthernetHeader& eth() const noexcept { return eth_; }
  const Ipv4Header& ipv4() const noexcept { return ipv4_; }
  const Ipv6Header& ipv6() const noexcept { return ipv6_; }

  bool is_tcp() const noexcept { return has_tcp_; }
  bool is_udp() const noexcept { return has_udp_; }
  bool is_icmp() const noexcept { return has_icmp_; }
  const TcpHeader& tcp() const noexcept { return tcp_; }
  const UdpHeader& udp() const noexcept { return udp_; }
  const IcmpHeader& icmp() const noexcept { return icmp_; }

  /// Transport payload (after L4 header). Empty if none.
  std::span<const std::uint8_t> payload() const noexcept { return payload_; }

  /// 5-tuple for IPv4 TCP/UDP (ports zero for other protocols);
  /// nullopt when there is no IPv4 layer.
  std::optional<FiveTuple> five_tuple() const noexcept;

  /// True when either UDP port is 53.
  bool is_dns() const noexcept;

  /// Parse the payload as DNS. Precondition: is_dns() (callable anyway;
  /// returns an error Result for non-DNS payloads).
  Result<DnsMessage> dns() const { return DnsMessage::parse(payload_); }

 private:
  std::span<const std::uint8_t> frame_;
  EthernetHeader eth_{};
  Ipv4Header ipv4_{};
  Ipv6Header ipv6_{};
  TcpHeader tcp_{};
  UdpHeader udp_{};
  IcmpHeader icmp_{};
  std::span<const std::uint8_t> payload_{};
  bool valid_ = false;
  bool has_ipv4_ = false;
  bool has_ipv6_ = false;
  bool has_tcp_ = false;
  bool has_udp_ = false;
  bool has_icmp_ = false;
};

}  // namespace campuslab::packet

// RFC 1071 Internet checksum and the TCP/UDP pseudo-header variants.
#pragma once

#include <cstdint>
#include <span>

#include "campuslab/packet/addr.h"

namespace campuslab::packet {

/// One's-complement sum accumulator; feed byte ranges, then finalize.
class ChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data) noexcept;
  void add_u16(std::uint16_t v) noexcept;
  void add_u32(std::uint32_t v) noexcept;

  /// Final folded, inverted checksum in host order.
  std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // dangling byte from a previous odd-length chunk
};

/// Plain Internet checksum over a buffer (IPv4 header checksum).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// TCP/UDP checksum including the IPv4 pseudo-header.
/// `segment` covers the transport header + payload with its checksum
/// field zeroed.
std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst,
                                 IpProto proto,
                                 std::span<const std::uint8_t> segment) noexcept;

}  // namespace campuslab::packet

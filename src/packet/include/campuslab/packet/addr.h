// Network address value types: MAC, IPv4, IPv6, and the canonical
// five-tuple flow key.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace campuslab::packet {

/// 48-bit Ethernet MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> octets) noexcept
      : octets_(octets) {}

  /// Deterministically derive a locally-administered unicast MAC from an
  /// integer id (used by the simulator to give every host a stable MAC).
  static constexpr MacAddress from_id(std::uint32_t id) noexcept {
    return MacAddress({0x02, 0xC1, static_cast<std::uint8_t>(id >> 24),
                       static_cast<std::uint8_t>(id >> 16),
                       static_cast<std::uint8_t>(id >> 8),
                       static_cast<std::uint8_t>(id)});
  }

  static constexpr MacAddress broadcast() noexcept {
    return MacAddress({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  constexpr const std::array<std::uint8_t, 6>& octets() const noexcept {
    return octets_;
  }

  std::string to_string() const;

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address stored host-order for arithmetic; serialized big-endian.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) noexcept
      : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parse dotted-quad; nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  constexpr std::uint32_t value() const noexcept { return value_; }
  std::string to_string() const;

  /// True if this address lies within prefix/len.
  constexpr bool in_prefix(Ipv4Address prefix, int len) const noexcept {
    if (len <= 0) return true;
    const std::uint32_t mask =
        len >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - len)) - 1);
    return (value_ & mask) == (prefix.value_ & mask);
  }

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv6 address; stored as 16 bytes in network order.
class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  explicit constexpr Ipv6Address(std::array<std::uint8_t, 16> bytes) noexcept
      : bytes_(bytes) {}

  constexpr const std::array<std::uint8_t, 16>& bytes() const noexcept {
    return bytes_;
  }

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv6Address&) const = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

/// IP protocol numbers used across the library.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Canonical 5-tuple flow key (IPv4).
struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  auto operator<=>(const FiveTuple&) const = default;

  /// The reverse-direction key (dst<->src swap).
  FiveTuple reversed() const noexcept {
    return FiveTuple{dst, src, dst_port, src_port, proto};
  }

  /// Direction-insensitive key: both directions of one conversation map
  /// to the same value. The lexicographically smaller endpoint first.
  FiveTuple bidirectional() const noexcept {
    const auto a = std::tie(src, src_port);
    const auto b = std::tie(dst, dst_port);
    return b < a ? reversed() : *this;
  }

  std::uint64_t hash() const noexcept;
  std::string to_string() const;
};

}  // namespace campuslab::packet

template <>
struct std::hash<campuslab::packet::FiveTuple> {
  std::size_t operator()(
      const campuslab::packet::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};

template <>
struct std::hash<campuslab::packet::Ipv4Address> {
  std::size_t operator()(
      const campuslab::packet::Ipv4Address& a) const noexcept {
    // Fibonacci scramble so consecutive host addresses spread.
    return static_cast<std::size_t>(a.value() * 0x9E3779B97F4A7C15ULL);
  }
};

// Pooled, refcounted frame storage. The capture papers' two canonical
// per-packet costs are (a) a heap allocation and (b) a full frame copy;
// BufferPool removes (a) by recycling fixed-capacity slabs through a
// freelist, and the intrusive refcount removes (b) by making "copy a
// packet" a counter bump on a shared buffer.
//
// Layout: each PacketBuffer is a small header placed at the front of a
// single heap block, with `capacity` bytes of frame storage immediately
// after it — one allocation, one cache-friendly object.
//
// Lifetime rules (see DESIGN.md "Packet ownership model"):
//   * A buffer acquired from a pool must be released (all BufferRefs
//     dropped) before that pool is destroyed. The process-wide
//     default_buffer_pool() is deliberately leaked so handles stored in
//     static-duration objects can never violate this.
//   * The refcount is thread-safe: distinct BufferRefs to the same
//     buffer may be copied/dropped from different threads. A single
//     BufferRef (or Packet) object is NOT safe for unsynchronized
//     concurrent mutation, same as every other value type here.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace campuslab::packet {

class BufferPool;

/// Header of one refcounted frame buffer; the frame bytes live in the
/// same allocation, immediately after the header.
class PacketBuffer {
 public:
  std::uint8_t* data() noexcept {
    return reinterpret_cast<std::uint8_t*>(this + 1);
  }
  const std::uint8_t* data() const noexcept {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint32_t size() const noexcept { return size_; }
  void set_size(std::uint32_t n) noexcept { size_ = n; }

  std::uint32_t ref_count() const noexcept {
    return refs_.load(std::memory_order_acquire);
  }

 private:
  friend class BufferPool;
  friend class BufferRef;

  PacketBuffer(BufferPool* pool, std::uint32_t capacity) noexcept
      : capacity_(capacity), pool_(pool) {}
  ~PacketBuffer() = default;

  void add_ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }
  /// Drops one reference; on the last one the buffer goes back to its
  /// pool's freelist (or is freed, if oversize or orphaned).
  void release() noexcept;

  static PacketBuffer* allocate(BufferPool* pool, std::uint32_t capacity);
  static void destroy(PacketBuffer* buf) noexcept;

  std::atomic<std::uint32_t> refs_{1};
  std::uint32_t capacity_;
  std::uint32_t size_ = 0;
  BufferPool* pool_;  // never null for live buffers; owning pool
};

/// Smart handle: copy = refcount bump, move = pointer steal. This is
/// what makes packet::Packet cheap to copy.
class BufferRef {
 public:
  BufferRef() noexcept = default;
  /// Adopts an already-referenced buffer (refcount not bumped).
  explicit BufferRef(PacketBuffer* buf) noexcept : buf_(buf) {}
  BufferRef(const BufferRef& other) noexcept : buf_(other.buf_) {
    if (buf_ != nullptr) buf_->add_ref();
  }
  BufferRef(BufferRef&& other) noexcept
      : buf_(std::exchange(other.buf_, nullptr)) {}
  BufferRef& operator=(const BufferRef& other) noexcept {
    BufferRef copy(other);
    std::swap(buf_, copy.buf_);
    return *this;
  }
  BufferRef& operator=(BufferRef&& other) noexcept {
    if (this != &other) {
      reset();
      buf_ = std::exchange(other.buf_, nullptr);
    }
    return *this;
  }
  ~BufferRef() { reset(); }

  void reset() noexcept {
    if (buf_ != nullptr) {
      buf_->release();
      buf_ = nullptr;
    }
  }

  PacketBuffer* get() const noexcept { return buf_; }
  PacketBuffer* operator->() const noexcept { return buf_; }
  explicit operator bool() const noexcept { return buf_ != nullptr; }

  /// True when this handle is the only reference — the copy-on-write
  /// gate for in-place mutation.
  bool unique() const noexcept {
    return buf_ != nullptr && buf_->ref_count() == 1;
  }

 private:
  PacketBuffer* buf_ = nullptr;
};

/// Pool counters. `outstanding`/`high_water` track buffers handed out
/// and not yet fully released; at clean shutdown `outstanding == 0`.
struct BufferPoolStats {
  std::uint64_t pool_hits = 0;      ///< acquire served from the freelist
  std::uint64_t pool_misses = 0;    ///< acquire had to heap-allocate a slab
  std::uint64_t heap_allocations = 0;     ///< misses + oversize
  std::uint64_t oversize_allocations = 0; ///< frames beyond buffer_capacity
  std::uint64_t outstanding = 0;    ///< buffers currently referenced
  std::uint64_t high_water = 0;     ///< max outstanding ever observed
  std::uint64_t freelist_size = 0;  ///< idle slabs awaiting reuse
};

struct BufferPoolConfig {
  /// Slab size. Sized for the largest realistic frame in the simulator
  /// (DNS amplification responses reach ~3 KiB); anything larger falls
  /// back to a one-off heap buffer that is freed, not recycled.
  std::uint32_t buffer_capacity = 4096;
  /// Freelist cap: idle slabs beyond this are freed instead of pooled.
  std::size_t max_pooled = 8192;
};

/// Thread-safe slab pool. acquire() pops the freelist when possible and
/// heap-allocates otherwise (exhaustion degrades gracefully — it never
/// blocks or fails); the last release() of a slab pushes it back.
class BufferPool {
 public:
  explicit BufferPool(BufferPoolConfig config = {});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with size() == n, contents uninitialized. Never null.
  BufferRef acquire(std::size_t n);

  BufferPoolStats stats() const;
  const BufferPoolConfig& config() const noexcept { return config_; }

 private:
  friend class PacketBuffer;
  void on_last_release(PacketBuffer* buf) noexcept;

  BufferPoolConfig config_;

  mutable std::mutex mu_;
  std::vector<PacketBuffer*> freelist_;

  std::atomic<std::uint64_t> pool_hits_{0};
  std::atomic<std::uint64_t> pool_misses_{0};
  std::atomic<std::uint64_t> oversize_allocations_{0};
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

/// Process-wide pool used by packet::Packet. Leaked on purpose: packets
/// held by static-duration objects must be able to release safely after
/// main() returns.
BufferPool& default_buffer_pool();

}  // namespace campuslab::packet

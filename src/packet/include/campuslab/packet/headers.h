// Protocol header value types with wire encode/decode.
//
// Each header is a plain struct mirroring the RFC field layout, with
// `decode(ByteReader&)` / `encode(ByteWriter&)` members. Decode never
// throws: it reads through the bounds-checked ByteReader and the caller
// checks `reader.ok()` (or uses PacketView, which does so centrally).
#pragma once

#include <cstdint>

#include "campuslab/packet/addr.h"
#include "campuslab/util/bytes.h"

namespace campuslab::packet {

/// EtherType values the library understands.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kIpv6 = 0x86DD,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;

  static EthernetHeader decode(ByteReader& r);
  void encode(ByteWriter& w) const;
};

/// IPv4 header (no options support on encode; options skipped on decode).
struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;
  static constexpr std::uint8_t kDefaultTtl = 64;

  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // header length in 32-bit words
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t flags = 0;           // bit2=reserved, bit1=DF, bit0=MF (of the 3-bit field)
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = kDefaultTtl;
  std::uint8_t protocol = 0;
  std::uint16_t header_checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;

  std::size_t header_bytes() const noexcept {
    return static_cast<std::size_t>(ihl) * 4;
  }

  /// Decodes the fixed header and skips options.
  static Ipv4Header decode(ByteReader& r);
  /// Encodes with a correct header checksum.
  void encode(ByteWriter& w) const;

  /// Recompute the checksum this header would carry on the wire.
  std::uint16_t compute_checksum() const;
};

/// IPv6 fixed header.
struct Ipv6Header {
  static constexpr std::size_t kSize = 40;

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Address src;
  Ipv6Address dst;

  static Ipv6Header decode(ByteReader& r);
  void encode(ByteWriter& w) const;
};

/// TCP flag bits.
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
  static constexpr std::uint8_t kUrg = 0x20;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // header length in 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent_pointer = 0;

  std::size_t header_bytes() const noexcept {
    return static_cast<std::size_t>(data_offset) * 4;
  }

  bool syn() const noexcept { return flags & TcpFlags::kSyn; }
  bool ack_flag() const noexcept { return flags & TcpFlags::kAck; }
  bool fin() const noexcept { return flags & TcpFlags::kFin; }
  bool rst() const noexcept { return flags & TcpFlags::kRst; }

  /// Decodes the fixed header and skips options.
  static TcpHeader decode(ByteReader& r);
  void encode(ByteWriter& w) const;  // checksum written as stored
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  static UdpHeader decode(ByteReader& r);
  void encode(ByteWriter& w) const;
};

struct IcmpHeader {
  static constexpr std::size_t kSize = 8;
  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::uint8_t kDestUnreachable = 3;
  static constexpr std::uint8_t kEchoRequest = 8;
  static constexpr std::uint8_t kTimeExceeded = 11;

  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint32_t rest = 0;  // id/seq for echo, unused/MTU for others

  static IcmpHeader decode(ByteReader& r);
  void encode(ByteWriter& w) const;
};

}  // namespace campuslab::packet

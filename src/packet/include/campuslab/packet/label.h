// Ground-truth traffic labels.
//
// The paper's central "data problem" is that labelled network data is
// largely non-existent. CampusLab's simulator labels every packet at
// generation time, and the label travels with the packet through capture
// and into the data store — giving the platform the IMAGENET-style
// supervised ground truth the paper calls for.
#pragma once

#include <cstdint>
#include <string_view>

namespace campuslab::packet {

enum class TrafficLabel : std::uint8_t {
  kBenign = 0,
  kDnsAmplification = 1,
  kSynFlood = 2,
  kPortScan = 3,
  kSshBruteForce = 4,
  kWorm = 5,          // self-propagating worm scan/exploit traffic
  kExfiltration = 6,  // low-and-slow data exfiltration / C2 beaconing
};

constexpr std::string_view to_string(TrafficLabel label) noexcept {
  switch (label) {
    case TrafficLabel::kBenign: return "benign";
    case TrafficLabel::kDnsAmplification: return "dns_amplification";
    case TrafficLabel::kSynFlood: return "syn_flood";
    case TrafficLabel::kPortScan: return "port_scan";
    case TrafficLabel::kSshBruteForce: return "ssh_brute_force";
    case TrafficLabel::kWorm: return "worm";
    case TrafficLabel::kExfiltration: return "exfiltration";
  }
  return "unknown";
}

constexpr bool is_attack(TrafficLabel label) noexcept {
  return label != TrafficLabel::kBenign;
}

inline constexpr std::size_t kTrafficLabelCount = 7;

}  // namespace campuslab::packet

// DNS message parsing and construction (RFC 1035 subset).
//
// DNS matters to CampusLab because the paper's running example is a
// DNS-amplification DDoS: small ANY/TXT queries with a spoofed source
// trigger large responses aimed at the victim. The decoder handles label
// compression; the encoder emits queries and padded responses so the
// simulator can produce realistic amplification factors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campuslab/util/bytes.h"
#include "campuslab/util/result.h"

namespace campuslab::packet {

enum class DnsType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
  kAny = 255,
};

enum class DnsRcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kRefused = 5,
};

struct DnsQuestion {
  std::string name;  // dotted, lower-case, no trailing dot
  std::uint16_t qtype = 1;
  std::uint16_t qclass = 1;
};

struct DnsRecord {
  std::string name;
  std::uint16_t type = 1;
  std::uint16_t rclass = 1;
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;
};

struct DnsMessage {
  static constexpr std::size_t kHeaderSize = 12;
  static constexpr std::uint16_t kPort = 53;

  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t opcode = 0;
  bool authoritative = false;
  bool truncated = false;
  bool recursion_desired = true;
  bool recursion_available = false;
  DnsRcode rcode = DnsRcode::kNoError;

  std::vector<DnsQuestion> questions;
  std::vector<DnsRecord> answers;
  std::vector<DnsRecord> authorities;
  std::vector<DnsRecord> additionals;

  /// Parse a full DNS message (compression pointers supported, with a
  /// jump limit to defeat pointer loops). Returns an error Result on
  /// malformed input.
  static Result<DnsMessage> parse(std::span<const std::uint8_t> payload);

  /// Serialize. Encoder writes uncompressed names.
  std::vector<std::uint8_t> serialize() const;

  /// Total rdata bytes in answers — the "payload" an amplifier reflects.
  std::size_t answer_bytes() const noexcept;
};

/// Build a standard query for `name`/`type` — the attacker/client side.
DnsMessage make_dns_query(std::uint16_t id, const std::string& name,
                          DnsType type);

/// Build a response to `query` carrying `answer_count` records padded so
/// the serialized message is approximately `target_bytes` — the
/// amplifier side. target_bytes below the natural minimum is clamped.
DnsMessage make_dns_response(const DnsMessage& query,
                             std::size_t answer_count,
                             std::size_t target_bytes);

}  // namespace campuslab::packet

#include "campuslab/packet/dns.h"

#include <algorithm>

namespace campuslab::packet {
namespace {

constexpr int kMaxCompressionJumps = 16;
constexpr std::size_t kMaxNameLength = 255;

/// Decode a possibly-compressed name starting at `offset` within `msg`.
/// On success advances `offset` past the name as stored (i.e. to the
/// byte after the first pointer or the terminating zero label).
bool decode_name(std::span<const std::uint8_t> msg, std::size_t& offset,
                 std::string& out) {
  out.clear();
  std::size_t pos = offset;
  bool jumped = false;
  int jumps = 0;
  while (true) {
    if (pos >= msg.size()) return false;
    const std::uint8_t len = msg[pos];
    if ((len & 0xC0) == 0xC0) {  // compression pointer
      if (pos + 1 >= msg.size()) return false;
      if (++jumps > kMaxCompressionJumps) return false;
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | msg[pos + 1];
      if (!jumped) offset = pos + 2;
      jumped = true;
      pos = target;
      continue;
    }
    if (len & 0xC0) return false;  // 0x40/0x80 prefixes are reserved
    ++pos;
    if (len == 0) break;
    if (pos + len > msg.size()) return false;
    if (!out.empty()) out += '.';
    for (std::size_t i = 0; i < len; ++i) {
      char c = static_cast<char>(msg[pos + i]);
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      out += c;
    }
    pos += len;
    if (out.size() > kMaxNameLength) return false;
  }
  if (!jumped) offset = pos;
  return true;
}

void encode_name(ByteWriter& w, const std::string& name) {
  std::size_t start = 0;
  while (start < name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string::npos) dot = name.size();
    const std::size_t len = std::min<std::size_t>(dot - start, 63);
    w.u8(static_cast<std::uint8_t>(len));
    for (std::size_t i = 0; i < len; ++i)
      w.u8(static_cast<std::uint8_t>(name[start + i]));
    start = dot + 1;
  }
  w.u8(0);
}

std::size_t encoded_name_size(const std::string& name) {
  return name.empty() ? 1 : name.size() + 2;
}

bool decode_record(std::span<const std::uint8_t> msg, std::size_t& offset,
                   DnsRecord& rec) {
  if (!decode_name(msg, offset, rec.name)) return false;
  if (offset + 10 > msg.size()) return false;
  auto u16at = [&](std::size_t o) {
    return static_cast<std::uint16_t>((msg[o] << 8) | msg[o + 1]);
  };
  rec.type = u16at(offset);
  rec.rclass = u16at(offset + 2);
  rec.ttl = (static_cast<std::uint32_t>(u16at(offset + 4)) << 16) |
            u16at(offset + 6);
  const std::uint16_t rdlength = u16at(offset + 8);
  offset += 10;
  if (offset + rdlength > msg.size()) return false;
  rec.rdata.assign(msg.begin() + static_cast<std::ptrdiff_t>(offset),
                   msg.begin() + static_cast<std::ptrdiff_t>(offset) +
                       rdlength);
  offset += rdlength;
  return true;
}

void encode_record(ByteWriter& w, const DnsRecord& rec) {
  encode_name(w, rec.name);
  w.u16(rec.type);
  w.u16(rec.rclass);
  w.u32(rec.ttl);
  w.u16(static_cast<std::uint16_t>(rec.rdata.size()));
  w.bytes(rec.rdata);
}

}  // namespace

Result<DnsMessage> DnsMessage::parse(std::span<const std::uint8_t> payload) {
  if (payload.size() < kHeaderSize)
    return Error::make("truncated", "DNS message shorter than header");
  DnsMessage m;
  auto u16at = [&](std::size_t o) {
    return static_cast<std::uint16_t>((payload[o] << 8) | payload[o + 1]);
  };
  m.id = u16at(0);
  const std::uint16_t flags = u16at(2);
  m.is_response = (flags & 0x8000) != 0;
  m.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0F);
  m.authoritative = (flags & 0x0400) != 0;
  m.truncated = (flags & 0x0200) != 0;
  m.recursion_desired = (flags & 0x0100) != 0;
  m.recursion_available = (flags & 0x0080) != 0;
  m.rcode = static_cast<DnsRcode>(flags & 0x000F);

  const std::uint16_t qdcount = u16at(4);
  const std::uint16_t ancount = u16at(6);
  const std::uint16_t nscount = u16at(8);
  const std::uint16_t arcount = u16at(10);

  std::size_t offset = kHeaderSize;
  for (std::uint16_t i = 0; i < qdcount; ++i) {
    DnsQuestion q;
    if (!decode_name(payload, offset, q.name))
      return Error::make("malformed", "bad question name");
    if (offset + 4 > payload.size())
      return Error::make("truncated", "question fields truncated");
    q.qtype = u16at(offset);
    q.qclass = u16at(offset + 2);
    offset += 4;
    m.questions.push_back(std::move(q));
  }
  auto parse_section = [&](std::uint16_t count,
                           std::vector<DnsRecord>& out) -> bool {
    for (std::uint16_t i = 0; i < count; ++i) {
      DnsRecord rec;
      if (!decode_record(payload, offset, rec)) return false;
      out.push_back(std::move(rec));
    }
    return true;
  };
  if (!parse_section(ancount, m.answers) ||
      !parse_section(nscount, m.authorities) ||
      !parse_section(arcount, m.additionals))
    return Error::make("malformed", "bad resource record");
  return m;
}

std::vector<std::uint8_t> DnsMessage::serialize() const {
  ByteWriter w(kHeaderSize + 64);
  w.u16(id);
  std::uint16_t flags = 0;
  if (is_response) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((opcode & 0x0F) << 11);
  if (authoritative) flags |= 0x0400;
  if (truncated) flags |= 0x0200;
  if (recursion_desired) flags |= 0x0100;
  if (recursion_available) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(rcode) & 0x000F;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size()));
  for (const auto& q : questions) {
    encode_name(w, q.name);
    w.u16(q.qtype);
    w.u16(q.qclass);
  }
  for (const auto& r : answers) encode_record(w, r);
  for (const auto& r : authorities) encode_record(w, r);
  for (const auto& r : additionals) encode_record(w, r);
  return std::move(w).take();
}

std::size_t DnsMessage::answer_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& r : answers) total += r.rdata.size();
  return total;
}

DnsMessage make_dns_query(std::uint16_t id, const std::string& name,
                          DnsType type) {
  DnsMessage m;
  m.id = id;
  m.is_response = false;
  m.recursion_desired = true;
  m.questions.push_back(
      DnsQuestion{name, static_cast<std::uint16_t>(type), 1});
  return m;
}

DnsMessage make_dns_response(const DnsMessage& query,
                             std::size_t answer_count,
                             std::size_t target_bytes) {
  DnsMessage m;
  m.id = query.id;
  m.is_response = true;
  m.authoritative = true;
  m.recursion_desired = query.recursion_desired;
  m.recursion_available = true;
  m.questions = query.questions;

  const std::string name =
      query.questions.empty() ? "unknown.invalid" : query.questions[0].name;
  if (answer_count == 0) answer_count = 1;

  // Fixed per-message and per-record overheads, then pad rdata evenly to
  // approach target_bytes.
  std::size_t fixed = DnsMessage::kHeaderSize;
  for (const auto& q : m.questions) fixed += encoded_name_size(q.name) + 4;
  const std::size_t per_record = encoded_name_size(name) + 10;
  const std::size_t overhead = fixed + answer_count * per_record;
  const std::size_t budget =
      target_bytes > overhead ? target_bytes - overhead : answer_count;
  const std::size_t per_rdata =
      std::max<std::size_t>(1, budget / answer_count);

  for (std::size_t i = 0; i < answer_count; ++i) {
    DnsRecord rec;
    rec.name = name;
    rec.type = static_cast<std::uint16_t>(DnsType::kTxt);
    rec.rclass = 1;
    rec.ttl = 300;
    rec.rdata.assign(std::min<std::size_t>(per_rdata, 0xFFFF),
                     static_cast<std::uint8_t>('x'));
    m.answers.push_back(std::move(rec));
  }
  return m;
}

}  // namespace campuslab::packet

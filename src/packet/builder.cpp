#include "campuslab/packet/builder.h"

#include <cassert>

#include "campuslab/packet/checksum.h"

namespace campuslab::packet {

PacketBuilder& PacketBuilder::tcp(const Endpoint& src, const Endpoint& dst,
                                  std::uint8_t flags, std::uint32_t seq,
                                  std::uint32_t ack) {
  src_ = src;
  dst_ = dst;
  l4_ = L4::kTcp;
  tcp_flags_ = flags;
  seq_ = seq;
  ack_ = ack;
  return *this;
}

PacketBuilder& PacketBuilder::udp(const Endpoint& src, const Endpoint& dst) {
  src_ = src;
  dst_ = dst;
  l4_ = L4::kUdp;
  return *this;
}

PacketBuilder& PacketBuilder::icmp(const Endpoint& src, const Endpoint& dst,
                                   std::uint8_t type, std::uint8_t code,
                                   std::uint32_t rest) {
  src_ = src;
  dst_ = dst;
  l4_ = L4::kIcmp;
  icmp_type_ = type;
  icmp_code_ = code;
  icmp_rest_ = rest;
  return *this;
}

PacketBuilder& PacketBuilder::payload(std::span<const std::uint8_t> data) {
  payload_.assign(data.begin(), data.end());
  return *this;
}

PacketBuilder& PacketBuilder::payload_size(std::size_t n) {
  payload_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    payload_[i] = static_cast<std::uint8_t>(0xA5 ^ (i & 0xFF));
  return *this;
}

Packet PacketBuilder::build() const {
  assert(l4_ != L4::kNone && "call tcp()/udp()/icmp() before build()");

  // L4 segment first (checksum needs the pseudo-header + full segment).
  ByteWriter l4w(64 + payload_.size());
  IpProto proto = IpProto::kTcp;
  switch (l4_) {
    case L4::kTcp: {
      proto = IpProto::kTcp;
      TcpHeader t;
      t.src_port = src_.port;
      t.dst_port = dst_.port;
      t.seq = seq_;
      t.ack = ack_;
      t.flags = tcp_flags_;
      t.checksum = 0;
      t.encode(l4w);
      l4w.bytes(payload_);
      l4w.patch_u16(16, transport_checksum(src_.ip, dst_.ip, proto,
                                           l4w.view()));
      break;
    }
    case L4::kUdp: {
      proto = IpProto::kUdp;
      UdpHeader u;
      u.src_port = src_.port;
      u.dst_port = dst_.port;
      u.length = static_cast<std::uint16_t>(UdpHeader::kSize +
                                            payload_.size());
      u.checksum = 0;
      u.encode(l4w);
      l4w.bytes(payload_);
      l4w.patch_u16(6, transport_checksum(src_.ip, dst_.ip, proto,
                                          l4w.view()));
      break;
    }
    case L4::kIcmp: {
      proto = IpProto::kIcmp;
      IcmpHeader ic;
      ic.type = icmp_type_;
      ic.code = icmp_code_;
      ic.rest = icmp_rest_;
      ic.checksum = 0;
      ic.encode(l4w);
      l4w.bytes(payload_);
      l4w.patch_u16(2, internet_checksum(l4w.view()));
      break;
    }
    case L4::kNone:
      break;
  }

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kMinSize +
                                               l4w.size());
  // Deterministic but distinct identification per (flow, payload head).
  ip.identification = static_cast<std::uint16_t>(
      (src_.ip.value() ^ dst_.ip.value() ^ seq_) & 0xFFFF);
  ip.flags = 0x2;  // DF
  ip.ttl = ttl_;
  ip.protocol = static_cast<std::uint8_t>(proto);
  ip.src = src_.ip;
  ip.dst = dst_.ip;

  EthernetHeader eth;
  eth.dst = dst_.mac;
  eth.src = src_.mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  ByteWriter frame(EthernetHeader::kSize + ip.total_length);
  eth.encode(frame);
  ip.encode(frame);
  frame.bytes(l4w.view());

  Packet pkt;
  pkt.ts = ts_;
  pkt.assign(frame.view());  // straight into a pool buffer
  pkt.label = label_;
  pkt.scenario_id = scenario_id_;
  return pkt;
}

Packet build_dns_packet(Timestamp ts, const Endpoint& src,
                        const Endpoint& dst, const DnsMessage& msg,
                        TrafficLabel label) {
  const auto body = msg.serialize();
  return PacketBuilder(ts).udp(src, dst).payload(body).label(label).build();
}

}  // namespace campuslab::packet

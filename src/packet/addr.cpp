#include "campuslab/packet/addr.h"

#include <charconv>
#include <cstdio>

namespace campuslab::packet {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = p + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255 || next == p) return std::nullopt;
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

std::string Ipv6Address::to_string() const {
  char buf[40];
  std::snprintf(buf, sizeof buf,
                "%02x%02x:%02x%02x:%02x%02x:%02x%02x:"
                "%02x%02x:%02x%02x:%02x%02x:%02x%02x",
                bytes_[0], bytes_[1], bytes_[2], bytes_[3], bytes_[4],
                bytes_[5], bytes_[6], bytes_[7], bytes_[8], bytes_[9],
                bytes_[10], bytes_[11], bytes_[12], bytes_[13], bytes_[14],
                bytes_[15]);
  return buf;
}

std::uint64_t FiveTuple::hash() const noexcept {
  // SplitMix-style avalanche over the packed tuple.
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  std::uint64_t a = (static_cast<std::uint64_t>(src.value()) << 32) |
                    dst.value();
  std::uint64_t b = (static_cast<std::uint64_t>(src_port) << 32) |
                    (static_cast<std::uint64_t>(dst_port) << 16) | proto;
  return mix(mix(a) ^ b);
}

std::string FiveTuple::to_string() const {
  std::string s = src.to_string();
  s += ':';
  s += std::to_string(src_port);
  s += " -> ";
  s += dst.to_string();
  s += ':';
  s += std::to_string(dst_port);
  s += " proto=";
  s += std::to_string(proto);
  return s;
}

}  // namespace campuslab::packet

#include "campuslab/packet/headers.h"

#include "campuslab/packet/checksum.h"

namespace campuslab::packet {

EthernetHeader EthernetHeader::decode(ByteReader& r) {
  EthernetHeader h;
  std::array<std::uint8_t, 6> mac{};
  auto dst = r.bytes(6);
  if (dst.size() == 6) std::copy(dst.begin(), dst.end(), mac.begin());
  h.dst = MacAddress(mac);
  auto src = r.bytes(6);
  if (src.size() == 6) std::copy(src.begin(), src.end(), mac.begin());
  h.src = MacAddress(mac);
  h.ether_type = r.u16();
  return h;
}

void EthernetHeader::encode(ByteWriter& w) const {
  w.bytes(dst.octets());
  w.bytes(src.octets());
  w.u16(ether_type);
}

Ipv4Header Ipv4Header::decode(ByteReader& r) {
  Ipv4Header h;
  const std::uint8_t ver_ihl = r.u8();
  h.version = ver_ihl >> 4;
  h.ihl = ver_ihl & 0x0F;
  h.dscp_ecn = r.u8();
  h.total_length = r.u16();
  h.identification = r.u16();
  const std::uint16_t flags_frag = r.u16();
  h.flags = static_cast<std::uint8_t>(flags_frag >> 13);
  h.fragment_offset = flags_frag & 0x1FFF;
  h.ttl = r.u8();
  h.protocol = r.u8();
  h.header_checksum = r.u16();
  h.src = Ipv4Address(r.u32());
  h.dst = Ipv4Address(r.u32());
  if (h.ihl > 5) r.skip((static_cast<std::size_t>(h.ihl) - 5) * 4);
  return h;
}

void Ipv4Header::encode(ByteWriter& w) const {
  const std::size_t start = w.size();
  w.u8(static_cast<std::uint8_t>((version << 4) | (ihl & 0x0F)));
  w.u8(dscp_ecn);
  w.u16(total_length);
  w.u16(identification);
  w.u16(static_cast<std::uint16_t>((flags << 13) |
                                   (fragment_offset & 0x1FFF)));
  w.u8(ttl);
  w.u8(protocol);
  w.u16(0);  // checksum patched below
  w.u32(src.value());
  w.u32(dst.value());
  const auto header =
      w.view().subspan(start, kMinSize);
  w.patch_u16(start + 10, internet_checksum(header));
}

std::uint16_t Ipv4Header::compute_checksum() const {
  ByteWriter w(kMinSize);
  Ipv4Header copy = *this;
  copy.header_checksum = 0;
  // encode() already zeroes and patches; reuse it and read the patch back.
  copy.encode(w);
  const auto view = w.view();
  return static_cast<std::uint16_t>((view[10] << 8) | view[11]);
}

Ipv6Header Ipv6Header::decode(ByteReader& r) {
  Ipv6Header h;
  const std::uint32_t first = r.u32();
  h.traffic_class = static_cast<std::uint8_t>((first >> 20) & 0xFF);
  h.flow_label = first & 0xFFFFF;
  h.payload_length = r.u16();
  h.next_header = r.u8();
  h.hop_limit = r.u8();
  std::array<std::uint8_t, 16> addr{};
  auto src = r.bytes(16);
  if (src.size() == 16) std::copy(src.begin(), src.end(), addr.begin());
  h.src = Ipv6Address(addr);
  auto dst = r.bytes(16);
  if (dst.size() == 16) std::copy(dst.begin(), dst.end(), addr.begin());
  h.dst = Ipv6Address(addr);
  return h;
}

void Ipv6Header::encode(ByteWriter& w) const {
  w.u32((6u << 28) | (static_cast<std::uint32_t>(traffic_class) << 20) |
        (flow_label & 0xFFFFF));
  w.u16(payload_length);
  w.u8(next_header);
  w.u8(hop_limit);
  w.bytes(src.bytes());
  w.bytes(dst.bytes());
}

TcpHeader TcpHeader::decode(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint16_t off_flags = r.u16();
  h.data_offset = static_cast<std::uint8_t>(off_flags >> 12);
  h.flags = static_cast<std::uint8_t>(off_flags & 0x3F);
  h.window = r.u16();
  h.checksum = r.u16();
  h.urgent_pointer = r.u16();
  if (h.data_offset > 5)
    r.skip((static_cast<std::size_t>(h.data_offset) - 5) * 4);
  return h;
}

void TcpHeader::encode(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u16(static_cast<std::uint16_t>((data_offset << 12) | flags));
  w.u16(window);
  w.u16(checksum);
  w.u16(urgent_pointer);
}

UdpHeader UdpHeader::decode(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  return h;
}

void UdpHeader::encode(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(checksum);
}

IcmpHeader IcmpHeader::decode(ByteReader& r) {
  IcmpHeader h;
  h.type = r.u8();
  h.code = r.u8();
  h.checksum = r.u16();
  h.rest = r.u32();
  return h;
}

void IcmpHeader::encode(ByteWriter& w) const {
  w.u8(type);
  w.u8(code);
  w.u16(checksum);
  w.u32(rest);
}

}  // namespace campuslab::packet

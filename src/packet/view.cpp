#include "campuslab/packet/view.h"

#include <algorithm>
#include <cstring>

namespace campuslab::packet {

void Packet::assign(std::span<const std::uint8_t> frame) {
  if (buf_ && buf_.unique() && frame.size() <= buf_->capacity()) {
    // memmove: `frame` may alias this packet's own bytes.
    if (!frame.empty())
      std::memmove(buf_->data(), frame.data(), frame.size());
    buf_->set_size(static_cast<std::uint32_t>(frame.size()));
    return;
  }
  auto fresh = default_buffer_pool().acquire(frame.size());
  if (!frame.empty())
    std::memcpy(fresh->data(), frame.data(), frame.size());
  buf_ = std::move(fresh);
}

void Packet::assign(std::size_t n, std::uint8_t fill) {
  if (buf_ && buf_.unique() && n <= buf_->capacity()) {
    buf_->set_size(static_cast<std::uint32_t>(n));
  } else {
    buf_ = default_buffer_pool().acquire(n);
  }
  if (n > 0) std::memset(buf_->data(), fill, n);
}

void Packet::resize(std::size_t n) {
  if (buf_ && buf_.unique() && n <= buf_->capacity()) {
    const std::size_t old = buf_->size();
    if (n > old) std::memset(buf_->data() + old, 0, n - old);
    buf_->set_size(static_cast<std::uint32_t>(n));
    return;
  }
  const std::size_t keep = std::min(size(), n);
  auto fresh = default_buffer_pool().acquire(n);
  if (keep > 0) std::memcpy(fresh->data(), buf_->data(), keep);
  if (n > keep) std::memset(fresh->data() + keep, 0, n - keep);
  buf_ = std::move(fresh);
}

std::span<std::uint8_t> Packet::mutable_bytes() {
  if (!buf_) return {};
  if (!buf_.unique()) {
    auto fresh = default_buffer_pool().acquire(buf_->size());
    std::memcpy(fresh->data(), buf_->data(), buf_->size());
    buf_ = std::move(fresh);
  }
  return {buf_->data(), buf_->size()};
}

PacketView::PacketView(std::span<const std::uint8_t> frame) : frame_(frame) {
  ByteReader r(frame);
  eth_ = EthernetHeader::decode(r);
  if (!r.ok()) return;

  if (eth_.ether_type == static_cast<std::uint16_t>(EtherType::kIpv4)) {
    ipv4_ = Ipv4Header::decode(r);
    if (!r.ok() || ipv4_.version != 4 || ipv4_.ihl < 5) return;
    has_ipv4_ = true;
  } else if (eth_.ether_type ==
             static_cast<std::uint16_t>(EtherType::kIpv6)) {
    ipv6_ = Ipv6Header::decode(r);
    if (!r.ok()) return;
    has_ipv6_ = true;
  } else {
    return;  // ARP etc.: L2-only view
  }

  const std::uint8_t proto =
      has_ipv4_ ? ipv4_.protocol : ipv6_.next_header;
  switch (static_cast<IpProto>(proto)) {
    case IpProto::kTcp:
      tcp_ = TcpHeader::decode(r);
      if (!r.ok() || tcp_.data_offset < 5) return;
      has_tcp_ = true;
      break;
    case IpProto::kUdp:
      udp_ = UdpHeader::decode(r);
      if (!r.ok()) return;
      has_udp_ = true;
      break;
    case IpProto::kIcmp:
      icmp_ = IcmpHeader::decode(r);
      if (!r.ok()) return;
      has_icmp_ = true;
      break;
    default:
      break;  // unknown transport: view stops at L3
  }
  payload_ = r.rest();

  // Clamp payload to the IP total length so Ethernet padding is not
  // mistaken for application data.
  if (has_ipv4_) {
    const std::size_t ip_payload =
        ipv4_.total_length >= ipv4_.header_bytes()
            ? ipv4_.total_length - ipv4_.header_bytes()
            : 0;
    std::size_t l4 = 0;
    if (has_tcp_) l4 = tcp_.header_bytes();
    else if (has_udp_) l4 = UdpHeader::kSize;
    else if (has_icmp_) l4 = IcmpHeader::kSize;
    const std::size_t app = ip_payload >= l4 ? ip_payload - l4 : 0;
    if (payload_.size() > app) payload_ = payload_.first(app);
  }
  valid_ = true;
}

std::optional<FiveTuple> PacketView::five_tuple() const noexcept {
  if (!has_ipv4_) return std::nullopt;
  FiveTuple t;
  t.src = ipv4_.src;
  t.dst = ipv4_.dst;
  t.proto = ipv4_.protocol;
  if (has_tcp_) {
    t.src_port = tcp_.src_port;
    t.dst_port = tcp_.dst_port;
  } else if (has_udp_) {
    t.src_port = udp_.src_port;
    t.dst_port = udp_.dst_port;
  }
  return t;
}

bool PacketView::is_dns() const noexcept {
  return has_udp_ &&
         (udp_.src_port == DnsMessage::kPort ||
          udp_.dst_port == DnsMessage::kPort);
}

}  // namespace campuslab::packet

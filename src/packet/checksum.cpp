#include "campuslab/packet/checksum.h"

namespace campuslab::packet {

void ChecksumAccumulator::add(std::span<const std::uint8_t> data) noexcept {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Complete the dangling high byte with this chunk's first byte.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint32_t>(data[i]) << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add_u16(std::uint16_t v) noexcept {
  // Only valid on even alignment; all internal uses satisfy this.
  sum_ += v;
}

void ChecksumAccumulator::add_u32(std::uint32_t v) noexcept {
  sum_ += v >> 16;
  sum_ += v & 0xFFFF;
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t s = sum_;
  while (s >> 16) s = (s & 0xFFFF) + (s >> 16);
  return static_cast<std::uint16_t>(~s);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

std::uint16_t transport_checksum(
    Ipv4Address src, Ipv4Address dst, IpProto proto,
    std::span<const std::uint8_t> segment) noexcept {
  ChecksumAccumulator acc;
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  acc.add_u16(static_cast<std::uint16_t>(proto));
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

}  // namespace campuslab::packet

// Determinism regression: with shards=1 the sharded engine must produce
// a byte-identical flow-export stream to the legacy CaptureEngine on
// the same simulated trace. Every downstream EXPERIMENTS number is
// derived from these exports, so this is the contract that lets later
// PRs swap the sharded pipeline in without re-baselining results.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "campuslab/capture/engine.h"
#include "campuslab/capture/sharded_engine.h"
#include "campuslab/features/flow_merge.h"
#include "campuslab/sim/simulator.h"

namespace campuslab::capture {
namespace {

/// Field-by-field serialization (no struct padding) so "byte-identical"
/// is well-defined.
void serialize(const FlowRecord& r, std::vector<std::uint8_t>& out) {
  auto put = [&out](const auto& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), p, p + sizeof(v));
  };
  put(r.tuple.src.value());
  put(r.tuple.dst.value());
  put(r.tuple.src_port);
  put(r.tuple.dst_port);
  put(r.tuple.proto);
  put(static_cast<std::uint8_t>(r.initial_direction));
  put(r.first_ts.nanos());
  put(r.last_ts.nanos());
  put(r.packets);
  put(r.bytes);
  put(r.payload_bytes);
  put(r.fwd_packets);
  put(r.rev_packets);
  put(r.syn_count);
  put(r.synack_count);
  put(r.fin_count);
  put(r.rst_count);
  put(r.psh_count);
  put(static_cast<std::uint8_t>(r.saw_dns));
  for (const auto count : r.label_packets) put(count);
}

std::vector<std::uint8_t> serialize_all(
    const std::vector<FlowRecord>& records) {
  std::vector<std::uint8_t> out;
  for (const auto& r : records) serialize(r, out);
  return out;
}

/// A few seconds of campus traffic with one injected attack, recorded
/// off the simulator tap so both pipelines replay the exact same trace.
std::vector<TaggedPacket> record_trace() {
  sim::ScenarioConfig scenario;
  scenario.campus.seed = 1234;
  scenario.campus.diurnal = false;
  scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(800)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(3)));

  sim::CampusSimulator simulator(scenario);
  std::vector<TaggedPacket> trace;
  simulator.network().set_tap(
      [&](const packet::Packet& p, sim::Direction d) {
        trace.push_back(TaggedPacket{p, d});
      });
  simulator.run_for(Duration::seconds(8));
  return trace;
}

TEST(ShardedDeterminism, SingleShardMatchesLegacyEngineByteForByte) {
  const auto trace = record_trace();
  ASSERT_GT(trace.size(), 1000u);

  // Legacy pipeline: CaptureEngine -> FlowMeter, consumed inline.
  std::vector<FlowRecord> legacy_exports;
  {
    CaptureEngine engine;
    FlowMeter meter;
    meter.set_sink(
        [&](const FlowRecord& r) { legacy_exports.push_back(r); });
    engine.add_sink(
        [&](const TaggedPacket& t) { meter.offer(t.pkt, t.dir); });
    for (const auto& tagged : trace) {
      engine.offer(tagged.pkt, tagged.dir);
      engine.poll(64);
    }
    engine.drain();
    meter.flush();
    EXPECT_EQ(engine.stats().dropped, 0u);
  }

  // Sharded pipeline, shards=1, simulation mode (same thread, same
  // cadence): must reproduce the identical export stream.
  std::vector<FlowRecord> sharded_exports;
  {
    ShardedCaptureConfig cfg;
    cfg.shards = 1;
    cfg.ring_capacity = 1 << 16;
    ShardedCaptureEngine engine(cfg);
    FlowMeter meter;
    meter.set_sink(
        [&](const FlowRecord& r) { sharded_exports.push_back(r); });
    engine.add_sink_factory([&](std::size_t) {
      return [&](const TaggedPacket& t) { meter.offer(t.pkt, t.dir); };
    });
    for (const auto& tagged : trace) {
      engine.offer(tagged.pkt, tagged.dir);
      engine.poll_shard(0, 64);
    }
    engine.drain();
    meter.flush();
    EXPECT_EQ(engine.stats().dropped, 0u);
  }

  ASSERT_EQ(sharded_exports.size(), legacy_exports.size());
  EXPECT_EQ(serialize_all(sharded_exports), serialize_all(legacy_exports));
}

// The merged (canonically ordered) export is also invariant: sorting
// the legacy stream gives exactly the sharded collector's merge — and
// repeating the sharded run with threads reproduces the same bytes.
TEST(ShardedDeterminism, MergedExportIsCanonical) {
  const auto trace = record_trace();

  std::vector<FlowRecord> legacy_exports;
  {
    CaptureEngine engine;
    FlowMeter meter;
    meter.set_sink(
        [&](const FlowRecord& r) { legacy_exports.push_back(r); });
    engine.add_sink(
        [&](const TaggedPacket& t) { meter.offer(t.pkt, t.dir); });
    for (const auto& tagged : trace) {
      engine.offer(tagged.pkt, tagged.dir);
      engine.poll(64);
    }
    engine.drain();
    meter.flush();
  }
  auto canonical = features::merge_flow_exports({legacy_exports});

  auto sharded_merged = [&] {
    ShardedCaptureConfig cfg;
    cfg.shards = 1;
    cfg.ring_capacity = 1 << 16;
    ShardedCaptureEngine engine(cfg);
    features::ShardedFlowCollector flows(cfg.shards);
    engine.add_sink_factory([&](std::size_t s) {
      return [&flows, s](const TaggedPacket& t) {
        flows.meter(s).offer(t.pkt, t.dir);
      };
    });
    engine.start();  // real worker this time
    for (const auto& tagged : trace) {
      while (!engine.offer(tagged.pkt, tagged.dir)) {
      }
    }
    engine.stop();
    return flows.merged_export();
  }();

  EXPECT_EQ(serialize_all(sharded_merged), serialize_all(canonical));
}

}  // namespace
}  // namespace campuslab::capture

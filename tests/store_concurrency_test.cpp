// Concurrency tests for the store's snapshot-isolated query engine:
// results must survive retention evicting their segments (ASAN), stay
// fixed-size while ingest continues underneath, match serial execution
// bit-for-bit at any thread count, and hold their invariants under a
// full ingest+query+retention storm (TSAN).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "campuslab/store/datastore.h"
#include "campuslab/store/query_engine.h"

namespace campuslab::store {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;
using packet::TrafficLabel;

const Ipv4Address kHostA(10, 2, 16, 7);
const Ipv4Address kHostB(10, 2, 16, 8);
const Ipv4Address kWild(198, 51, 100, 1);

FlowRecord flow_at(double start_s, Ipv4Address src, Ipv4Address dst,
                   std::uint16_t sport, std::uint16_t dport,
                   std::uint8_t proto = 6,
                   TrafficLabel label = TrafficLabel::kBenign,
                   std::uint64_t bytes = 1500) {
  FlowRecord f;
  f.tuple = packet::FiveTuple{src, dst, sport, dport, proto};
  f.first_ts = Timestamp::from_seconds(start_s);
  f.last_ts = Timestamp::from_seconds(start_s + 0.05);
  f.packets = 3;
  f.bytes = bytes;
  f.label_packets[static_cast<std::size_t>(label)] = 3;
  return f;
}

FlowRecord random_flow(std::mt19937_64& rng, double start_s) {
  const bool a_src = rng() & 1;
  const auto other =
      Ipv4Address(10, 2, static_cast<std::uint8_t>(rng() % 4),
                  static_cast<std::uint8_t>(rng() % 200));
  const auto port = static_cast<std::uint16_t>(rng() % 7 == 0 ? 53 : 443);
  const auto label = rng() % 11 == 0 ? TrafficLabel::kPortScan
                                     : TrafficLabel::kBenign;
  return flow_at(start_s, a_src ? kHostA : other, a_src ? other : kHostA,
                 static_cast<std::uint16_t>(1024 + rng() % 50000), port,
                 rng() % 3 == 0 ? 17 : 6, label, 100 + rng() % 100000);
}

// Regression: a result pinned before retention must keep every row
// alive and readable after retention drops all of its segments. Before
// snapshot pinning this was a use-after-free (ASAN caught dangling
// StoredFlow pointers into freed segments).
TEST(StoreConcurrency, UseAfterEvictRegression) {
  DataStoreConfig cfg;
  cfg.segment_flows = 5;
  cfg.retention = Duration::seconds(100);
  DataStore store(cfg);
  for (int i = 0; i < 20; ++i)
    store.ingest(flow_at(i, kHostA, kHostB,
                         static_cast<std::uint16_t>(2000 + i), 443));

  const auto held = store.query(FlowQuery{});
  ASSERT_EQ(held.size(), 20u);
  auto cursor = store.open_cursor(FlowQuery{}.about_host(kHostA));
  ASSERT_TRUE(cursor.next());  // mid-iteration when eviction lands

  // Everything is now far older than the retention window.
  EXPECT_EQ(store.enforce_retention(Timestamp::from_seconds(1000)), 20u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.query(FlowQuery{}).empty());

  // The held result still reads cleanly out of its pinned segments.
  std::uint64_t last_id = 0;
  for (const auto& stored : held) {
    EXPECT_GT(stored.id, last_id);
    last_id = stored.id;
    EXPECT_EQ(stored.flow.tuple.src, kHostA);
    EXPECT_EQ(stored.flow.tuple.dst_port, 443);
  }
  std::size_t streamed = 1;
  while (cursor.next()) ++streamed;
  EXPECT_EQ(streamed, 20u);
}

TEST(StoreConcurrency, SnapshotIsolation) {
  DataStoreConfig cfg;
  cfg.segment_flows = 8;
  DataStore store(cfg);
  for (int i = 0; i < 10; ++i)
    store.ingest(flow_at(i, kHostA, kHostB, 4000, 443));

  const auto before = store.query(FlowQuery{});
  EXPECT_EQ(before.size(), 10u);
  for (int i = 10; i < 30; ++i)
    store.ingest(flow_at(i, kHostA, kHostB, 4000, 443));
  // The pinned result is a fixed point-in-time view...
  EXPECT_EQ(before.size(), 10u);
  EXPECT_EQ(before.back().flow.first_ts, Timestamp::from_seconds(9));
  // ...while a fresh query sees the new rows.
  EXPECT_EQ(store.query(FlowQuery{}).size(), 30u);
}

// Acceptance criterion: snapshot results are bit-identical between the
// parallel engine and a serial scan of the same (quiesced) store.
TEST(StoreConcurrency, ParallelMatchesSerialOnQuiescedStore) {
  DataStoreConfig cfg;
  cfg.segment_flows = 64;  // ~32 segments
  DataStore store(cfg);
  std::mt19937_64 rng(0xC0FFEE);
  for (int i = 0; i < 2000; ++i) store.ingest(random_flow(rng, i * 0.01));

  ScanPool pool(4);
  ASSERT_EQ(pool.threads(), 4u);
  const std::vector<FlowQuery> queries = {
      FlowQuery{},
      FlowQuery{}.about_host(kHostA),
      FlowQuery{}.on_port(53),
      FlowQuery{}.with_label(TrafficLabel::kPortScan),
      FlowQuery{}.between(Timestamp::from_seconds(5),
                          Timestamp::from_seconds(12)),
      FlowQuery{}.about_host(kHostA).with_proto(17).top(37),
  };
  for (const auto& q : queries) {
    const auto serial = store.query(q);
    const auto parallel = store.query(q, pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].id, serial[i].id);
      EXPECT_EQ(parallel[i].flow.bytes, serial[i].flow.bytes);
      EXPECT_EQ(parallel[i].flow.first_ts, serial[i].flow.first_ts);
    }
    EXPECT_EQ(parallel.stats().index, serial.stats().index);
    // Aggregates merge per-segment partials; same determinism claim.
    const auto agg_s = store.aggregate(q, GroupBy::kHost, 10);
    const auto agg_p = store.aggregate(q, GroupBy::kHost, 10, pool);
    ASSERT_EQ(agg_p.rows.size(), agg_s.rows.size());
    EXPECT_EQ(agg_p.matched_flows, agg_s.matched_flows);
    for (std::size_t i = 0; i < agg_s.rows.size(); ++i) {
      EXPECT_EQ(agg_p.rows[i].key, agg_s.rows[i].key);
      EXPECT_EQ(agg_p.rows[i].bytes, agg_s.rows[i].bytes);
      EXPECT_EQ(agg_p.rows[i].flows, agg_s.rows[i].flows);
    }
  }
}

// The storm: one writer ingesting and periodically evicting, several
// readers running parallel queries, aggregates and cursors the whole
// time. Run under TSAN (CI wires this test into the tsan job) to prove
// the pin-then-scan-lock-free scheme is race-free; the invariant
// checks (ids strictly increasing, rows match the predicate) hold on
// every snapshot regardless of writer progress.
TEST(StoreConcurrency, ConcurrentIngestQueryRetention) {
  DataStoreConfig cfg;
  cfg.segment_flows = 32;
  cfg.retention = Duration::seconds(5);
  cfg.query_threads = 4;  // readers exercise the shared pool too
  DataStore store(cfg);

  constexpr int kFlows = 2000;  // modest: TSAN runs ~10x slower
  std::atomic<bool> done{false};

  std::thread writer([&] {
    std::mt19937_64 rng(7);
    for (int i = 0; i < kFlows; ++i) {
      const double now_s = i * 0.01;
      store.ingest(random_flow(rng, now_s));
      if (i % 256 == 255)
        store.enforce_retention(Timestamp::from_seconds(now_s));
    }
    done.store(true, std::memory_order_release);
  });

  auto check_rows = [](const QueryResult& r, const FlowQuery& q) {
    std::uint64_t last_id = 0;
    for (const auto& stored : r) {
      ASSERT_GT(stored.id, last_id);  // ingest order survives the merge
      last_id = stored.id;
      ASSERT_TRUE(q.matches(stored));
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(100 + t);
      while (!done.load(std::memory_order_acquire)) {
        switch (rng() % 3) {
          case 0: {
            FlowQuery q;
            q.about_host(kHostA);
            check_rows(store.query(q), q);
            break;
          }
          case 1: {
            const auto agg =
                store.aggregate(FlowQuery{}, GroupBy::kLabel);
            std::uint64_t grouped = 0;
            for (const auto& row : agg.rows) grouped += row.flows;
            // Each flow has exactly one majority label.
            ASSERT_EQ(grouped, agg.matched_flows);
            break;
          }
          default: {
            auto cur = store.open_cursor(FlowQuery{}.on_port(53).top(64));
            std::uint64_t last_id = 0;
            while (cur.next()) {
              ASSERT_GT(cur.current().id, last_id);
              last_id = cur.current().id;
            }
            ASSERT_LE(cur.produced(), 64u);
            break;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  // Post-storm sanity: the store still answers, retention kept a tail.
  const auto remaining = store.query(FlowQuery{});
  EXPECT_GT(remaining.size(), 0u);
  EXPECT_LE(remaining.size(), static_cast<std::size_t>(kFlows));
  check_rows(remaining, FlowQuery{});
}

// ---------------------------------------------------------------------
// Mixed-tier concurrency: the same guarantees with the cold tier in
// play. These run under TSAN too (CI matches "StoreTier").

// A snapshot pinned while its segments were hot must keep reading
// bit-identically after those segments spill to disk mid-scan: spill
// swaps the store's tier entry, but the pinned shared_ptr keeps the
// RAM copy alive for the life of the result (snapshot isolation
// extended across tier moves).
TEST(StoreTierConcurrency, SpillMidScanKeepsPinnedSnapshotIntact) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "campuslab_tier_midscan";
  std::filesystem::remove_all(dir);
  DataStoreConfig cfg;
  cfg.segment_flows = 10;
  cfg.spill_directory = dir.string();
  cfg.hot_bytes_budget = std::numeric_limits<std::uint64_t>::max();
  DataStore store(cfg);
  for (int i = 0; i < 100; ++i)
    store.ingest(flow_at(i, kHostA, kHostB,
                         static_cast<std::uint16_t>(3000 + i), 443));

  const auto held = store.query(FlowQuery{});
  ASSERT_EQ(held.size(), 100u);
  auto cursor = store.open_cursor(FlowQuery{}.about_host(kHostA));
  ASSERT_TRUE(cursor.next());  // mid-iteration when the tier moves

  EXPECT_EQ(store.spill(), 10u);  // every sealed segment goes cold
  EXPECT_EQ(store.catalog().cold_segments, 10u);

  std::uint64_t last_id = 0;
  for (const auto& stored : held) {
    EXPECT_GT(stored.id, last_id);
    last_id = stored.id;
    EXPECT_EQ(stored.flow.tuple.src, kHostA);
  }
  std::size_t streamed = 1;
  while (cursor.next()) ++streamed;
  EXPECT_EQ(streamed, 100u);

  // A fresh query reads the same rows back through the cold tier.
  const auto reread = store.query(FlowQuery{});
  ASSERT_EQ(reread.size(), held.size());
  for (std::size_t i = 0; i < held.size(); ++i)
    EXPECT_EQ(reread[i].id, held[i].id);
  std::filesystem::remove_all(dir);
}

// Parallel must equal serial bit-for-bit when the snapshot mixes hot
// and cold segments — the segment-position merge does not care where
// a segment's bytes live.
TEST(StoreTierConcurrency, ParallelMatchesSerialAcrossTiers) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "campuslab_tier_parallel";
  std::filesystem::remove_all(dir);
  DataStoreConfig cfg;
  cfg.segment_flows = 64;
  cfg.spill_directory = dir.string();
  cfg.hot_bytes_budget = std::numeric_limits<std::uint64_t>::max();
  DataStore store(cfg);
  std::mt19937_64 rng(0xC0FFEE);
  for (int i = 0; i < 2000; ++i) store.ingest(random_flow(rng, i * 0.01));
  EXPECT_EQ(store.spill(15), 15u);  // ~half the segments go cold
  ASSERT_EQ(store.catalog().cold_segments, 15u);

  ScanPool pool(4);
  const std::vector<FlowQuery> queries = {
      FlowQuery{},
      FlowQuery{}.about_host(kHostA),
      FlowQuery{}.on_port(53),
      FlowQuery{}.with_label(TrafficLabel::kPortScan),
      FlowQuery{}.between(Timestamp::from_seconds(5),
                          Timestamp::from_seconds(12)),
      FlowQuery{}.about_host(kHostA).with_proto(17).top(37),
  };
  for (const auto& q : queries) {
    const auto serial = store.query(q);
    const auto parallel = store.query(q, pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].id, serial[i].id);
      EXPECT_EQ(parallel[i].flow.bytes, serial[i].flow.bytes);
      EXPECT_EQ(parallel[i].flow.first_ts, serial[i].flow.first_ts);
    }
    const auto agg_s = store.aggregate(q, GroupBy::kHost, 10);
    const auto agg_p = store.aggregate(q, GroupBy::kHost, 10, pool);
    ASSERT_EQ(agg_p.rows.size(), agg_s.rows.size());
    EXPECT_EQ(agg_p.matched_flows, agg_s.matched_flows);
    for (std::size_t i = 0; i < agg_s.rows.size(); ++i) {
      EXPECT_EQ(agg_p.rows[i].key, agg_s.rows[i].key);
      EXPECT_EQ(agg_p.rows[i].bytes, agg_s.rows[i].bytes);
    }
  }
  std::filesystem::remove_all(dir);
}

// The mixed-tier storm: one writer ingesting, spilling (spill shares
// ingest's single-writer contract) and evicting; readers running
// parallel queries, aggregates and cursors over snapshots that mix hot
// segments, cold handles, and segments mid-swap. TSAN proves the tier
// swap under the store mutex plus the lock-free pinned scans are
// race-free; the invariant checks hold on every snapshot.
TEST(StoreTierConcurrency, MixedTierIngestSpillQueryRetentionStorm) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "campuslab_tier_storm";
  std::filesystem::remove_all(dir);
  DataStoreConfig cfg;
  cfg.segment_flows = 32;
  cfg.retention = Duration::seconds(5);
  cfg.query_threads = 4;
  cfg.spill_directory = dir.string();
  // Tight budget: ~4 hot segments, everything older spills as the
  // writer advances, so queries constantly straddle the tier boundary.
  cfg.hot_bytes_budget = 64 * 1024;
  DataStore store(cfg);

  constexpr int kFlows = 2000;  // modest: TSAN runs ~10x slower
  std::atomic<bool> done{false};

  std::thread writer([&] {
    std::mt19937_64 rng(7);
    for (int i = 0; i < kFlows; ++i) {
      const double now_s = i * 0.01;
      store.ingest(random_flow(rng, now_s));  // spills via the budget
      if (i % 256 == 255)
        store.enforce_retention(Timestamp::from_seconds(now_s));
    }
    done.store(true, std::memory_order_release);
  });

  auto check_rows = [](const QueryResult& r, const FlowQuery& q) {
    std::uint64_t last_id = 0;
    for (const auto& stored : r) {
      ASSERT_GT(stored.id, last_id);
      last_id = stored.id;
      ASSERT_TRUE(q.matches(stored));
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(100 + t);
      while (!done.load(std::memory_order_acquire)) {
        switch (rng() % 3) {
          case 0: {
            FlowQuery q;
            q.about_host(kHostA);
            const auto r = store.query(q);
            ASSERT_EQ(r.stats().cold_load_failures, 0u);
            check_rows(r, q);
            break;
          }
          case 1: {
            const auto agg =
                store.aggregate(FlowQuery{}, GroupBy::kLabel);
            std::uint64_t grouped = 0;
            for (const auto& row : agg.rows) grouped += row.flows;
            ASSERT_EQ(grouped, agg.matched_flows);
            break;
          }
          default: {
            auto cur = store.open_cursor(FlowQuery{}.on_port(53).top(64));
            std::uint64_t last_id = 0;
            while (cur.next()) {
              ASSERT_GT(cur.current().id, last_id);
              last_id = cur.current().id;
            }
            ASSERT_LE(cur.produced(), 64u);
            break;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  // Post-storm: the mixed store still answers coherently, spill really
  // happened, and failed loads never occurred.
  const auto remaining = store.query(FlowQuery{});
  EXPECT_GT(remaining.size(), 0u);
  EXPECT_LE(remaining.size(), static_cast<std::size_t>(kFlows));
  check_rows(remaining, FlowQuery{});
  EXPECT_EQ(remaining.stats().cold_load_failures, 0u);
  EXPECT_GT(remaining.stats().cold_loaded + remaining.stats().cold_pruned,
            0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace campuslab::store

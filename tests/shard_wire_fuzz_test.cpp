// CLRP01 frame-decoder fuzz suite: the wire layer must be total.
//
// Mirrors segment_corruption_test: seeded structural mutations and a
// byte-by-byte truncation ladder over valid frame streams, plus
// body-level mutations behind *resealed* checksums so the message
// codecs see structurally-wrong-but-checksum-valid input. Every
// outcome is a clean Result with a stable wire_* code — never a crash,
// an out-of-bounds read (the ASAN CI job runs this binary), or an
// allocation bomb. Every failure replays from (seed, iteration).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "campuslab/store/wire.h"
#include "campuslab/util/hash.h"
#include "campuslab/util/rng.h"

namespace campuslab::store::wire {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;

bool known_code(const std::string& code) {
  return code == "wire_magic" || code == "wire_version" ||
         code == "wire_flags" || code == "wire_type" ||
         code == "wire_oversize" || code == "wire_truncated" ||
         code == "wire_checksum" || code == "wire_corrupt";
}

FlowRecord sample_flow(Rng& rng) {
  FlowRecord f;
  f.tuple = packet::FiveTuple{
      Ipv4Address(static_cast<std::uint32_t>(0x0A000000 + rng.below(256))),
      Ipv4Address(static_cast<std::uint32_t>(0xC0000200 + rng.below(32))),
      static_cast<std::uint16_t>(rng.below(65536)),
      static_cast<std::uint16_t>(rng.below(65536)),
      static_cast<std::uint8_t>(rng.chance(0.3) ? 17 : 6)};
  f.first_ts = Timestamp::from_nanos(
      static_cast<std::int64_t>(rng.below(1'000'000'000'000ull)));
  f.last_ts = f.first_ts + Duration::nanos(
                  static_cast<std::int64_t>(rng.below(30'000'000'000ull)));
  f.packets = rng.below(10'000);
  f.bytes = rng.below(10'000'000);
  f.fwd_packets = rng.below(5'000);
  f.rev_packets = rng.below(5'000);
  f.psh_count = static_cast<std::uint32_t>(rng.below(32));
  f.saw_dns = rng.chance(0.2);
  f.label_packets[rng.below(packet::kTrafficLabelCount)] = 1 + rng.below(99);
  return f;
}

// A valid multi-frame stream mixing every request/reply shape.
std::vector<std::uint8_t> valid_stream(Rng& rng) {
  std::vector<std::uint8_t> out;
  std::uint64_t request = 1;
  auto add = [&](MsgType type, const std::vector<std::uint8_t>& body) {
    const auto frame = encode_frame(type, static_cast<std::uint32_t>(
                                              rng.below(4)),
                                    request++, body);
    out.insert(out.end(), frame.begin(), frame.end());
  };

  ShardIngestBatch batch;
  std::uint64_t id = 1;
  const std::size_t rows = 1 + rng.below(30);
  for (std::size_t i = 0; i < rows; ++i) {
    batch.rows.push_back(StoredFlow{id, sample_flow(rng)});
    id += 1 + rng.below(3);
  }
  add(MsgType::kIngest, encode_ingest(batch));
  add(MsgType::kIngestAck, encode_ingest_ack({rows}));

  ShardQueryPlan plan;
  plan.query.on_port(443).at_least_bytes(rng.below(10'000));
  plan.after_id = rng.below(100);
  add(MsgType::kQuery, encode_query_plan(plan));

  ShardQueryRows reply;
  reply.rows = batch.rows;
  reply.exhausted = rng.chance(0.5);
  reply.stats.rows_scanned = rows;
  add(MsgType::kQueryRows, encode_query_rows(reply));

  AggregatePlan agg;
  agg.group_by = static_cast<GroupBy>(rng.below(3));
  agg.top_k = rng.below(10);
  add(MsgType::kAggregate, encode_aggregate_plan(agg));

  LogEvent ev;
  ev.ts = Timestamp::from_seconds(rng.uniform(0, 600));
  ev.source = "ids";
  ev.severity = static_cast<int>(rng.below(4));
  ev.message = std::string(rng.below(40), 'x');
  add(MsgType::kIngestLog, encode_log_event(ev));
  add(MsgType::kLogReply, encode_log_reply({ev, ev}));

  CatalogInfo info;
  info.total_flows = rows;
  add(MsgType::kCatalogReply, encode_catalog(info));
  add(MsgType::kError,
      encode_error(Error::make("shard_unknown", "no such shard")));
  return out;
}

// One random structural mutation, in place (the corruption-suite
// pattern).
void mutate(Rng& rng, std::vector<std::uint8_t>& stream) {
  switch (rng.below(6)) {
    case 0:  // truncate anywhere, including to zero
      stream.resize(rng.below(stream.size() + 1));
      break;
    case 1: {  // flip 1-8 random bytes
      if (stream.empty()) break;
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t i = 0; i < flips; ++i)
        stream[rng.below(stream.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      break;
    }
    case 2: {  // zero a random region (wipes lengths/counts)
      if (stream.empty()) break;
      const std::size_t begin = rng.below(stream.size());
      const std::size_t len = rng.below(stream.size() - begin + 1);
      for (std::size_t i = begin; i < begin + len; ++i) stream[i] = 0;
      break;
    }
    case 3: {  // saturate a random region (maxes the same fields)
      if (stream.empty()) break;
      const std::size_t begin = rng.below(stream.size());
      const std::size_t len = rng.below(stream.size() - begin + 1);
      for (std::size_t i = begin; i < begin + len; ++i) stream[i] = 0xFF;
      break;
    }
    case 4: {  // append garbage
      const std::size_t extra = 1 + rng.below(64);
      for (std::size_t i = 0; i < extra; ++i)
        stream.push_back(static_cast<std::uint8_t>(rng.below(256)));
      break;
    }
    default: {  // replace the tail with noise
      if (stream.empty()) break;
      const std::size_t begin = rng.below(stream.size());
      for (std::size_t i = begin; i < stream.size(); ++i)
        stream[i] = static_cast<std::uint8_t>(rng.below(256));
      break;
    }
  }
}

// Drain a (possibly damaged) stream through the assembler exactly the
// way a server connection would: decode every completed frame's body,
// stop at poison or starvation. Returns frames completed.
std::size_t drain(std::span<const std::uint8_t> stream,
                  const char* context) {
  FrameAssembler assembler;
  assembler.feed(stream);
  std::size_t frames = 0;
  while (true) {
    auto next = assembler.next();
    if (!next.ok()) {
      EXPECT_TRUE(known_code(next.error().code))
          << context << ": unstable code " << next.error().code;
      // Poison is sticky.
      auto again = assembler.next();
      EXPECT_FALSE(again.ok()) << context;
      return frames;
    }
    if (!next.value().has_value()) return frames;
    const Frame frame = std::move(*next.value());
    // Whatever the checksums let through, the body codecs stay total.
    Error scratch;
    switch (frame.header.type) {
      case MsgType::kIngest:
        (void)decode_ingest(frame.body);
        break;
      case MsgType::kIngestAck:
        (void)decode_ingest_ack(frame.body);
        break;
      case MsgType::kIngestLog:
        (void)decode_log_event(frame.body);
        break;
      case MsgType::kQuery:
        (void)decode_query_plan(frame.body);
        break;
      case MsgType::kQueryRows:
        (void)decode_query_rows(frame.body);
        break;
      case MsgType::kAggregate:
        (void)decode_aggregate_plan(frame.body);
        break;
      case MsgType::kAggregateReply:
        (void)decode_aggregate_result(frame.body);
        break;
      case MsgType::kQueryLogs:
        (void)decode_log_query(frame.body);
        break;
      case MsgType::kLogReply:
        (void)decode_log_reply(frame.body);
        break;
      case MsgType::kCatalogReply:
        (void)decode_catalog(frame.body);
        break;
      case MsgType::kFlowCountReply:
        (void)decode_flow_count(frame.body);
        break;
      case MsgType::kError:
        (void)decode_error(frame.body, scratch);
        break;
      default:
        break;
    }
    ++frames;
  }
}

// ------------------------------------------------------------ the suite

TEST(WireFuzz, SeededMutationsNeverCrash) {
  // Two seeds locally; CI's chaos matrix adds more via
  // CAMPUSLAB_FUZZ_SEED. Every iteration logs enough to replay.
  std::vector<std::uint64_t> seeds{0xF0221, 0xF0222};
  if (const char* env = std::getenv("CAMPUSLAB_FUZZ_SEED"))
    seeds.push_back(std::strtoull(env, nullptr, 10));
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    for (int iter = 0; iter < 400; ++iter) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " iter=" + std::to_string(iter));
      auto stream = valid_stream(rng);
      const std::size_t mutations = 1 + rng.below(4);
      for (std::size_t m = 0; m < mutations; ++m) mutate(rng, stream);
      drain(stream, "mutated stream");
    }
  }
}

TEST(WireFuzz, TruncationLadder) {
  // Every prefix of a valid stream, byte by byte: each either parses
  // some whole frames and then starves, or poisons with a stable code.
  // Never a crash, never an over-read.
  Rng rng(0xF0223);
  const auto base = valid_stream(rng);
  const std::size_t whole = drain(base, "base stream");
  ASSERT_GT(whole, 0u);
  for (std::size_t len = 0; len < base.size(); ++len) {
    const std::size_t frames =
        drain(std::span<const std::uint8_t>(base).subspan(0, len),
              "truncation ladder");
    EXPECT_LE(frames, whole) << "len=" << len;
  }
}

TEST(WireFuzz, TrickledDamageMatchesBulkDamage) {
  // Feeding a damaged stream one byte at a time must reach the same
  // terminal state as feeding it at once (no parse-state dependence on
  // recv() chunking).
  Rng rng(0xF0224);
  for (int iter = 0; iter < 40; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    auto stream = valid_stream(rng);
    mutate(rng, stream);

    FrameAssembler bulk;
    bulk.feed(stream);
    std::size_t bulk_frames = 0;
    std::string bulk_code;
    while (true) {
      auto next = bulk.next();
      if (!next.ok()) {
        bulk_code = next.error().code;
        break;
      }
      if (!next.value().has_value()) break;
      ++bulk_frames;
    }

    FrameAssembler trickle;
    std::size_t trickle_frames = 0;
    std::string trickle_code;
    for (std::size_t i = 0; i < stream.size() && trickle_code.empty(); ++i) {
      trickle.feed(std::span<const std::uint8_t>(&stream[i], 1));
      while (true) {
        auto next = trickle.next();
        if (!next.ok()) {
          trickle_code = next.error().code;
          break;
        }
        if (!next.value().has_value()) break;
        ++trickle_frames;
      }
    }
    EXPECT_EQ(trickle_frames, bulk_frames);
    EXPECT_EQ(trickle_code, bulk_code);
  }
}

// Body mutations behind resealed checksums: reach the message codecs
// (not just the checksum gate) and hold them total.
TEST(WireFuzz, ResealedBodyMutationsReachTheCodecs) {
  Rng rng(0xF0225);
  for (int iter = 0; iter < 300; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    ShardIngestBatch batch;
    std::uint64_t id = 1;
    const std::size_t rows = 1 + rng.below(20);
    for (std::size_t i = 0; i < rows; ++i) {
      batch.rows.push_back(StoredFlow{id, sample_flow(rng)});
      id += 1 + rng.below(3);
    }
    auto body = encode_ingest(batch);
    mutate(rng, body);
    // Each decoder sees the damaged bytes directly — the server path
    // after a (resealed) checksum pass. ok() or wire_corrupt; nothing
    // else, and in particular no crash under ASAN.
    for (int codec = 0; codec < 4; ++codec) {
      std::string code;
      switch (codec) {
        case 0: {
          auto r = decode_ingest(body);
          if (!r.ok()) code = r.error().code;
          break;
        }
        case 1: {
          auto r = decode_query_rows(body);
          if (!r.ok()) code = r.error().code;
          break;
        }
        case 2: {
          auto r = decode_aggregate_result(body);
          if (!r.ok()) code = r.error().code;
          break;
        }
        default: {
          auto r = decode_catalog(body);
          if (!r.ok()) code = r.error().code;
          break;
        }
      }
      EXPECT_TRUE(code.empty() || code == "wire_corrupt")
          << "codec " << codec << ": unstable code " << code;
    }
  }
}

// Hostile counts must never drive allocation: a tiny body claiming
// millions of rows/entries fails before reserving.
TEST(WireFuzz, HostileCountsCannotBombAllocation) {
  // 0xFF...-style varints promising 2^60 rows in a 12-byte body.
  std::vector<std::uint8_t> tiny{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                 0xFF, 0x0F, 0x01, 0x02, 0x03, 0x04};
  EXPECT_FALSE(decode_ingest(tiny).ok());
  EXPECT_FALSE(decode_query_rows(tiny).ok());
  EXPECT_FALSE(decode_log_reply(tiny).ok());
  EXPECT_FALSE(decode_aggregate_result(tiny).ok());
}

}  // namespace
}  // namespace campuslab::store::wire

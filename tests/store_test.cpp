// Tests for campuslab::store — ingest/index/query behaviour, query
// planning across indexes, retention, catalog metadata, log events,
// and the rotating packet archive.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "campuslab/store/datastore.h"
#include "campuslab/store/packet_archive.h"
#include "campuslab/util/rng.h"

namespace campuslab::store {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;
using packet::TrafficLabel;

FlowRecord make_flow(double start_s, double end_s, Ipv4Address src,
                     Ipv4Address dst, std::uint16_t sport,
                     std::uint16_t dport, std::uint8_t proto = 6,
                     TrafficLabel label = TrafficLabel::kBenign,
                     std::uint64_t packets = 10,
                     std::uint64_t bytes = 5000) {
  FlowRecord f;
  f.tuple = packet::FiveTuple{src, dst, sport, dport, proto};
  f.first_ts = Timestamp::from_seconds(start_s);
  f.last_ts = Timestamp::from_seconds(end_s);
  f.packets = packets;
  f.bytes = bytes;
  f.label_packets[static_cast<std::size_t>(label)] = packets;
  return f;
}

const Ipv4Address kAlice(10, 1, 16, 5);
const Ipv4Address kBob(10, 1, 16, 6);
const Ipv4Address kServer(93, 184, 216, 34);
const Ipv4Address kResolver(8, 8, 8, 8);

class StoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.ingest(make_flow(1, 2, kAlice, kServer, 5000, 443));
    store_.ingest(make_flow(2, 3, kBob, kServer, 5001, 443));
    store_.ingest(make_flow(3, 4, kAlice, kResolver, 5002, 53, 17));
    store_.ingest(make_flow(10, 20, kResolver, kAlice, 53, 6000, 17,
                            TrafficLabel::kDnsAmplification, 1000,
                            3'000'000));
  }
  DataStore store_;
};

TEST_F(StoreFixture, QueryByHostFindsBothDirections) {
  FlowQuery q;
  q.about_host(kAlice);
  const auto results = store_.query(q);
  EXPECT_EQ(results.size(), 3u);  // two as src, one as dst
}

TEST_F(StoreFixture, QueryBySrcAndDstAreDirectional) {
  FlowQuery by_src;
  by_src.src = kAlice;
  EXPECT_EQ(store_.query(by_src).size(), 2u);
  FlowQuery by_dst;
  by_dst.dst = kAlice;
  EXPECT_EQ(store_.query(by_dst).size(), 1u);
}

TEST_F(StoreFixture, QueryByPort) {
  FlowQuery q;
  q.on_port(53);
  EXPECT_EQ(store_.query(q).size(), 2u);
  FlowQuery q443;
  q443.on_port(443);
  EXPECT_EQ(store_.query(q443).size(), 2u);
}

TEST_F(StoreFixture, QueryByLabel) {
  FlowQuery q;
  q.with_label(TrafficLabel::kDnsAmplification);
  const auto results = store_.query(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0]->flow.packets, 1000u);
  FlowQuery benign;
  benign.with_label(TrafficLabel::kBenign);
  EXPECT_EQ(store_.query(benign).size(), 3u);
}

TEST_F(StoreFixture, QueryByTimeRangeUsesOverlap) {
  FlowQuery q;
  q.between(Timestamp::from_seconds(2.5), Timestamp::from_seconds(3.5));
  // Flow 2 ([2,3]) and flow 3 ([3,4]) overlap; flow 1 ([1,2]) does not.
  EXPECT_EQ(store_.query(q).size(), 2u);
}

TEST_F(StoreFixture, ConjunctionOfPredicates) {
  FlowQuery q;
  q.about_host(kAlice);
  q.proto = 17;
  q.min_bytes = 1'000'000;
  const auto results = store_.query(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0]->flow.majority_label(),
            TrafficLabel::kDnsAmplification);
}

TEST_F(StoreFixture, LimitCapsResults) {
  FlowQuery q;
  q.top(2);
  EXPECT_EQ(store_.query(q).size(), 2u);
}

TEST_F(StoreFixture, EmptyQueryReturnsEverything) {
  EXPECT_EQ(store_.query(FlowQuery{}).size(), 4u);
}

TEST_F(StoreFixture, NoMatchesIsEmptyNotError) {
  FlowQuery q;
  q.about_host(Ipv4Address(192, 0, 2, 1));
  EXPECT_TRUE(store_.query(q).empty());
}

TEST_F(StoreFixture, IdsAreStableAndMonotonic) {
  std::vector<std::uint64_t> ids;
  store_.for_each([&](const StoredFlow& s) { ids.push_back(s.id); });
  ASSERT_EQ(ids.size(), 4u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_GT(ids[i], ids[i - 1]);
}

TEST_F(StoreFixture, CatalogAggregates) {
  const auto cat = store_.catalog();
  EXPECT_EQ(cat.total_flows, 4u);
  EXPECT_EQ(cat.total_packets, 10u * 3 + 1000u);
  EXPECT_EQ(cat.earliest, Timestamp::from_seconds(1));
  EXPECT_EQ(cat.latest, Timestamp::from_seconds(20));
  EXPECT_EQ(cat.flows_per_label[0], 3u);
  EXPECT_EQ(cat.flows_per_label[static_cast<std::size_t>(
                TrafficLabel::kDnsAmplification)],
            1u);
}

TEST(DataStore, SegmentsRotateAndQuerySpansThem) {
  DataStoreConfig cfg;
  cfg.segment_flows = 10;
  DataStore store(cfg);
  for (int i = 0; i < 35; ++i) {
    store.ingest(make_flow(i, i + 0.5, kAlice, kServer,
                           static_cast<std::uint16_t>(1000 + i), 443));
  }
  EXPECT_EQ(store.catalog().segments, 4u);
  FlowQuery q;
  q.about_host(kAlice);
  EXPECT_EQ(store.query(q).size(), 35u);
}

TEST(DataStore, RetentionDropsOldSealedSegments) {
  DataStoreConfig cfg;
  cfg.segment_flows = 5;
  cfg.retention = Duration::seconds(100);
  DataStore store(cfg);
  for (int i = 0; i < 20; ++i)
    store.ingest(make_flow(i, i + 1, kAlice, kServer,
                           static_cast<std::uint16_t>(1000 + i), 443));
  // At t=200 segments ending before t=100 must go.
  const auto evicted = store.enforce_retention(
      Timestamp::from_seconds(200));
  EXPECT_EQ(evicted, 20u);  // all sealed (+last partial stays if unsealed)
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.catalog().evicted_by_retention, 20u);
}

TEST(DataStore, RetentionKeepsRecentData) {
  DataStoreConfig cfg;
  cfg.segment_flows = 5;
  cfg.retention = Duration::seconds(50);
  DataStore store(cfg);
  for (int i = 0; i < 20; ++i)
    store.ingest(make_flow(i * 10, i * 10 + 1, kAlice, kServer,
                           static_cast<std::uint16_t>(1000 + i), 443));
  store.enforce_retention(Timestamp::from_seconds(200));
  // Flows ending after t=150 must survive.
  FlowQuery q;
  q.from = Timestamp::from_seconds(150);
  EXPECT_GE(store.query(q).size(), 5u);
}

TEST(DataStore, CleansInvertedTimestamps) {
  DataStore store;
  auto f = make_flow(5, 3, kAlice, kServer, 1, 2);  // inverted
  store.ingest(f);
  store.for_each([](const StoredFlow& s) {
    EXPECT_GE(s.flow.last_ts, s.flow.first_ts);
  });
}

TEST(DataStore, LogEventsQueryable) {
  DataStore store;
  store.ingest_log(LogEvent{Timestamp::from_seconds(1), "firewall", 2,
                            kAlice, "blocked outbound 445"});
  store.ingest_log(LogEvent{Timestamp::from_seconds(2), "ids", 3, kBob,
                            "signature match: ssh brute force"});
  store.ingest_log(LogEvent{Timestamp::from_seconds(3), "syslog", 0,
                            kAlice, "dhcp renew"});

  LogQuery by_source;
  by_source.source = "firewall";
  EXPECT_EQ(store.query_logs(by_source).size(), 1u);

  LogQuery by_subject;
  by_subject.subject = kAlice;
  EXPECT_EQ(store.query_logs(by_subject).size(), 2u);

  LogQuery severe;
  severe.min_severity = 2;
  EXPECT_EQ(store.query_logs(severe).size(), 2u);

  LogQuery windowed;
  windowed.from = Timestamp::from_seconds(1.5);
  windowed.to = Timestamp::from_seconds(2.5);
  EXPECT_EQ(store.query_logs(windowed).size(), 1u);
}

// Property: for random stores, every indexed query returns exactly the
// same set as a brute-force scan with the same predicate.
TEST(DataStoreProperty, IndexedQueryEqualsScan) {
  Rng rng(404);
  DataStoreConfig cfg;
  cfg.segment_flows = 64;
  DataStore store(cfg);
  std::vector<FlowRecord> all;
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Address src(
        static_cast<std::uint32_t>(0x0A010000 + rng.below(32)));
    const Ipv4Address dst(
        static_cast<std::uint32_t>(0xC6336400 + rng.below(16)));
    const auto label = static_cast<TrafficLabel>(rng.below(5));
    auto f = make_flow(rng.uniform(0, 1000), 0, src, dst,
                       static_cast<std::uint16_t>(rng.below(3) + 5000),
                       static_cast<std::uint16_t>(rng.chance(0.5) ? 53 : 443),
                       static_cast<std::uint8_t>(rng.chance(0.5) ? 6 : 17),
                       label, 1 + rng.below(100), 100 + rng.below(100000));
    f.last_ts = f.first_ts + Duration::from_seconds(rng.uniform(0, 10));
    all.push_back(f);
    store.ingest(f);
  }
  for (int trial = 0; trial < 50; ++trial) {
    FlowQuery q;
    if (rng.chance(0.5))
      q.host = Ipv4Address(
          static_cast<std::uint32_t>(0x0A010000 + rng.below(32)));
    if (rng.chance(0.4)) q.label = static_cast<TrafficLabel>(rng.below(5));
    if (rng.chance(0.4)) q.port = rng.chance(0.5) ? 53 : 443;
    if (rng.chance(0.5)) {
      const double a = rng.uniform(0, 1000);
      q.between(Timestamp::from_seconds(a),
                Timestamp::from_seconds(a + rng.uniform(0, 300)));
    }
    if (rng.chance(0.3)) q.min_bytes = rng.below(50000);

    const auto indexed = store.query(q);
    std::size_t scan_count = 0;
    store.for_each([&](const StoredFlow& s) {
      if (q.matches(s)) ++scan_count;
    });
    EXPECT_EQ(indexed.size(), scan_count) << "trial " << trial;
  }
}

// --------------------------------------------------------- PacketArchive

class ArchiveFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("campuslab_archive_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  packet::Packet frame(double t_s) {
    using namespace packet;
    return PacketBuilder(Timestamp::from_seconds(t_s))
        .udp(Endpoint{MacAddress::from_id(1), Ipv4Address(10, 0, 16, 2),
                      1111},
             Endpoint{MacAddress::from_id(2), Ipv4Address(8, 8, 8, 8), 53})
        .payload_size(100)
        .build();
  }

  std::filesystem::path dir_;
};

TEST_F(ArchiveFixture, RotatesSegmentsBySpan) {
  PacketArchiveConfig cfg;
  cfg.directory = dir_.string();
  cfg.segment_span = Duration::seconds(60);
  auto archive = PacketArchive::open(cfg);
  ASSERT_TRUE(archive.ok());
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(archive.value().write(frame(i * 30.0)).ok());
  ASSERT_TRUE(archive.value().seal().ok());
  // 300s of traffic at 60s per segment -> 5 segments.
  EXPECT_EQ(archive.value().segments().size(), 5u);
  EXPECT_EQ(archive.value().records_written(), 10u);
}

TEST_F(ArchiveFixture, ReadRangeSpansSegments) {
  PacketArchiveConfig cfg;
  cfg.directory = dir_.string();
  cfg.segment_span = Duration::seconds(10);
  auto archive = PacketArchive::open(cfg);
  ASSERT_TRUE(archive.ok());
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(archive.value().write(frame(i * 1.0)).ok());
  auto r = archive.value().read_range(Timestamp::from_seconds(25),
                                      Timestamp::from_seconds(44));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 20u);  // t=25..44 inclusive
  for (std::size_t i = 1; i < r.value().size(); ++i)
    EXPECT_GE(r.value()[i].ts, r.value()[i - 1].ts);
}

TEST_F(ArchiveFixture, RetentionDeletesFiles) {
  PacketArchiveConfig cfg;
  cfg.directory = dir_.string();
  cfg.segment_span = Duration::seconds(10);
  cfg.retention = Duration::seconds(30);
  auto archive = PacketArchive::open(cfg);
  ASSERT_TRUE(archive.ok());
  for (int i = 0; i < 60; ++i)
    ASSERT_TRUE(archive.value().write(frame(i * 1.0)).ok());
  const auto before = archive.value().segments().size();
  const auto deleted =
      archive.value().enforce_retention(Timestamp::from_seconds(60));
  EXPECT_GT(deleted, 0u);
  EXPECT_EQ(archive.value().segments().size(), before - deleted);
  // Files are really gone.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir_))
    ++files;
  EXPECT_EQ(files, archive.value().segments().size());
}

TEST_F(ArchiveFixture, OpenFailsOnMissingDirectory) {
  PacketArchiveConfig cfg;
  cfg.directory = (dir_ / "does_not_exist").string();
  EXPECT_FALSE(PacketArchive::open(cfg).ok());
}

}  // namespace
}  // namespace campuslab::store

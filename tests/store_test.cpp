// Tests for campuslab::store — ingest/index/query behaviour, query
// planning across indexes, retention, catalog metadata, log events,
// and the rotating packet archive.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "campuslab/store/datastore.h"
#include "campuslab/store/packet_archive.h"
#include "campuslab/util/rng.h"

namespace campuslab::store {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;
using packet::TrafficLabel;

FlowRecord make_flow(double start_s, double end_s, Ipv4Address src,
                     Ipv4Address dst, std::uint16_t sport,
                     std::uint16_t dport, std::uint8_t proto = 6,
                     TrafficLabel label = TrafficLabel::kBenign,
                     std::uint64_t packets = 10,
                     std::uint64_t bytes = 5000) {
  FlowRecord f;
  f.tuple = packet::FiveTuple{src, dst, sport, dport, proto};
  f.first_ts = Timestamp::from_seconds(start_s);
  f.last_ts = Timestamp::from_seconds(end_s);
  f.packets = packets;
  f.bytes = bytes;
  f.label_packets[static_cast<std::size_t>(label)] = packets;
  return f;
}

const Ipv4Address kAlice(10, 1, 16, 5);
const Ipv4Address kBob(10, 1, 16, 6);
const Ipv4Address kServer(93, 184, 216, 34);
const Ipv4Address kResolver(8, 8, 8, 8);

class StoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.ingest(make_flow(1, 2, kAlice, kServer, 5000, 443));
    store_.ingest(make_flow(2, 3, kBob, kServer, 5001, 443));
    store_.ingest(make_flow(3, 4, kAlice, kResolver, 5002, 53, 17));
    store_.ingest(make_flow(10, 20, kResolver, kAlice, 53, 6000, 17,
                            TrafficLabel::kDnsAmplification, 1000,
                            3'000'000));
  }
  DataStore store_;
};

TEST_F(StoreFixture, QueryByHostFindsBothDirections) {
  FlowQuery q;
  q.about_host(kAlice);
  const auto results = store_.query(q);
  EXPECT_EQ(results.size(), 3u);  // two as src, one as dst
}

TEST_F(StoreFixture, QueryBySrcAndDstAreDirectional) {
  FlowQuery by_src;
  by_src.src = kAlice;
  EXPECT_EQ(store_.query(by_src).size(), 2u);
  FlowQuery by_dst;
  by_dst.dst = kAlice;
  EXPECT_EQ(store_.query(by_dst).size(), 1u);
}

TEST_F(StoreFixture, QueryByPort) {
  FlowQuery q;
  q.on_port(53);
  EXPECT_EQ(store_.query(q).size(), 2u);
  FlowQuery q443;
  q443.on_port(443);
  EXPECT_EQ(store_.query(q443).size(), 2u);
}

TEST_F(StoreFixture, QueryByLabel) {
  FlowQuery q;
  q.with_label(TrafficLabel::kDnsAmplification);
  const auto results = store_.query(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].flow.packets, 1000u);
  FlowQuery benign;
  benign.with_label(TrafficLabel::kBenign);
  EXPECT_EQ(store_.query(benign).size(), 3u);
}

TEST_F(StoreFixture, QueryByTimeRangeUsesOverlap) {
  FlowQuery q;
  q.between(Timestamp::from_seconds(2.5), Timestamp::from_seconds(3.5));
  // Flow 2 ([2,3]) and flow 3 ([3,4]) overlap; flow 1 ([1,2]) does not.
  EXPECT_EQ(store_.query(q).size(), 2u);
}

TEST_F(StoreFixture, ConjunctionOfPredicates) {
  FlowQuery q;
  q.about_host(kAlice);
  q.proto = 17;
  q.min_bytes = 1'000'000;
  const auto results = store_.query(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].flow.majority_label(),
            TrafficLabel::kDnsAmplification);
}

TEST_F(StoreFixture, LimitCapsResults) {
  FlowQuery q;
  q.top(2);
  EXPECT_EQ(store_.query(q).size(), 2u);
}

TEST_F(StoreFixture, EmptyQueryReturnsEverything) {
  EXPECT_EQ(store_.query(FlowQuery{}).size(), 4u);
}

TEST_F(StoreFixture, NoMatchesIsEmptyNotError) {
  FlowQuery q;
  q.about_host(Ipv4Address(192, 0, 2, 1));
  EXPECT_TRUE(store_.query(q).empty());
}

TEST_F(StoreFixture, IdsAreStableAndMonotonic) {
  std::vector<std::uint64_t> ids;
  store_.for_each([&](const StoredFlow& s) { ids.push_back(s.id); });
  ASSERT_EQ(ids.size(), 4u);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_GT(ids[i], ids[i - 1]);
}

TEST_F(StoreFixture, CatalogAggregates) {
  const auto cat = store_.catalog();
  EXPECT_EQ(cat.total_flows, 4u);
  EXPECT_EQ(cat.total_packets, 10u * 3 + 1000u);
  EXPECT_EQ(cat.earliest, Timestamp::from_seconds(1));
  EXPECT_EQ(cat.latest, Timestamp::from_seconds(20));
  EXPECT_EQ(cat.flows_per_label[0], 3u);
  EXPECT_EQ(cat.flows_per_label[static_cast<std::size_t>(
                TrafficLabel::kDnsAmplification)],
            1u);
}

TEST(DataStore, SegmentsRotateAndQuerySpansThem) {
  DataStoreConfig cfg;
  cfg.segment_flows = 10;
  DataStore store(cfg);
  for (int i = 0; i < 35; ++i) {
    store.ingest(make_flow(i, i + 0.5, kAlice, kServer,
                           static_cast<std::uint16_t>(1000 + i), 443));
  }
  EXPECT_EQ(store.catalog().segments, 4u);
  FlowQuery q;
  q.about_host(kAlice);
  EXPECT_EQ(store.query(q).size(), 35u);
}

TEST(DataStore, RetentionDropsOldSealedSegments) {
  DataStoreConfig cfg;
  cfg.segment_flows = 5;
  cfg.retention = Duration::seconds(100);
  DataStore store(cfg);
  for (int i = 0; i < 20; ++i)
    store.ingest(make_flow(i, i + 1, kAlice, kServer,
                           static_cast<std::uint16_t>(1000 + i), 443));
  // At t=200 segments ending before t=100 must go.
  const auto evicted = store.enforce_retention(
      Timestamp::from_seconds(200));
  EXPECT_EQ(evicted, 20u);  // all sealed (+last partial stays if unsealed)
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.catalog().evicted_by_retention, 20u);
}

TEST(DataStore, RetentionKeepsRecentData) {
  DataStoreConfig cfg;
  cfg.segment_flows = 5;
  cfg.retention = Duration::seconds(50);
  DataStore store(cfg);
  for (int i = 0; i < 20; ++i)
    store.ingest(make_flow(i * 10, i * 10 + 1, kAlice, kServer,
                           static_cast<std::uint16_t>(1000 + i), 443));
  store.enforce_retention(Timestamp::from_seconds(200));
  // Flows ending after t=150 must survive.
  FlowQuery q;
  q.from = Timestamp::from_seconds(150);
  EXPECT_GE(store.query(q).size(), 5u);
}

TEST(DataStore, CleansInvertedTimestamps) {
  DataStore store;
  auto f = make_flow(5, 3, kAlice, kServer, 1, 2);  // inverted
  store.ingest(f);
  store.for_each([](const StoredFlow& s) {
    EXPECT_GE(s.flow.last_ts, s.flow.first_ts);
  });
}

TEST(DataStore, LogEventsQueryable) {
  DataStore store;
  store.ingest_log(LogEvent{Timestamp::from_seconds(1), "firewall", 2,
                            kAlice, "blocked outbound 445"});
  store.ingest_log(LogEvent{Timestamp::from_seconds(2), "ids", 3, kBob,
                            "signature match: ssh brute force"});
  store.ingest_log(LogEvent{Timestamp::from_seconds(3), "syslog", 0,
                            kAlice, "dhcp renew"});

  LogQuery by_source;
  by_source.source = "firewall";
  EXPECT_EQ(store.query_logs(by_source).size(), 1u);

  LogQuery by_subject;
  by_subject.subject = kAlice;
  EXPECT_EQ(store.query_logs(by_subject).size(), 2u);

  LogQuery severe;
  severe.min_severity = 2;
  EXPECT_EQ(store.query_logs(severe).size(), 2u);

  LogQuery windowed;
  windowed.from = Timestamp::from_seconds(1.5);
  windowed.to = Timestamp::from_seconds(2.5);
  EXPECT_EQ(store.query_logs(windowed).size(), 1u);
}

// ------------------------------------------------------------- planner

TEST(QueryPlanner, RanksIndexesBySelectivity) {
  FlowQuery scan;
  EXPECT_EQ(planned_index(scan), IndexKind::kTimeScan);

  FlowQuery by_port;
  by_port.on_port(443);
  EXPECT_EQ(planned_index(by_port), IndexKind::kPort);

  FlowQuery by_label = std::move(by_port);
  by_label.with_label(TrafficLabel::kPortScan);
  EXPECT_EQ(planned_index(by_label), IndexKind::kLabel);

  // An exact host beats everything, whichever side it is pinned to.
  FlowQuery by_host = by_label;
  by_host.about_host(kAlice);
  EXPECT_EQ(planned_index(by_host), IndexKind::kHost);
  FlowQuery by_src;
  by_src.src = kAlice;
  EXPECT_EQ(planned_index(by_src), IndexKind::kHost);
  FlowQuery by_dst;
  by_dst.dst = kAlice;
  EXPECT_EQ(planned_index(by_dst), IndexKind::kHost);

  // Time bounds alone never select an inverted index.
  FlowQuery windowed;
  windowed.between(Timestamp::from_seconds(1), Timestamp::from_seconds(2));
  windowed.min_bytes = 100;
  EXPECT_EQ(planned_index(windowed), IndexKind::kTimeScan);
}

TEST_F(StoreFixture, QueryStatsReportPlanAndWork) {
  FlowQuery q;
  q.about_host(kAlice);
  const auto r = store_.query(q);
  EXPECT_EQ(r.stats().index, IndexKind::kHost);
  EXPECT_EQ(r.stats().segments_pinned, 1u);
  EXPECT_EQ(r.stats().segments_scanned, 1u);
  // The fixture's open segment is unsealed, so the scan is linear and
  // index_hits stays zero; rows_scanned covers the pinned prefix.
  EXPECT_EQ(r.stats().index_hits, 0u);
  EXPECT_EQ(r.stats().rows_scanned, 4u);

  DataStoreConfig cfg;
  cfg.segment_flows = 2;  // seal segments so indexes engage
  DataStore sealed(cfg);
  for (int i = 0; i < 4; ++i)
    sealed.ingest(make_flow(i, i + 1, kAlice, kServer,
                            static_cast<std::uint16_t>(1000 + i), 443));
  const auto rs = sealed.query(q);
  EXPECT_EQ(rs.size(), 4u);
  EXPECT_EQ(rs.stats().index, IndexKind::kHost);
  EXPECT_EQ(rs.stats().index_hits, 4u);

  FlowQuery pruned;
  pruned.between(Timestamp::from_seconds(100),
                 Timestamp::from_seconds(200));
  const auto rp = sealed.query(pruned);
  EXPECT_TRUE(rp.empty());
  EXPECT_EQ(rp.stats().segments_scanned, 0u);  // all time-pruned
}

// ------------------------------------------------------------ builders

TEST_F(StoreFixture, RvalueBuilderChainIsOneExpression) {
  const auto r = store_.query(FlowQuery{}
                                  .about_host(kAlice)
                                  .with_proto(17)
                                  .at_least_bytes(1'000'000)
                                  .top(3));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.front().flow.majority_label(),
            TrafficLabel::kDnsAmplification);
}

TEST_F(StoreFixture, NewPredicateBuilders) {
  // since(): open-ended lower bound, overlap semantics.
  EXPECT_EQ(store_.query(FlowQuery{}.since(Timestamp::from_seconds(3)))
                .size(),
            3u);  // flows [2,3], [3,4] and [10,20] all reach t>=3
  // with_proto()
  EXPECT_EQ(store_.query(FlowQuery{}.with_proto(17)).size(), 2u);
  // at_least_bytes()
  EXPECT_EQ(store_.query(FlowQuery{}.at_least_bytes(1'000'000)).size(),
            1u);
  // from_direction(): fixture flows all default to kInbound.
  EXPECT_EQ(
      store_.query(FlowQuery{}.from_direction(sim::Direction::kOutbound))
          .size(),
      0u);
  EXPECT_EQ(
      store_.query(FlowQuery{}.from_direction(sim::Direction::kInbound))
          .size(),
      4u);
}

TEST(LogQueryBuilders, ChainAndFilter) {
  DataStore store;
  store.ingest_log(LogEvent{Timestamp::from_seconds(1), "firewall", 2,
                            kAlice, "blocked"});
  store.ingest_log(LogEvent{Timestamp::from_seconds(2), "firewall", 0,
                            kBob, "allowed"});
  store.ingest_log(LogEvent{Timestamp::from_seconds(3), "ids", 3, kAlice,
                            "match"});
  const auto r = store.query_logs(LogQuery{}
                                      .from_source("firewall")
                                      .at_least_severity(1)
                                      .about_subject(kAlice)
                                      .top(10));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].message, "blocked");
  EXPECT_EQ(store.query_logs(LogQuery{}.since(Timestamp::from_seconds(2)))
                .size(),
            2u);
}

// ------------------------------------------------------- QueryResult

TEST_F(StoreFixture, ResultIsIterableAndIndexable) {
  const auto r = store_.query(FlowQuery{});
  ASSERT_EQ(r.size(), 4u);
  EXPECT_FALSE(r.empty());
  std::vector<std::uint64_t> ids;
  for (const auto& stored : r) ids.push_back(stored.id);
  ASSERT_EQ(ids.size(), 4u);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_EQ(r[i].id, ids[i]);
  EXPECT_EQ(r.front().id, ids.front());
  EXPECT_EQ(r.back().id, ids.back());
  // Iterator -> works too (drop-in for the old pointer loops).
  EXPECT_EQ(r.begin()->id, ids.front());
}

// ----------------------------------------------------------- cursor

TEST_F(StoreFixture, CursorStreamsSameRowsAsQuery) {
  FlowQuery q;
  q.about_host(kAlice);
  const auto materialized = store_.query(q);
  auto cur = store_.open_cursor(q);
  std::size_t i = 0;
  while (cur.next()) {
    ASSERT_LT(i, materialized.size());
    EXPECT_EQ(cur.current().id, materialized[i].id);
    ++i;
  }
  EXPECT_EQ(i, materialized.size());
  EXPECT_EQ(cur.produced(), materialized.size());
  EXPECT_FALSE(cur.next());  // exhausted stays exhausted
}

TEST(QueryCursor, RespectsLimitAndSpansSegments) {
  DataStoreConfig cfg;
  cfg.segment_flows = 10;
  DataStore store(cfg);
  for (int i = 0; i < 35; ++i)
    store.ingest(make_flow(i, i + 0.5, kAlice, kServer,
                           static_cast<std::uint16_t>(1000 + i), 443));
  auto cur = store.open_cursor(FlowQuery{}.about_host(kAlice).top(25));
  std::uint64_t last_id = 0;
  std::size_t n = 0;
  while (cur.next()) {
    EXPECT_GT(cur.current().id, last_id);  // ingest order
    last_id = cur.current().id;
    ++n;
  }
  EXPECT_EQ(n, 25u);
  EXPECT_GE(cur.stats().segments_scanned, 3u);
}

// ------------------------------------------------------- aggregation

TEST_F(StoreFixture, AggregateByHostCreditsBothEndpoints) {
  const auto agg = store_.aggregate(FlowQuery{}, GroupBy::kHost);
  EXPECT_EQ(agg.matched_flows, 4u);
  auto row_for = [&](const Ipv4Address& a) -> const AggregateRow* {
    for (const auto& row : agg.rows)
      if (row.host() == a) return &row;
    return nullptr;
  };
  const auto* alice = row_for(kAlice);
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(alice->flows, 3u);  // two as src, one as dst
  EXPECT_EQ(alice->bytes, 5000u + 5000u + 3'000'000u);
  const auto* server = row_for(kServer);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->flows, 2u);
  // Heaviest host first (ties broken by key).
  for (std::size_t i = 1; i < agg.rows.size(); ++i)
    EXPECT_GE(agg.rows[i - 1].bytes, agg.rows[i].bytes);
}

TEST_F(StoreFixture, AggregateByLabelAndPort) {
  const auto by_label = store_.aggregate(FlowQuery{}, GroupBy::kLabel);
  ASSERT_EQ(by_label.rows.size(), 2u);
  EXPECT_EQ(by_label.rows[0].label(), TrafficLabel::kDnsAmplification);
  EXPECT_EQ(by_label.rows[0].flows, 1u);
  EXPECT_EQ(by_label.rows[1].label(), TrafficLabel::kBenign);
  EXPECT_EQ(by_label.rows[1].flows, 3u);

  const auto by_port = store_.aggregate(FlowQuery{}, GroupBy::kPort);
  auto port_row = [&](std::uint16_t p) -> const AggregateRow* {
    for (const auto& row : by_port.rows)
      if (row.port() == p) return &row;
    return nullptr;
  };
  ASSERT_NE(port_row(443), nullptr);
  EXPECT_EQ(port_row(443)->flows, 2u);
  ASSERT_NE(port_row(53), nullptr);
  EXPECT_EQ(port_row(53)->flows, 2u);
}

TEST_F(StoreFixture, AggregateTopKIsHeavyHitters) {
  const auto top1 = store_.aggregate(FlowQuery{}, GroupBy::kHost, 1);
  ASSERT_EQ(top1.rows.size(), 1u);
  // The 3 MB amplification flow dominates; both its endpoints carry it,
  // and kAlice additionally carries 10 KB of web traffic.
  EXPECT_EQ(top1.rows[0].host(), kAlice);
  const auto full = store_.aggregate(FlowQuery{}, GroupBy::kHost);
  EXPECT_EQ(top1.rows[0].bytes, full.rows[0].bytes);
  // A filter narrows what is aggregated; its limit is ignored.
  FlowQuery benign;
  benign.with_label(TrafficLabel::kBenign).top(1);
  const auto agg = store_.aggregate(benign, GroupBy::kLabel);
  EXPECT_EQ(agg.matched_flows, 3u);
}

// Property: for random stores, every indexed query returns exactly the
// same set as a brute-force scan with the same predicate.
TEST(DataStoreProperty, IndexedQueryEqualsScan) {
  Rng rng(404);
  DataStoreConfig cfg;
  cfg.segment_flows = 64;
  DataStore store(cfg);
  std::vector<FlowRecord> all;
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Address src(
        static_cast<std::uint32_t>(0x0A010000 + rng.below(32)));
    const Ipv4Address dst(
        static_cast<std::uint32_t>(0xC6336400 + rng.below(16)));
    const auto label = static_cast<TrafficLabel>(rng.below(5));
    auto f = make_flow(rng.uniform(0, 1000), 0, src, dst,
                       static_cast<std::uint16_t>(rng.below(3) + 5000),
                       static_cast<std::uint16_t>(rng.chance(0.5) ? 53 : 443),
                       static_cast<std::uint8_t>(rng.chance(0.5) ? 6 : 17),
                       label, 1 + rng.below(100), 100 + rng.below(100000));
    f.last_ts = f.first_ts + Duration::from_seconds(rng.uniform(0, 10));
    all.push_back(f);
    store.ingest(f);
  }
  for (int trial = 0; trial < 50; ++trial) {
    FlowQuery q;
    if (rng.chance(0.5))
      q.host = Ipv4Address(
          static_cast<std::uint32_t>(0x0A010000 + rng.below(32)));
    if (rng.chance(0.4)) q.label = static_cast<TrafficLabel>(rng.below(5));
    if (rng.chance(0.4)) q.port = rng.chance(0.5) ? 53 : 443;
    if (rng.chance(0.5)) {
      const double a = rng.uniform(0, 1000);
      q.between(Timestamp::from_seconds(a),
                Timestamp::from_seconds(a + rng.uniform(0, 300)));
    }
    if (rng.chance(0.3)) q.min_bytes = rng.below(50000);

    const auto indexed = store.query(q);
    std::size_t scan_count = 0;
    store.for_each([&](const StoredFlow& s) {
      if (q.matches(s)) ++scan_count;
    });
    EXPECT_EQ(indexed.size(), scan_count) << "trial " << trial;
  }
}

// --------------------------------------------------------- PacketArchive

class ArchiveFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("campuslab_archive_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  packet::Packet frame(double t_s) {
    using namespace packet;
    return PacketBuilder(Timestamp::from_seconds(t_s))
        .udp(Endpoint{MacAddress::from_id(1), Ipv4Address(10, 0, 16, 2),
                      1111},
             Endpoint{MacAddress::from_id(2), Ipv4Address(8, 8, 8, 8), 53})
        .payload_size(100)
        .build();
  }

  std::filesystem::path dir_;
};

TEST_F(ArchiveFixture, RotatesSegmentsBySpan) {
  PacketArchiveConfig cfg;
  cfg.directory = dir_.string();
  cfg.segment_span = Duration::seconds(60);
  auto archive = PacketArchive::open(cfg);
  ASSERT_TRUE(archive.ok());
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(archive.value().write(frame(i * 30.0)).ok());
  ASSERT_TRUE(archive.value().seal().ok());
  // 300s of traffic at 60s per segment -> 5 segments.
  EXPECT_EQ(archive.value().segments().size(), 5u);
  EXPECT_EQ(archive.value().records_written(), 10u);
}

TEST_F(ArchiveFixture, ReadRangeSpansSegments) {
  PacketArchiveConfig cfg;
  cfg.directory = dir_.string();
  cfg.segment_span = Duration::seconds(10);
  auto archive = PacketArchive::open(cfg);
  ASSERT_TRUE(archive.ok());
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(archive.value().write(frame(i * 1.0)).ok());
  auto r = archive.value().read_range(Timestamp::from_seconds(25),
                                      Timestamp::from_seconds(44));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 20u);  // t=25..44 inclusive
  for (std::size_t i = 1; i < r.value().size(); ++i)
    EXPECT_GE(r.value()[i].ts, r.value()[i - 1].ts);
}

TEST_F(ArchiveFixture, RetentionDeletesFiles) {
  PacketArchiveConfig cfg;
  cfg.directory = dir_.string();
  cfg.segment_span = Duration::seconds(10);
  cfg.retention = Duration::seconds(30);
  auto archive = PacketArchive::open(cfg);
  ASSERT_TRUE(archive.ok());
  for (int i = 0; i < 60; ++i)
    ASSERT_TRUE(archive.value().write(frame(i * 1.0)).ok());
  const auto before = archive.value().segments().size();
  const auto deleted =
      archive.value().enforce_retention(Timestamp::from_seconds(60));
  EXPECT_GT(deleted, 0u);
  EXPECT_EQ(archive.value().segments().size(), before - deleted);
  // Files are really gone.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir_))
    ++files;
  EXPECT_EQ(files, archive.value().segments().size());
}

TEST_F(ArchiveFixture, OpenFailsOnMissingDirectory) {
  PacketArchiveConfig cfg;
  cfg.directory = (dir_ / "does_not_exist").string();
  EXPECT_FALSE(PacketArchive::open(cfg).ok());
}

}  // namespace
}  // namespace campuslab::store

// Crash-recovery chaos for the automation loop: a real child process
// (automation_loop_proc) runs the closed loop against a durable
// registry and SIGKILLs ITSELF at a seed-chosen stage of a retrain
// cycle — mid-train, mid-extract, mid-compile, mid-canary, or
// mid-swap. No destructors, no flush: whatever the registry's
// write-then-rename discipline left on disk is all a restart gets.
//
// The contract under test (ISSUE acceptance):
//   * the on-disk registry still decodes after the kill;
//   * the audit log shows no phantom promotion — every promoted
//     version exists in the registry, and the active version is one of
//     them;
//   * a restarted process recovers to the last PROMOTED version and
//     serves with it.
//
// CI drives this across the CAMPUSLAB_FAULT_SEED matrix; the seed
// picks the stage the process dies in.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "campuslab/control/model_registry.h"
#include "campuslab/resilience/fault.h"

namespace campuslab::control {
namespace {

namespace fs = std::filesystem;

int spawn_and_wait(const std::string& registry_dir,
                   const std::string& status_file, const char* mode,
                   std::uint64_t seed, int* exit_status) {
  const std::string seed_s = std::to_string(seed);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(CAMPUSLAB_LOOP_PROC_BIN, CAMPUSLAB_LOOP_PROC_BIN,
            registry_dir.c_str(), status_file.c_str(), mode,
            seed_s.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  EXPECT_GT(pid, 0) << "fork failed";
  int status = 0;
  ::waitpid(pid, &status, 0);
  *exit_status = status;
  return pid;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(LoopCrashRecovery, SigkillMidCycleRecoversToLastPromotedVersion) {
  const std::uint64_t seed = resilience::FaultPlan::seed_from_env(1);
  const auto dir = fs::path(::testing::TempDir()) /
                   ("loop_crash_" + std::to_string(seed));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto status_file = dir / "status.txt";

  // Round 1: the child bootstraps v1, then dies by SIGKILL at a
  // seed-chosen stage of the next cycle.
  int status = 0;
  spawn_and_wait(dir.string(), status_file.string(), "crash", seed,
                 &status);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited " << WEXITSTATUS(status)
      << " instead of dying at its kill stage (2=start failed, "
         "3=stage never reached)";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  EXPECT_NE(slurp(status_file).find("promoted 1"), std::string::npos)
      << "v1 was not durable before the cycle started";

  // The kill left no half-written registry: the file still decodes.
  auto reg = read_registry_file((dir / "registry.clmr").string());
  ASSERT_TRUE(reg.ok()) << reg.error().code << ": " << reg.error().message;
  ASSERT_FALSE(reg.value().entries.empty());

  // No phantom promotions: every promotion the audit log claims points
  // at a version the registry actually holds, and the active version
  // is one of the promoted ones.
  std::set<std::uint32_t> entry_versions;
  for (const auto& entry : reg.value().entries)
    entry_versions.insert(entry.version);
  std::set<std::uint32_t> promoted;
  std::ifstream audit(dir / "audit.log");
  std::string line;
  std::size_t audit_lines = 0;
  while (std::getline(audit, line)) {
    auto event = decode_audit_line(line);
    if (!event.has_value()) break;  // at most a torn tail
    ++audit_lines;
    if (event->kind == AuditKind::kPromoted) {
      promoted.insert(event->version);
      EXPECT_TRUE(entry_versions.count(event->version))
          << "phantom promotion of v" << event->version;
    }
  }
  ASSERT_GT(audit_lines, 0u);
  EXPECT_TRUE(promoted.count(reg.value().active_version))
      << "active v" << reg.value().active_version
      << " was never audited as promoted";

  // Round 2: a fresh process with no gathered data recovers to the
  // last promoted version and serves with it.
  spawn_and_wait(dir.string(), status_file.string(), "recover", seed,
                 &status);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0)
      << "recovery child failed: " << slurp(status_file);
  const auto report = slurp(status_file);
  EXPECT_NE(report.find("recovered " +
                        std::to_string(reg.value().active_version)),
            std::string::npos)
      << report;

  fs::remove_all(dir);
}

}  // namespace
}  // namespace campuslab::control

#else  // no fork/exec on this platform

TEST(LoopCrashRecovery, SigkillMidCycleRecoversToLastPromotedVersion) {
  GTEST_SKIP() << "crash-recovery chaos needs fork/exec";
}

#endif

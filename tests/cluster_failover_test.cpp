// Kill-a-node chaos for the distributed store: seeded faults at the
// store.shard_rpc site (every cluster→node message crosses it), the
// default retry policy absorbing the transient ones, then a node
// killed outright — proving zero lost acked flows and complete,
// bit-identical results with one node down.
//
// CI runs this under a CAMPUSLAB_FAULT_SEED matrix; any seed must
// pass, and one seed must replay identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "campuslab/resilience/fault.h"
#include "campuslab/store/cluster.h"
#include "campuslab/store/query_engine.h"
#include "campuslab/util/rng.h"

namespace campuslab::store {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;
using packet::TrafficLabel;
using resilience::FaultKind;
using resilience::FaultPlan;
using resilience::FaultScope;
using resilience::FaultSpec;

std::vector<FlowRecord> canonical_flows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FlowRecord f;
    const Ipv4Address src(
        static_cast<std::uint32_t>(0x0A020000 + rng.below(48)));
    const Ipv4Address dst(
        static_cast<std::uint32_t>(0xC0A80000 + rng.below(128)));
    f.tuple = packet::FiveTuple{
        src, dst, static_cast<std::uint16_t>(1024 + rng.below(50000)),
        static_cast<std::uint16_t>(rng.chance(0.5) ? 443 : 53),
        static_cast<std::uint8_t>(rng.chance(0.6) ? 6 : 17)};
    f.first_ts = Timestamp::from_seconds(rng.uniform(0, 300));
    f.last_ts = f.first_ts + Duration::from_seconds(rng.uniform(0.001, 10));
    f.packets = 1 + rng.below(500);
    f.bytes = f.packets * (64 + rng.below(1200));
    f.label_packets[static_cast<std::size_t>(TrafficLabel::kBenign)] =
        f.packets;
    flows.push_back(f);
  }
  std::stable_sort(flows.begin(), flows.end(), capture::flow_export_before);
  return flows;
}

FaultPlan rpc_chaos_plan(std::uint64_t seed, double probability) {
  FaultPlan plan;
  plan.seed = seed;
  FaultSpec spec;
  spec.site = "store.shard_rpc";
  spec.kind = FaultKind::kFail;
  spec.probability = probability;
  plan.faults.push_back(spec);
  return plan;
}

/// The headline chaos property. Seeded transient faults fire on a
/// meaningful fraction of shard messages during ingest; the cluster's
/// per-message retry absorbs them (every flow fully replicated). Then
/// a node dies — chosen from the seed so the matrix covers different
/// victims — and every query must still be complete and bit-identical
/// to a single-node store, with faults STILL firing on the read path.
TEST(ClusterFailover, KillANodeUnderSeededRpcChaos) {
  const std::uint64_t seed = FaultPlan::seed_from_env(1);
  const auto flows = canonical_flows(3000, 0xF00D);

  DataStoreConfig single_cfg;
  single_cfg.segment_flows = 250;
  DataStore single(single_cfg);
  for (const auto& f : flows) single.ingest(f);
  const auto expected = single.query(FlowQuery{});
  const auto expected_agg =
      single.aggregate(FlowQuery{}, GroupBy::kHost, 10);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.node_store.segment_flows = 250;
  Cluster cluster(cfg);

  ClusterIngestReport report;
  {
    // ~5% of shard messages fail transiently; the default retry
    // policy (5 attempts) absorbs runs of them.
    FaultScope chaos(rpc_chaos_plan(seed, 0.05));
    report = cluster.ingest(flows);
  }
  ASSERT_EQ(report.acked, flows.size()) << "seed=" << seed;
  ASSERT_EQ(report.lost, 0u) << "seed=" << seed;
  ASSERT_EQ(report.fully_replicated, flows.size())
      << "retries must absorb transient ingest faults, seed=" << seed;

  const NodeId victim = static_cast<NodeId>(seed % cfg.nodes);
  cluster.kill_node(victim);
  ASSERT_EQ(cluster.live_nodes(), cfg.nodes - 1);

  {
    FaultScope chaos(rpc_chaos_plan(seed ^ 0x9E37, 0.05));
    const auto rows = cluster.query(FlowQuery{});
    ASSERT_EQ(rows.size(), expected.size())
        << "zero lost acked flows with node " << victim << " down, seed="
        << seed;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i].id, expected[i].id) << "row " << i;
      ASSERT_EQ(rows[i].flow.bytes, expected[i].flow.bytes) << "row " << i;
    }
    EXPECT_GE(rows.stats().replica_scopes, 1u)
        << "the victim's scope must have flipped to replicas";

    const auto agg = cluster.aggregate(FlowQuery{}, GroupBy::kHost, 10);
    ASSERT_EQ(agg.rows.size(), expected_agg.rows.size());
    for (std::size_t i = 0; i < agg.rows.size(); ++i) {
      EXPECT_EQ(agg.rows[i].key, expected_agg.rows[i].key) << "row " << i;
      EXPECT_EQ(agg.rows[i].bytes, expected_agg.rows[i].bytes)
          << "row " << i;
    }
  }

  // Chaos off, node still dead: still bit-identical.
  const auto calm = cluster.query(FlowQuery{});
  ASSERT_EQ(calm.size(), expected.size());
  for (std::size_t i = 0; i < calm.size(); ++i)
    ASSERT_EQ(calm[i].id, expected[i].id);
}

/// Same chaos, replayed: one seed must produce the identical report
/// (retry jitter and fault firing are both seeded).
TEST(ClusterFailover, ChaosReplaysIdentically) {
  const std::uint64_t seed = FaultPlan::seed_from_env(1);
  const auto flows = canonical_flows(1500, 0xBEEF);

  auto run = [&] {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.node_store.segment_flows = 500;
    Cluster cluster(cfg);
    FaultScope chaos(rpc_chaos_plan(seed, 0.10));
    const auto report = cluster.ingest(flows);
    std::uint64_t lag = 0;
    for (NodeId n = 0; n < 4; ++n) lag += cluster.replica_lag(n);
    return std::tuple{report.acked, report.fully_replicated, report.lost,
                      lag, cluster.query(FlowQuery{}).size()};
  };
  EXPECT_EQ(run(), run());
}

/// Retries exhausted (max_attempts = 1, heavy fault rate): some copies
/// never land, so flows go replica-lagged — but every *acked* flow
/// stays queryable, which is the ack's contract.
TEST(ClusterFailover, AckedFlowsStayQueryableWhenRetriesExhaust) {
  const std::uint64_t seed = FaultPlan::seed_from_env(1);
  const auto flows = canonical_flows(2000, 0xCAFE);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.node_store.segment_flows = 500;
  cfg.rpc_retry.max_attempts = 1;  // no second chances
  Cluster cluster(cfg);

  ClusterIngestReport report;
  {
    FaultScope chaos(rpc_chaos_plan(seed, 0.30));
    report = cluster.ingest(flows);
  }
  EXPECT_EQ(report.acked + report.lost, flows.size()) << "seed=" << seed;
  EXPECT_LT(report.fully_replicated, flows.size())
      << "30% faults with no retry must lag some copies, seed=" << seed;
  // With replication 2 and independent ~30% failures, losing BOTH
  // copies of many flows is expected-rare but possible; what is not
  // negotiable is that acked flows are all queryable.
  const auto rows = cluster.query(FlowQuery{});
  EXPECT_EQ(rows.size(), report.acked) << "seed=" << seed;
  // Ids ascend strictly (no duplicates from replica-merged scopes).
  for (std::size_t i = 1; i < rows.size(); ++i)
    ASSERT_GT(rows[i].id, rows[i - 1].id) << "row " << i;
}

}  // namespace
}  // namespace campuslab::store

// Tests for campuslab::privacy — the prefix-preservation property of
// the anonymizer (the load-bearing invariant, checked exhaustively on
// random pairs), port-permutation bijectivity, payload policy
// application on real frames, and role arbitration through the gate.
#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "campuslab/packet/builder.h"
#include "campuslab/privacy/anonymize.h"
#include "campuslab/privacy/gate.h"
#include "campuslab/privacy/policy.h"
#include "campuslab/util/rng.h"

namespace campuslab::privacy {
namespace {

using packet::Ipv4Address;
using packet::TrafficLabel;

int common_prefix_len(Ipv4Address a, Ipv4Address b) {
  const std::uint32_t x = a.value() ^ b.value();
  return x == 0 ? 32 : std::countl_zero(x);
}

// ------------------------------------------------------------ Anonymizer

TEST(Anonymizer, Deterministic) {
  PrefixPreservingAnonymizer a(42), b(42);
  const Ipv4Address addr(10, 1, 16, 7);
  EXPECT_EQ(a.anonymize(addr), b.anonymize(addr));
  EXPECT_EQ(a.anonymize(addr), a.anonymize(addr));
}

TEST(Anonymizer, DifferentKeysDifferentMappings) {
  PrefixPreservingAnonymizer a(1), b(2);
  int same = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const Ipv4Address addr(0x0A000000 + i * 7919);
    if (a.anonymize(addr) == b.anonymize(addr)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Anonymizer, ChangesTheAddress) {
  PrefixPreservingAnonymizer a(7);
  int unchanged = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const Ipv4Address addr(i * 2654435761u);
    if (a.anonymize(addr) == addr) ++unchanged;
  }
  EXPECT_LT(unchanged, 2);  // ~2^-32 each; essentially never
}

// The core Crypto-PAn property: common prefix length is exactly
// preserved for every pair.
TEST(AnonymizerProperty, PrefixLengthExactlyPreserved) {
  PrefixPreservingAnonymizer anon(0xFEED);
  Rng rng(31337);
  for (int trial = 0; trial < 5000; ++trial) {
    const Ipv4Address a(static_cast<std::uint32_t>(rng.next()));
    // Construct b sharing exactly k bits with a.
    const int k = static_cast<int>(rng.below(33));
    std::uint32_t bv;
    if (k == 32) {
      bv = a.value();
    } else {
      const std::uint32_t flip_bit = 1u << (31 - k);
      const std::uint32_t low_mask = flip_bit - 1;
      bv = (a.value() & ~(flip_bit | low_mask))     // top k bits equal
           | ((a.value() & flip_bit) ^ flip_bit)    // bit k flipped
           | (static_cast<std::uint32_t>(rng.next()) & low_mask);
    }
    const Ipv4Address b(bv);
    const int before = common_prefix_len(a, b);
    const int after = common_prefix_len(anon.anonymize(a),
                                        anon.anonymize(b));
    EXPECT_EQ(before, after)
        << a.to_string() << " vs " << b.to_string();
  }
}

TEST(Anonymizer, InjectiveOnSubnet) {
  // Prefix preservation implies injectivity; verify directly on a /16.
  PrefixPreservingAnonymizer anon(99);
  std::set<std::uint32_t> images;
  for (std::uint32_t host = 0; host < 4096; ++host) {
    images.insert(anon.anonymize(Ipv4Address(0x0A010000 + host)).value());
  }
  EXPECT_EQ(images.size(), 4096u);
}

TEST(Anonymizer, SubnetStructureSurvives) {
  // All hosts of one /24 map into one anonymized /24.
  PrefixPreservingAnonymizer anon(5);
  const auto first = anon.anonymize(Ipv4Address(10, 1, 16, 1));
  for (std::uint32_t host = 2; host < 255; ++host) {
    const auto mapped = anon.anonymize(Ipv4Address(0x0A011000 + host));
    EXPECT_GE(common_prefix_len(first, mapped), 24);
  }
}

TEST(Anonymizer, PortPermutationBijectiveAndClassPreserving) {
  PrefixPreservingAnonymizer anon(12345);
  std::set<std::uint16_t> low_images, high_images;
  for (std::uint32_t p = 0; p < 1024; ++p) {
    const auto m = anon.anonymize_port(static_cast<std::uint16_t>(p));
    EXPECT_LT(m, 1024);  // well-known stays well-known
    low_images.insert(m);
  }
  EXPECT_EQ(low_images.size(), 1024u);  // bijective on the class
  for (std::uint32_t p = 1024; p < 1024 + 5000; ++p) {
    const auto m = anon.anonymize_port(static_cast<std::uint16_t>(p));
    EXPECT_GE(m, 1024);
    high_images.insert(m);
  }
  EXPECT_EQ(high_images.size(), 5000u);
}

TEST(Anonymizer, CachedMatchesUncached) {
  PrefixPreservingAnonymizer plain(77);
  CachedAnonymizer cached(77);
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const Ipv4Address addr(static_cast<std::uint32_t>(rng.next()));
    EXPECT_EQ(cached.anonymize(addr), plain.anonymize(addr));
    EXPECT_EQ(cached.anonymize(addr), plain.anonymize(addr));  // hit path
  }
  EXPECT_LE(cached.cache_size(), 200u);
}

// --------------------------------------------------------- PayloadPolicy

packet::Packet make_frame(std::uint16_t dport, std::size_t payload) {
  using namespace packet;
  return PacketBuilder(Timestamp::from_seconds(1))
      .udp(Endpoint{MacAddress::from_id(1), Ipv4Address(10, 0, 16, 2), 5555},
           Endpoint{MacAddress::from_id(2), Ipv4Address(1, 2, 3, 4), dport})
      .payload_size(payload)
      .build();
}

TEST(PayloadPolicy, KeepLeavesPayloadIntact) {
  auto pkt = make_frame(53, 200);
  const auto original = pkt.copy_bytes();
  PayloadPolicy::conservative().apply(pkt, 1);
  // DNS is kKeep in the conservative policy
  EXPECT_EQ(pkt.copy_bytes(), original);
}

TEST(PayloadPolicy, TruncateShortensFrame) {
  auto pkt = make_frame(443, 500);
  const auto before = pkt.size();
  PayloadPolicy::conservative().apply(pkt, 1);
  EXPECT_LT(pkt.size(), before);
  packet::PacketView v(pkt);
  ASSERT_TRUE(v.valid());
  // 64 bytes remain per the web rule... but header lengths still claim
  // the original payload (snaplen-style truncation).
  EXPECT_EQ(pkt.size(), before - 500 + 64);
}

TEST(PayloadPolicy, StripRemovesPayload) {
  auto pkt = make_frame(22, 300);
  PayloadPolicy::conservative().apply(pkt, 1);
  // Frame now ends right after the UDP header.
  EXPECT_EQ(pkt.size(),
            packet::EthernetHeader::kSize + 20 + packet::UdpHeader::kSize);
}

TEST(PayloadPolicy, HashReplacesButKeepsLength) {
  PayloadPolicy policy;
  policy.set_default(PayloadAction::kHash);
  auto pkt = make_frame(9999, 64);
  const auto before = pkt.copy_bytes();
  policy.apply(pkt, 42);
  EXPECT_EQ(pkt.size(), before.size());
  EXPECT_NE(pkt.copy_bytes(), before);
  // Identical payloads hash identically (correlation preserved)...
  auto pkt2 = make_frame(9999, 64);
  policy.apply(pkt2, 42);
  const auto digest = pkt.copy_bytes();
  const auto digest2 = pkt2.copy_bytes();
  EXPECT_EQ(std::vector<std::uint8_t>(digest.end() - 16, digest.end()),
            std::vector<std::uint8_t>(digest2.end() - 16, digest2.end()));
  // ...but a different key gives a different digest.
  auto pkt3 = make_frame(9999, 64);
  policy.apply(pkt3, 43);
  EXPECT_NE(pkt.copy_bytes(), pkt3.copy_bytes());
}

TEST(PayloadPolicy, ActionLookupPrefersServicePort) {
  const auto policy = PayloadPolicy::conservative();
  EXPECT_EQ(policy.action_for(53211, 22), PayloadAction::kStrip);
  EXPECT_EQ(policy.action_for(22, 53211), PayloadAction::kStrip);
  EXPECT_EQ(policy.action_for(50000, 50001), PayloadAction::kTruncate);
}

// ------------------------------------------------------------------ Gate

capture::FlowRecord gate_flow(double t, Ipv4Address src, Ipv4Address dst,
                              TrafficLabel label = TrafficLabel::kBenign) {
  capture::FlowRecord f;
  f.tuple = packet::FiveTuple{src, dst, 50123, 443, 6};
  f.first_ts = Timestamp::from_seconds(t);
  f.last_ts = Timestamp::from_seconds(t + 1);
  f.packets = 5;
  f.bytes = 1200;
  f.label_packets[static_cast<std::size_t>(label)] = 5;
  return f;
}

class GateFixture : public ::testing::Test {
 protected:
  GateFixture()
      : gate_(store_, AccessPolicy::campus_default(), 0xABCD) {
    store_.ingest(gate_flow(100, Ipv4Address(10, 1, 16, 9),
                            Ipv4Address(93, 184, 216, 34)));
    store_.ingest(gate_flow(200, Ipv4Address(10, 1, 16, 10),
                            Ipv4Address(8, 8, 8, 8),
                            TrafficLabel::kDnsAmplification));
  }
  store::DataStore store_;
  PrivacyGate gate_;
  const Timestamp now_ = Timestamp::from_seconds(1000);
};

TEST_F(GateFixture, ExternalIsDenied) {
  const auto r = gate_.query(store::FlowQuery{}, Role::kExternal, "rival",
                             now_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "denied");
}

TEST_F(GateFixture, OperatorSeesRawAddresses) {
  auto r = gate_.query(store::FlowQuery{}, Role::kOperator, "noc", now_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].flow.tuple.src, Ipv4Address(10, 1, 16, 9));
}

TEST_F(GateFixture, ResearcherGetsAnonymizedButConsistentView) {
  auto r = gate_.query(store::FlowQuery{}, Role::kResearcher, "phd", now_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  // Raw campus addresses must not appear.
  EXPECT_NE(r.value()[0].flow.tuple.src, Ipv4Address(10, 1, 16, 9));
  // Prefix structure survives: both campus sources share a long prefix.
  const auto a = r.value()[0].flow.tuple.src;
  const auto b = r.value()[1].flow.tuple.src;
  EXPECT_GE(common_prefix_len(a, b), 24);
  // Labels remain visible to researchers (that's the point of the store).
  EXPECT_EQ(r.value()[1].flow.majority_label(),
            TrafficLabel::kDnsAmplification);
}

TEST_F(GateFixture, ResearcherCannotFilterByRawHost) {
  store::FlowQuery q;
  q.about_host(Ipv4Address(10, 1, 16, 9));
  const auto r = gate_.query(q, Role::kResearcher, "phd", now_);
  EXPECT_FALSE(r.ok());
}

TEST_F(GateFixture, AuditorGetsNoLabels) {
  auto r = gate_.query(store::FlowQuery{}, Role::kAuditor, "oac", now_);
  ASSERT_TRUE(r.ok());
  for (const auto& flow : r.value()) {
    EXPECT_EQ(flow.flow.majority_label(), TrafficLabel::kBenign);
    EXPECT_EQ(flow.flow.label_packets[1], 0u);
  }
}

TEST_F(GateFixture, WindowClippedToRole) {
  AccessPolicy policy = AccessPolicy::campus_default();
  AccessRights tight{true, true, true, true, Duration::seconds(850)};
  policy.set_rights(Role::kOperator, tight);
  PrivacyGate gate(store_, policy, 1);
  // now=1000, window 850 -> horizon t=150: only the t=200 flow visible.
  auto r = gate.query(store::FlowQuery{}, Role::kOperator, "noc", now_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].flow.first_ts, Timestamp::from_seconds(200));
}

TEST_F(GateFixture, AuditTrailRecordsEverything) {
  (void)gate_.query(store::FlowQuery{}, Role::kOperator, "noc", now_);
  (void)gate_.query(store::FlowQuery{}, Role::kExternal, "rival", now_);
  ASSERT_EQ(gate_.audit_log().size(), 2u);
  EXPECT_TRUE(gate_.audit_log()[0].granted);
  EXPECT_EQ(gate_.audit_log()[0].results, 2u);
  EXPECT_FALSE(gate_.audit_log()[1].granted);
  EXPECT_EQ(gate_.audit_log()[1].requester, "rival");
}

}  // namespace
}  // namespace campuslab::privacy

// Robustness / failure-injection tests — the parsers and pipelines must
// be total functions over arbitrary bytes (a capture appliance eats
// whatever the wire delivers):
//   - PacketView over random and truncated frames never reads OOB and
//     never claims validity it can't back up
//   - DNS parser over random payloads and bit-flipped real messages
//   - pcap reader over corrupted files
//   - capture pipeline under pathological overload (1-slot ring)
//   - store/flow meter fed hostile flows
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "campuslab/capture/engine.h"
#include "campuslab/capture/flow.h"
#include "campuslab/capture/sharded_engine.h"
#include "campuslab/capture/pcap.h"
#include "campuslab/features/packet_features.h"
#include "campuslab/packet/builder.h"
#include "campuslab/store/datastore.h"
#include "campuslab/util/rng.h"

namespace campuslab {
namespace {

using packet::Ipv4Address;
using packet::PacketView;

TEST(FuzzPacketView, RandomBytesNeverCrash) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> frame(rng.below(200));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next());
    PacketView view{std::span<const std::uint8_t>(frame)};
    if (view.valid()) {
      // Whatever validity claims, accessors must be consistent.
      EXPECT_TRUE(view.is_ipv4() || view.is_ipv6());
      if (view.is_ipv4() && (view.is_tcp() || view.is_udp())) {
        EXPECT_TRUE(view.five_tuple().has_value());
      }
      EXPECT_LE(view.payload().size(), frame.size());
    }
  }
}

TEST(FuzzPacketView, TruncatedRealFramesDegradeGracefully) {
  using namespace packet;
  const auto full = PacketBuilder(Timestamp::from_seconds(1))
                        .tcp(Endpoint{MacAddress::from_id(1),
                                      Ipv4Address(10, 0, 16, 2), 5000},
                             Endpoint{MacAddress::from_id(2),
                                      Ipv4Address(1, 1, 1, 1), 443},
                             TcpFlags::kSyn)
                        .payload_size(100)
                        .build();
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    PacketView view{full.bytes().first(cut)};
    // Must never crash; below the full L2+L3+L4 headers it must not
    // claim a TCP layer.
    if (cut < packet::EthernetHeader::kSize + 20 + 20) {
      EXPECT_FALSE(view.valid() && view.is_tcp());
    }
  }
}

TEST(FuzzPacketView, BitFlippedRealFramesNeverCrash) {
  using namespace packet;
  Rng rng(0xF1E5);
  const auto base = PacketBuilder(Timestamp::from_seconds(1))
                        .udp(Endpoint{MacAddress::from_id(1),
                                      Ipv4Address(10, 0, 16, 2), 5000},
                             Endpoint{MacAddress::from_id(2),
                                      Ipv4Address(8, 8, 8, 8), 53})
                        .payload_size(64)
                        .build();
  for (int trial = 0; trial < 10000; ++trial) {
    auto mutated = base.copy_bytes();
    const int flips = 1 + static_cast<int>(rng.below(16));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    PacketView view{std::span<const std::uint8_t>(mutated)};
    if (view.valid() && view.is_udp()) {
      EXPECT_LE(view.payload().size(), mutated.size());
    }
  }
}

TEST(FuzzDns, RandomPayloadsNeverCrash) {
  Rng rng(0xD45F);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> payload(rng.below(120));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
    const auto result = packet::DnsMessage::parse(payload);
    if (result.ok()) {
      // Anything accepted must re-serialize without crashing.
      (void)result.value().serialize();
    }
  }
}

TEST(FuzzDns, BitFlippedRealMessages) {
  Rng rng(0xD46A);
  const auto query = packet::make_dns_query(0x7777, "fuzz.campus.edu",
                                            packet::DnsType::kAny);
  const auto resp = packet::make_dns_response(query, 3, 600);
  const auto bytes = resp.serialize();
  for (int trial = 0; trial < 5000; ++trial) {
    auto mutated = bytes;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    const auto result = packet::DnsMessage::parse(mutated);
    if (result.ok()) (void)result.value().serialize();
  }
}

TEST(FuzzPcap, CorruptedFilesFailCleanly) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = dir / ("campuslab_fuzz_" +
                           std::to_string(::getpid()) + ".pcap");
  Rng rng(0x9CA1);
  for (int trial = 0; trial < 200; ++trial) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      std::vector<char> junk(rng.below(400));
      for (auto& b : junk) b = static_cast<char>(rng.next());
      // Half the trials start with a valid magic to reach deeper code.
      if (rng.chance(0.5) && junk.size() >= 4) {
        junk[0] = '\x4d';
        junk[1] = '\x3c';
        junk[2] = '\xb2';
        junk[3] = '\xa1';
      }
      out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    }
    auto reader = capture::PcapReader::open(path.string());
    if (reader.ok()) {
      for (int i = 0; i < 64; ++i) {
        auto r = reader.value().next();
        if (!r.ok() || !r.value().has_value()) break;
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(OverloadCapture, OneSlotRingStillAccountsExactly) {
  capture::CaptureConfig cfg;
  cfg.ring_capacity = 1;
  capture::CaptureEngine engine(cfg);
  std::uint64_t seen = 0;
  engine.add_sink([&](const capture::TaggedPacket&) { ++seen; });
  using namespace packet;
  const auto pkt = PacketBuilder(Timestamp::from_seconds(1))
                       .udp(Endpoint{MacAddress::from_id(1),
                                     Ipv4Address(10, 0, 16, 2), 1},
                            Endpoint{MacAddress::from_id(2),
                                     Ipv4Address(8, 8, 8, 8), 53})
                       .build();
  for (int i = 0; i < 1000; ++i) {
    engine.offer(pkt, sim::Direction::kInbound);
    if (i % 3 == 0) engine.poll(1);
  }
  engine.drain();
  const auto& s = engine.stats();
  EXPECT_EQ(s.offered, 1000u);
  EXPECT_EQ(s.accepted + s.dropped, s.offered);
  EXPECT_EQ(s.consumed, s.accepted);
  EXPECT_EQ(seen, s.consumed);
}

TEST(OverloadCapture, OneSlotShardedRingAccountsExactlyUnderConcurrentStop) {
  // The sharded pipeline's worst case: pathological 1-slot rings, a
  // producer hammering offers, and stop() racing the producer instead
  // of waiting for it. Whatever interleaving happens, the quiesced
  // accounting identities must be EXACT — every offered frame is
  // accepted or dropped, every accepted frame is consumed or abandoned.
  capture::ShardedCaptureEngine engine({.shards = 2, .ring_capacity = 1});
  std::atomic<std::uint64_t> seen{0};
  engine.add_sink_factory([&seen](std::size_t) {
    return [&seen](const capture::TaggedPacket&) { ++seen; };
  });
  using namespace packet;
  engine.start();
  std::atomic<bool> stop_offering{false};
  std::uint64_t offers = 0;
  std::thread producer([&] {
    Rng rng(0xC0);
    while (!stop_offering.load(std::memory_order_acquire)) {
      (void)engine.offer(
          PacketBuilder(Timestamp::from_nanos(static_cast<std::int64_t>(
                            1000 + offers)))
              .udp(Endpoint{MacAddress::from_id(1),
                            Ipv4Address(10, 0, 16, 2),
                            static_cast<std::uint16_t>(rng.below(60000))},
                   Endpoint{MacAddress::from_id(2), Ipv4Address(8, 8, 8, 8),
                            53})
              .build(),
          sim::Direction::kInbound);
      ++offers;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.stop();  // races the still-running producer
  stop_offering.store(true, std::memory_order_release);
  producer.join();
  engine.drain();  // frames offered after the workers left

  const auto s = engine.stats();
  EXPECT_EQ(s.offered, offers);
  EXPECT_EQ(s.accepted + s.dropped, s.offered);
  EXPECT_EQ(s.consumed + s.abandoned, s.accepted);
  EXPECT_GT(s.dropped, 0u);  // 1-slot rings under pressure must drop
  EXPECT_EQ(seen.load(), s.consumed);
  EXPECT_LE(s.drained_on_stop, s.consumed);
}

TEST(OverloadFlowMeter, MillionDistinctFlowsStayBounded) {
  capture::FlowMeterConfig cfg;
  cfg.max_flows = 10'000;
  capture::FlowMeter meter(cfg);
  std::uint64_t evicted = 0;
  meter.set_sink([&](const capture::FlowRecord&) { ++evicted; });
  using namespace packet;
  Rng rng(0xF70);
  for (int i = 0; i < 100'000; ++i) {
    const Endpoint src{MacAddress::from_id(1),
                       Ipv4Address(static_cast<std::uint32_t>(rng.next())),
                       static_cast<std::uint16_t>(rng.below(65536))};
    const Endpoint dst{MacAddress::from_id(2),
                       Ipv4Address(10, 0, 16, 2),
                       static_cast<std::uint16_t>(rng.below(65536))};
    meter.offer(PacketBuilder(Timestamp::from_nanos(i * 1000))
                    .udp(src, dst)
                    .build(),
                sim::Direction::kInbound);
    ASSERT_LE(meter.active_flows(), 10'000u);
  }
  EXPECT_GT(evicted, 80'000u);
  EXPECT_EQ(meter.stats().flows_created, 100'000u);
}

TEST(HostileStore, ExtremeValuesDontBreakIndexesOrCatalog) {
  store::DataStore store;
  capture::FlowRecord f;
  f.tuple = packet::FiveTuple{Ipv4Address(0xFFFFFFFF),
                              Ipv4Address(0), 65535, 0, 255};
  f.first_ts = Timestamp::from_nanos(
      std::numeric_limits<std::int64_t>::max() / 2);
  f.last_ts = f.first_ts;
  f.packets = std::numeric_limits<std::uint32_t>::max();
  f.bytes = std::numeric_limits<std::uint64_t>::max() / 4;
  store.ingest(f);
  capture::FlowRecord zero{};
  store.ingest(zero);

  store::FlowQuery q;
  q.about_host(Ipv4Address(0xFFFFFFFF));
  EXPECT_EQ(store.query(q).size(), 1u);
  const auto cat = store.catalog();
  EXPECT_EQ(cat.total_flows, 2u);
  EXPECT_GE(cat.latest, cat.earliest);
}

TEST(HostileFeatures, ExtractorSurvivesGarbageAndExtremes) {
  features::StatefulFeatureExtractor extractor;
  Rng rng(0xFEA7);
  for (int i = 0; i < 5000; ++i) {
    packet::Packet junk;
    junk.ts = Timestamp::from_nanos(i);
    junk.resize(rng.below(128));
    for (auto& b : junk.mutable_bytes())
      b = static_cast<std::uint8_t>(rng.next());
    const auto x = extractor.extract(junk, sim::Direction::kInbound);
    for (const auto v : x) EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace campuslab

// merge_flow_exports edge cases: empty inputs, single-shard identity,
// duplicate 5-tuples across shards, and the flow_export_before
// tie-break chain the deterministic merge rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "campuslab/capture/flow.h"
#include "campuslab/features/flow_merge.h"

namespace campuslab {
namespace {

using capture::FlowRecord;
using capture::flow_export_before;
using features::merge_flow_exports;
using packet::FiveTuple;
using packet::Ipv4Address;

FiveTuple tuple(std::uint8_t src_octet, std::uint16_t src_port) {
  return FiveTuple{Ipv4Address(10, 0, 0, src_octet),
                   Ipv4Address(192, 168, 1, 1), src_port, 53, 17};
}

FlowRecord record(std::int64_t first_ns, std::int64_t last_ns,
                  const FiveTuple& t, std::uint64_t packets = 1) {
  FlowRecord r;
  r.tuple = t;
  r.first_ts = Timestamp::from_nanos(first_ns);
  r.last_ts = Timestamp::from_nanos(last_ns);
  r.packets = packets;
  return r;
}

bool sorted_by_export_order(const std::vector<FlowRecord>& v) {
  return std::is_sorted(v.begin(), v.end(), flow_export_before);
}

TEST(FlowExportBefore, OrdersByFirstTimestampFirst) {
  const auto early = record(100, 900, tuple(2, 2000));
  const auto late = record(200, 300, tuple(1, 1000));
  // first_ts dominates even though `late` ends earlier and has the
  // smaller tuple.
  EXPECT_TRUE(flow_export_before(early, late));
  EXPECT_FALSE(flow_export_before(late, early));
}

TEST(FlowExportBefore, BreaksFirstTsTiesOnLastTs) {
  const auto short_flow = record(100, 200, tuple(2, 2000));
  const auto long_flow = record(100, 500, tuple(1, 1000));
  EXPECT_TRUE(flow_export_before(short_flow, long_flow));
  EXPECT_FALSE(flow_export_before(long_flow, short_flow));
}

TEST(FlowExportBefore, BreaksTimestampTiesOnTuple) {
  const auto a = record(100, 200, tuple(1, 1000));
  const auto b = record(100, 200, tuple(1, 2000));
  ASSERT_TRUE(a.tuple < b.tuple);
  EXPECT_TRUE(flow_export_before(a, b));
  EXPECT_FALSE(flow_export_before(b, a));
}

TEST(FlowExportBefore, IsIrreflexiveOnFullTies) {
  // Identical sort keys: neither precedes the other (strict weak
  // ordering requirement for std::stable_sort).
  const auto a = record(100, 200, tuple(1, 1000));
  const auto b = record(100, 200, tuple(1, 1000));
  EXPECT_FALSE(flow_export_before(a, b));
  EXPECT_FALSE(flow_export_before(b, a));
}

TEST(MergeFlowExports, NoShardsYieldsEmpty) {
  EXPECT_TRUE(merge_flow_exports({}).empty());
}

TEST(MergeFlowExports, AllEmptyShardsYieldEmpty) {
  std::vector<std::vector<FlowRecord>> per_shard(4);
  EXPECT_TRUE(merge_flow_exports(std::move(per_shard)).empty());
}

TEST(MergeFlowExports, EmptyShardsAmongPopulatedOnesAreHarmless) {
  std::vector<std::vector<FlowRecord>> per_shard(3);
  per_shard[1].push_back(record(200, 300, tuple(1, 1000)));
  per_shard[1].push_back(record(100, 150, tuple(2, 2000)));
  const auto merged = merge_flow_exports(std::move(per_shard));
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_TRUE(sorted_by_export_order(merged));
  EXPECT_EQ(merged[0].first_ts, Timestamp::from_nanos(100));
}

TEST(MergeFlowExports, SingleShardIsSortedNotJustCopied) {
  // One shard whose eviction order (idle sweeps, capacity evictions)
  // disagrees with the canonical order: merge must still sort.
  std::vector<std::vector<FlowRecord>> per_shard(1);
  per_shard[0].push_back(record(300, 400, tuple(3, 3000), 30));
  per_shard[0].push_back(record(100, 200, tuple(1, 1000), 10));
  per_shard[0].push_back(record(200, 250, tuple(2, 2000), 20));
  const auto merged = merge_flow_exports(std::move(per_shard));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_TRUE(sorted_by_export_order(merged));
  EXPECT_EQ(merged[0].packets, 10u);
  EXPECT_EQ(merged[1].packets, 20u);
  EXPECT_EQ(merged[2].packets, 30u);
}

TEST(MergeFlowExports, AlreadySortedSingleShardIsIdentity) {
  std::vector<std::vector<FlowRecord>> per_shard(1);
  per_shard[0].push_back(record(100, 200, tuple(1, 1000), 10));
  per_shard[0].push_back(record(150, 260, tuple(2, 2000), 20));
  per_shard[0].push_back(record(300, 400, tuple(3, 3000), 30));
  const auto merged = merge_flow_exports(std::move(per_shard));
  ASSERT_EQ(merged.size(), 3u);
  for (std::size_t i = 0; i < merged.size(); ++i)
    EXPECT_EQ(merged[i].packets, (i + 1) * 10) << i;
}

TEST(MergeFlowExports, InterleavesAcrossShardsDeterministically) {
  std::vector<std::vector<FlowRecord>> per_shard(2);
  per_shard[0].push_back(record(100, 200, tuple(1, 1000), 1));
  per_shard[0].push_back(record(300, 400, tuple(1, 1001), 3));
  per_shard[1].push_back(record(200, 300, tuple(2, 2000), 2));
  per_shard[1].push_back(record(400, 500, tuple(2, 2001), 4));
  const auto merged = merge_flow_exports(std::move(per_shard));
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 0; i < merged.size(); ++i)
    EXPECT_EQ(merged[i].packets, i + 1) << i;
}

TEST(MergeFlowExports, DuplicateTuplesAcrossShardsAreBothKept) {
  // The same 5-tuple can legitimately export twice (idle timeout then
  // re-use); nothing may dedup or drop on tuple equality. Records keep
  // their identities and order by time.
  const auto t = tuple(1, 1000);
  std::vector<std::vector<FlowRecord>> per_shard(2);
  per_shard[0].push_back(record(500, 600, t, 5));
  per_shard[1].push_back(record(100, 200, t, 1));
  const auto merged = merge_flow_exports(std::move(per_shard));
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].packets, 1u);
  EXPECT_EQ(merged[1].packets, 5u);
}

TEST(MergeFlowExports, FullTiesKeepShardIndexOrder) {
  // Records identical in every sort key: stable_sort pins the result to
  // shard index order, making the merge a pure function of the
  // per-shard streams — not of which shard happened to flush first.
  const auto t = tuple(1, 1000);
  std::vector<std::vector<FlowRecord>> per_shard(3);
  per_shard[0].push_back(record(100, 200, t, 10));
  per_shard[1].push_back(record(100, 200, t, 11));
  per_shard[2].push_back(record(100, 200, t, 12));
  const auto merged = merge_flow_exports(std::move(per_shard));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].packets, 10u);
  EXPECT_EQ(merged[1].packets, 11u);
  EXPECT_EQ(merged[2].packets, 12u);
}

}  // namespace
}  // namespace campuslab

// Parse-once equivalence: the eager PacketView cached in DecodedPacket
// at the tap must be indistinguishable from a fresh per-stage decode.
// For a mixed benign + DNS-amplification trace, every consumer that
// accepts a cached view (FlowMeter, PacketDatasetCollector, FastLoop /
// SoftwareSwitch) is run twice — once re-parsing per stage, once on the
// cached view — and must produce identical output.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "campuslab/capture/decoded.h"
#include "campuslab/capture/flow.h"
#include "campuslab/control/development_loop.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/features/packet_dataset.h"
#include "campuslab/sim/simulator.h"
#include "campuslab/testbed/testbed.h"

namespace campuslab::capture {
namespace {

/// Field-by-field serialization so "identical" is well-defined (same
/// approach as the sharded determinism regression).
void serialize(const FlowRecord& r, std::vector<std::uint8_t>& out) {
  auto put = [&out](const auto& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), p, p + sizeof(v));
  };
  put(r.tuple.src.value());
  put(r.tuple.dst.value());
  put(r.tuple.src_port);
  put(r.tuple.dst_port);
  put(r.tuple.proto);
  put(static_cast<std::uint8_t>(r.initial_direction));
  put(r.first_ts.nanos());
  put(r.last_ts.nanos());
  put(r.packets);
  put(r.bytes);
  put(r.payload_bytes);
  put(r.fwd_packets);
  put(r.rev_packets);
  put(r.syn_count);
  put(r.synack_count);
  put(r.fin_count);
  put(r.rst_count);
  put(r.psh_count);
  put(static_cast<std::uint8_t>(r.saw_dns));
  for (const auto count : r.label_packets) put(count);
}

/// A few seconds of campus traffic with an injected amplification
/// attack, recorded off the tap with the decode done once per packet —
/// exactly what the capture engines put on their rings.
std::vector<DecodedPacket> record_trace(std::uint64_t seed = 77) {
  sim::ScenarioConfig scenario;
  scenario.campus.seed = seed;
  scenario.campus.diurnal = false;
  scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(600)
          .starting_at(Timestamp::from_seconds(1))
          .lasting(Duration::seconds(3)));

  sim::CampusSimulator simulator(scenario);
  std::vector<DecodedPacket> trace;
  simulator.network().set_tap(
      [&](const packet::Packet& p, sim::Direction d) {
        trace.push_back(DecodedPacket{p, d});
      });
  simulator.run_for(Duration::seconds(6));
  return trace;
}

TEST(ParseOnce, TraceIsMixedAndViewsAreCoherent) {
  const auto trace = record_trace();
  ASSERT_GT(trace.size(), 1000u);
  std::size_t attack = 0, benign = 0;
  for (const auto& t : trace) {
    (packet::is_attack(t.pkt.label) ? attack : benign)++;
    // The cached view must decode exactly this packet's bytes.
    ASSERT_EQ(t.view.frame().data(), t.pkt.bytes().data());
    ASSERT_EQ(t.view.frame_size(), t.pkt.size());
  }
  EXPECT_GT(attack, 100u);
  EXPECT_GT(benign, 100u);
}

TEST(ParseOnce, FlowExportsIdentical) {
  const auto trace = record_trace();
  std::vector<std::uint8_t> fresh_bytes, cached_bytes;

  FlowMeter fresh;
  fresh.set_sink([&](const FlowRecord& r) { serialize(r, fresh_bytes); });
  for (const auto& t : trace) fresh.offer(t.pkt, t.dir);  // re-parses
  fresh.flush();

  FlowMeter cached;
  cached.set_sink([&](const FlowRecord& r) { serialize(r, cached_bytes); });
  for (const auto& t : trace) cached.offer(t);  // cached view
  cached.flush();

  ASSERT_FALSE(fresh_bytes.empty());
  EXPECT_EQ(cached_bytes, fresh_bytes);
}

TEST(ParseOnce, DatasetRowsIdentical) {
  const auto trace = record_trace();
  features::PacketDatasetOptions options;
  options.attack_sample_rate = 0.5;  // exercise the sampling RNG too
  options.seed = 99;

  features::PacketDatasetCollector fresh(options);
  for (const auto& t : trace) fresh.offer(t.pkt, t.dir);
  features::PacketDatasetCollector cached(options);
  for (const auto& t : trace) cached.offer(t.pkt, t.view, t.dir);

  const auto& a = fresh.dataset();
  const auto& b = cached.dataset();
  ASSERT_GT(a.n_rows(), 100u);
  ASSERT_EQ(b.n_rows(), a.n_rows());
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    ASSERT_EQ(b.label(i), a.label(i)) << "row " << i;
    const auto ra = a.row(i);
    const auto rb = b.row(i);
    for (std::size_t j = 0; j < ra.size(); ++j)
      ASSERT_EQ(rb[j], ra[j]) << "row " << i << " feature " << j;
  }
}

TEST(ParseOnce, FastLoopVerdictsIdentical) {
  // Train a small deployable model the same way the control tests do,
  // then deploy it twice and feed one loop re-parsed packets and the
  // other the cached views.
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 2024;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2500})
          .rate(2000)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(20)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.25;
  cfg.collector.seed = 4242;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(30));
  const auto dataset = bed.harvest_dataset();
  ASSERT_GT(dataset.n_rows(), 2000u);

  control::DevelopmentConfig dev;
  dev.teacher.n_trees = 10;
  dev.teacher.max_depth = 10;
  dev.teacher.seed = 7;
  dev.extraction.student_max_depth = 5;
  dev.extraction.synthetic_samples = 2000;
  dev.extraction.seed = 8;
  dev.seed = 9;
  control::DevelopmentLoop loop(dev);
  auto package = loop.run(dataset);
  ASSERT_TRUE(package.ok()) << package.error().message;

  auto fresh = control::FastLoop::deploy(package.value());
  auto cached = control::FastLoop::deploy(package.value());
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(cached.ok());

  const auto trace = record_trace(2025);
  for (const auto& t : trace) {
    if (t.dir != sim::Direction::kInbound) continue;
    const bool a = fresh.value()->inspect(t.pkt);          // re-parses
    const bool b = cached.value()->inspect(t.pkt, t.view);  // cached
    ASSERT_EQ(b, a);
  }
  const auto& sa = fresh.value()->stats();
  const auto& sb = cached.value()->stats();
  EXPECT_GT(sa.inspected, 1000u);
  EXPECT_EQ(sb.inspected, sa.inspected);
  EXPECT_EQ(sb.dropped, sa.dropped);
  EXPECT_EQ(sb.attack_dropped, sa.attack_dropped);
  EXPECT_EQ(sb.benign_dropped, sa.benign_dropped);
  EXPECT_EQ(sb.attack_passed, sa.attack_passed);
  EXPECT_EQ(sb.benign_passed, sa.benign_passed);
}

}  // namespace
}  // namespace campuslab::capture

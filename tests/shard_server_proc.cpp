// Standalone shard-server process for the kill-a-process chaos tests.
//
// Hosts one cluster node's shard set behind a ShardServer on an
// ephemeral port: shard id 0 is the node's primary store, id 1+owner
// its replica store for `owner` (the wire addressing convention the
// Cluster's ShardFactory dials). The bound port is published by
// atomically renaming a one-line port file into place, then the
// process idles until SIGTERM (clean teardown) or SIGKILL (the chaos
// battery's victim path — no flush, no goodbye, exactly like a crashed
// node).
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "campuslab/store/shard.h"
#include "campuslab/store/shard_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_term(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port-file PATH --nodes N --node I"
               " [--replication R] [--segment-flows F]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace campuslab;
  using namespace campuslab::store;

  std::string port_file;
  std::size_t nodes = 1;
  std::size_t node = 0;
  std::size_t replication = 2;
  std::size_t segment_flows = 250;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const char* val = argv[i + 1];
    if (key == "--port-file") {
      port_file = val;
    } else if (key == "--nodes") {
      nodes = std::strtoull(val, nullptr, 10);
    } else if (key == "--node") {
      node = std::strtoull(val, nullptr, 10);
    } else if (key == "--replication") {
      replication = std::strtoull(val, nullptr, 10);
    } else if (key == "--segment-flows") {
      segment_flows = std::strtoull(val, nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }
  if (port_file.empty() || nodes == 0 || node >= nodes)
    return usage(argv[0]);

  DataStoreConfig store_cfg;
  store_cfg.segment_flows = segment_flows;

  LocalShard primary(store_cfg);
  std::vector<std::unique_ptr<LocalShard>> replicas(nodes);
  ShardServer server;
  server.add_shard(0, primary);
  for (std::size_t owner = 0; owner < nodes; ++owner) {
    if (owner == node || replication < 2) continue;
    replicas[owner] = std::make_unique<LocalShard>(store_cfg);
    server.add_shard(static_cast<std::uint32_t>(1 + owner),
                     *replicas[owner]);
  }
  if (const Status st = server.start(); !st.ok()) {
    std::fprintf(stderr, "shard_server_proc: start failed: %s\n",
                 st.error().message.c_str());
    return 1;
  }

  // Publish the port atomically: readers either see nothing or a
  // complete line, never a torn write.
  const std::string tmp = port_file + ".tmp";
  if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
    std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
    std::fclose(f);
  } else {
    return 1;
  }
  if (std::rename(tmp.c_str(), port_file.c_str()) != 0) return 1;

  std::signal(SIGTERM, on_term);
  std::signal(SIGINT, on_term);
  while (g_stop == 0 && server.running()) ::pause();
  server.stop();
  return 0;
}

#else  // no sockets on this platform

int main() { return 0; }

#endif

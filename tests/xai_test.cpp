// Tests for campuslab::xai — extraction fidelity (and the
// extraction-beats-direct-CART claim), rule-list equivalence with the
// source tree (property test), and explanation/trust-report contents.
#include <gtest/gtest.h>

#include "campuslab/ml/forest.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/xai/collection_spec.h"
#include "campuslab/xai/explain.h"
#include "campuslab/xai/extract.h"
#include "campuslab/xai/rules.h"

namespace campuslab::xai {
namespace {

/// A nonlinear 2-class problem (concentric regions + an interaction) —
/// hard enough that a depth-limited direct CART is visibly worse than
/// the forest, leaving room for extraction to help.
ml::Dataset ring_dataset(std::size_t n, std::uint64_t seed) {
  ml::Dataset data({"x0", "x1", "x2"}, {"inner", "outer"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-2, 2);
    const double x1 = rng.uniform(-2, 2);
    const double x2 = rng.uniform(0, 1);
    const double r = x0 * x0 + x1 * x1;
    const bool outer = r > 1.5 || (x2 > 0.8 && r > 0.8);
    const double row[3] = {x0, x1, x2};
    data.add(row, outer ? 1 : 0);
  }
  return data;
}

class ExtractFixture : public ::testing::Test {
 protected:
  ExtractFixture() : data_(ring_dataset(4000, 71)) {
    Rng rng(72);
    auto [train, test] = data_.stratified_split(0.3, rng);
    train_ = std::make_unique<ml::Dataset>(std::move(train));
    test_ = std::make_unique<ml::Dataset>(std::move(test));
    ml::ForestConfig cfg;
    cfg.n_trees = 40;
    cfg.seed = 73;
    teacher_.emplace(cfg);
    teacher_->fit(*train_);
  }

  ml::Dataset data_;
  std::unique_ptr<ml::Dataset> train_;
  std::unique_ptr<ml::Dataset> test_;
  std::optional<ml::RandomForest> teacher_;
};

TEST_F(ExtractFixture, StudentIsFaithfulAndSmall) {
  ExtractConfig cfg;
  cfg.student_max_depth = 6;
  cfg.seed = 74;
  ModelExtractor extractor(cfg);
  const auto result = extractor.extract(*teacher_, *train_);

  EXPECT_GT(result.train_fidelity, 0.9);
  const double test_fidelity = fidelity(result.student, *teacher_, *test_);
  EXPECT_GT(test_fidelity, 0.85);
  // Orders of magnitude smaller than the ensemble.
  EXPECT_LT(result.student.node_count(), teacher_->total_nodes() / 20);
  EXPECT_LE(result.student.depth(), 6);
}

TEST_F(ExtractFixture, StudentAccuracyNearTeacher) {
  ExtractConfig cfg;
  cfg.student_max_depth = 7;
  cfg.seed = 75;
  const auto result = ModelExtractor(cfg).extract(*teacher_, *train_);
  const double teacher_acc = ml::evaluate(*teacher_, *test_).accuracy();
  const double student_acc =
      ml::evaluate(result.student, *test_).accuracy();
  EXPECT_GT(student_acc, teacher_acc - 0.08);
}

TEST_F(ExtractFixture, ExtractionBeatsDirectCartAtEqualDepth) {
  // The Bastani et al. claim: a student distilled from the teacher
  // (with synthetic augmentation) generalizes better than a tree of
  // the same depth trained directly on the labels.
  constexpr int kDepth = 4;
  ExtractConfig cfg;
  cfg.student_max_depth = kDepth;
  cfg.seed = 76;
  const auto distilled = ModelExtractor(cfg).extract(*teacher_, *train_);

  ml::TreeConfig tc;
  tc.max_depth = kDepth;
  ml::DecisionTree direct(tc);
  direct.fit(*train_);

  const double distilled_acc =
      ml::evaluate(distilled.student, *test_).accuracy();
  const double direct_acc = ml::evaluate(direct, *test_).accuracy();
  // Allow a tiny epsilon: the claim is "no worse, usually better".
  EXPECT_GE(distilled_acc, direct_acc - 0.01);
}

TEST_F(ExtractFixture, ZeroSyntheticStillWorks) {
  ExtractConfig cfg;
  cfg.synthetic_samples = 0;
  cfg.seed = 77;
  const auto result = ModelExtractor(cfg).extract(*teacher_, *train_);
  EXPECT_EQ(result.samples_used, train_->n_rows());
  EXPECT_GT(result.train_fidelity, 0.85);
}

TEST_F(ExtractFixture, DeterministicForSeed) {
  ExtractConfig cfg;
  cfg.seed = 78;
  const auto a = ModelExtractor(cfg).extract(*teacher_, *train_);
  const auto b = ModelExtractor(cfg).extract(*teacher_, *train_);
  EXPECT_EQ(a.student.serialize(), b.student.serialize());
}

// -------------------------------------------------------------- RuleList

TEST(RuleList, EquivalentToSourceTreeEverywhere) {
  auto data = ring_dataset(3000, 81);
  ml::TreeConfig tc;
  tc.max_depth = 6;
  ml::DecisionTree tree(tc);
  tree.fit(data);
  const auto rules = RuleList::from_tree(tree);

  Rng rng(82);
  for (int i = 0; i < 5000; ++i) {
    const double x[3] = {rng.uniform(-3, 3), rng.uniform(-3, 3),
                         rng.uniform(-1, 2)};
    EXPECT_EQ(rules.predict(x), tree.predict(x));
  }
}

TEST(RuleList, RuleCountEqualsLeafCount) {
  auto data = ring_dataset(2000, 83);
  ml::DecisionTree tree;
  tree.fit(data);
  const auto rules = RuleList::from_tree(tree);
  EXPECT_EQ(rules.rules().size(), tree.leaf_count());
}

TEST(RuleList, ConditionsMergedPerFeature) {
  // A deep path can test the same feature repeatedly; merged rules keep
  // at most one <= and one > condition per feature.
  auto data = ring_dataset(3000, 84);
  ml::TreeConfig tc;
  tc.max_depth = 10;
  tc.min_samples_leaf = 2;
  ml::DecisionTree tree(tc);
  tree.fit(data);
  const auto rules = RuleList::from_tree(tree);
  for (const auto& rule : rules.rules()) {
    std::set<std::pair<int, RuleCondition::Op>> seen;
    for (const auto& cond : rule.conditions) {
      const auto key = std::make_pair(cond.feature, cond.op);
      EXPECT_TRUE(seen.insert(key).second)
          << "duplicate bound for feature " << cond.feature;
    }
    // Max depth 10 over 3 features: merged rules have <= 6 conditions.
    EXPECT_LE(rule.conditions.size(), 6u);
  }
}

TEST(RuleList, OrderedBySupport) {
  auto data = ring_dataset(2000, 85);
  ml::DecisionTree tree;
  tree.fit(data);
  const auto rules = RuleList::from_tree(tree);
  for (std::size_t i = 1; i < rules.rules().size(); ++i)
    EXPECT_GE(rules.rules()[i - 1].support, rules.rules()[i].support);
}

TEST(RuleList, RendersReadableText) {
  auto data = ring_dataset(1000, 86);
  ml::DecisionTree tree;
  tree.fit(data);
  const auto text = RuleList::from_tree(tree).to_string(3);
  EXPECT_NE(text.find("if "), std::string::npos);
  EXPECT_NE(text.find(" then "), std::string::npos);
  EXPECT_NE(text.find("confidence"), std::string::npos);
  EXPECT_NE(text.find("x0"), std::string::npos);
}

// ------------------------------------------------------------ Explanation

TEST(Explanation, PathMatchesTreeTraversal) {
  auto data = ring_dataset(2000, 91);
  ml::TreeConfig tc;
  tc.max_depth = 5;
  ml::DecisionTree tree(tc);
  tree.fit(data);

  const double x[3] = {0.1, 0.1, 0.2};
  const auto exp = explain_decision(tree, x);
  EXPECT_EQ(exp.predicted_class, tree.predict(x));
  EXPECT_NEAR(exp.confidence, tree.confidence(x), 1e-12);
  EXPECT_GE(exp.steps.size(), 1u);
  EXPECT_LE(exp.steps.size(), 5u);
  for (const auto& step : exp.steps) {
    EXPECT_EQ(step.went_left, step.value <= step.threshold);
    EXPECT_FALSE(step.feature_name.empty());
  }
}

TEST(Explanation, ContributionsSumToLeafMinusRoot) {
  auto data = ring_dataset(2000, 92);
  ml::DecisionTree tree;
  tree.fit(data);
  const double x[3] = {1.8, -1.2, 0.5};
  const auto exp = explain_decision(tree, x);
  double total = 0.0;
  for (const auto& step : exp.steps) total += step.contribution;
  const auto root_prob =
      tree.nodes()[0]
          .class_probs[static_cast<std::size_t>(exp.predicted_class)];
  EXPECT_NEAR(root_prob + total, exp.confidence, 1e-9);
}

TEST(Explanation, RendersEvidenceText) {
  auto data = ring_dataset(1000, 93);
  ml::DecisionTree tree;
  tree.fit(data);
  const double x[3] = {0.0, 0.0, 0.0};
  const auto text = explain_decision(tree, x).to_string();
  EXPECT_NE(text.find("decision:"), std::string::npos);
  EXPECT_NE(text.find("evidence:"), std::string::npos);
  EXPECT_NE(text.find("moved P["), std::string::npos);
}

// --------------------------------------------------------- CollectionSpec

TEST(CollectionSpec, DerivesUsedFeaturesOnly) {
  auto data = ring_dataset(2000, 95);
  ml::TreeConfig tc;
  tc.max_depth = 4;
  ml::DecisionTree tree(tc);
  tree.fit(data);

  std::vector<bool> mask(3, false);
  mask[2] = true;  // x2 is "register-backed"
  const auto spec = derive_collection_spec(tree, mask);

  EXPECT_EQ(spec.features_total, 3u);
  EXPECT_GE(spec.features_needed, 1u);
  EXPECT_LE(spec.features_needed, 3u);
  EXPECT_EQ(spec.bits_per_packet,
            static_cast<int>(spec.features_needed) * 16);
  // Items sorted by usage, names resolved, register flag honored.
  for (std::size_t i = 1; i < spec.items.size(); ++i)
    EXPECT_GE(spec.items[i - 1].uses, spec.items[i].uses);
  for (const auto& item : spec.items) {
    EXPECT_FALSE(item.name.empty());
    EXPECT_EQ(item.needs_register_state, item.feature == 2);
  }
  const auto text = spec.to_string();
  EXPECT_NE(text.find("Minimal collection spec"), std::string::npos);
  EXPECT_NE(text.find("x0"), std::string::npos);
}

TEST(CollectionSpec, SingleLeafNeedsNothing) {
  ml::Dataset data({"x"}, {"only", "other"});
  const double row[1] = {1.0};
  for (int i = 0; i < 10; ++i) data.add(row, 0);
  ml::DecisionTree tree;
  tree.fit(data);
  const auto spec = derive_collection_spec(tree);
  EXPECT_EQ(spec.features_needed, 0u);
  EXPECT_EQ(spec.bits_per_packet, 0);
}

// ------------------------------------------------------------ TrustReport

TEST_F(ExtractFixture, TrustReportContents) {
  ExtractConfig cfg;
  cfg.seed = 94;
  const auto result = ModelExtractor(cfg).extract(*teacher_, *train_);
  const auto report =
      make_trust_report("ring detection", *teacher_, teacher_->total_nodes(),
                        result.student, *test_);
  EXPECT_GT(report.teacher_accuracy, 0.8);
  EXPECT_GT(report.student_accuracy, 0.7);
  EXPECT_GT(report.fidelity, 0.8);
  EXPECT_LT(report.student_nodes, report.teacher_nodes);
  const auto text = report.to_string();
  EXPECT_NE(text.find("Trust report: ring detection"), std::string::npos);
  EXPECT_NE(text.find("fidelity"), std::string::npos);
  EXPECT_NE(text.find("dominant rules"), std::string::npos);
  EXPECT_NE(text.find("sample decision walkthrough"), std::string::npos);
}

}  // namespace
}  // namespace campuslab::xai

// Tests for campuslab::testbed::ContinualLoop — continual learning on
// the live campus: initial training, window skipping on quiet periods,
// version history, and the headline property: under attack-profile
// drift a static deployment decays while the continual loop recovers.
#include <gtest/gtest.h>

#include "campuslab/testbed/continual.h"

namespace campuslab::testbed {
namespace {

using packet::TrafficLabel;

/// Two-phase drift scenario: a heavy large-packet flood early (the
/// training regime), then a much smaller-packet, lower-rate flood late
/// (the drifted regime).
TestbedConfig drift_scenario(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2400})
          .rate(1200)
          .starting_at(Timestamp::from_seconds(4))
          .lasting(Duration::seconds(14)));
  // Low and slow, few reflectors, payloads inside the benign DNS
  // envelope: a different animal.
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 300,
                                           .reflectors = 20})
          .rate(60)
          .starting_at(Timestamp::from_seconds(45))
          .lasting(Duration::seconds(35)));

  cfg.collector.labeling.binary_target =
      TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.5;
  cfg.collector.seed = seed + 5;
  return cfg;
}

ContinualConfig small_continual(std::uint64_t seed) {
  ContinualConfig cfg;
  cfg.development.teacher.n_trees = 12;
  cfg.development.teacher.seed = seed;
  cfg.development.extraction.student_max_depth = 5;
  cfg.development.extraction.synthetic_samples = 3000;
  cfg.development.extraction.seed = seed + 1;
  cfg.development.seed = seed + 2;
  cfg.retrain_interval = Duration::seconds(15);
  return cfg;
}

TEST(ContinualLoop, StartFailsWithoutAttackData) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = 41001;
  cfg.collector.labeling.binary_target =
      TrafficLabel::kDnsAmplification;
  Testbed bed(cfg);
  bed.run(Duration::seconds(5));  // benign only
  ContinualLoop loop(small_continual(41001), bed);
  const auto s = loop.start();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "data");
}

TEST(ContinualLoop, QuietWindowsAreSkippedNotFatal) {
  auto cfg = drift_scenario(41002);
  cfg.scenario.scenarios.pop_back();  // only phase 1
  Testbed bed(cfg);
  bed.run(Duration::seconds(20));  // training prefix with attack
  ContinualLoop loop(small_continual(41002), bed);
  ASSERT_TRUE(loop.start().ok());
  bed.run(Duration::seconds(40));  // quiet: ticks at 35s, 50s

  ASSERT_GE(loop.history().size(), 3u);  // initial + >=2 ticks
  EXPECT_TRUE(loop.history()[0].promoted);
  EXPECT_EQ(loop.history()[0].note, "initial");
  for (std::size_t i = 1; i < loop.history().size(); ++i) {
    EXPECT_FALSE(loop.history()[i].promoted);
    EXPECT_NE(loop.history()[i].note.find("skipped"), std::string::npos)
        << loop.history()[i].note;
  }
  // Still enforcing the initial model.
  EXPECT_EQ(loop.promotions(), 1);
  EXPECT_NE(loop.active_loop(), nullptr);
}

/// Fraction of the drifted (phase-2) attack delivered past the filter,
/// isolated by snapshotting the accounting just before phase 2.
double phase2_delivered_fraction(const sim::DeliveryAccounting& before,
                                 const sim::DeliveryAccounting& after) {
  const auto idx =
      static_cast<std::size_t>(TrafficLabel::kDnsAmplification);
  const auto delivered =
      after.delivered.frames[idx] - before.delivered.frames[idx];
  const auto filtered =
      after.filtered.frames[idx] - before.filtered.frames[idx];
  return static_cast<double>(delivered) /
         static_cast<double>(delivered + filtered + 1);
}

TEST(ContinualLoop, RecoversFromDriftWhereStaticDecays) {
  // Arm 1: static — train once on phase 1, never retrain.
  double static_phase2 = 0;
  {
    Testbed bed(drift_scenario(41003));
    bed.run(Duration::seconds(20));
    control::DevelopmentLoop dev(small_continual(41003).development);
    auto package = dev.run(bed.harvest_dataset());
    ASSERT_TRUE(package.ok()) << package.error().message;
    auto loop = control::FastLoop::deploy(package.value());
    ASSERT_TRUE(loop.ok());
    loop.value()->install(bed.network());
    bed.run(Duration::seconds(24));  // to t=44, just before phase 2
    const auto before = bed.network().accounting();
    bed.run(Duration::seconds(41));  // through phase 2
    static_phase2 =
        phase2_delivered_fraction(before, bed.network().accounting());
  }

  // Arm 2: continual — same scenario, retraining every 15 s.
  double continual_phase2 = 0;
  int promotions = 0;
  {
    Testbed bed(drift_scenario(41003));
    bed.run(Duration::seconds(20));
    ContinualLoop loop(small_continual(41003), bed);
    ASSERT_TRUE(loop.start().ok());
    bed.run(Duration::seconds(24));
    const auto before = bed.network().accounting();
    bed.run(Duration::seconds(41));
    continual_phase2 =
        phase2_delivered_fraction(before, bed.network().accounting());
    promotions = loop.promotions();
  }

  // The continual loop must have promoted at least one retrained model
  // and let through substantially less of the drifted attack.
  EXPECT_GE(promotions, 2);  // initial + at least one drift recovery
  EXPECT_LT(continual_phase2, static_phase2 * 0.7)
      << "static=" << static_phase2
      << " continual=" << continual_phase2;
  EXPECT_GT(static_phase2, 0.2);  // the static model really did decay
}

}  // namespace
}  // namespace campuslab::testbed

// SegmentFile round-trip property suite + the golden format fixture.
//
// The tiering claim the rest of the store builds on: encode → decode is
// the identity on segments. Randomized segments (empty, single-flow,
// max-varint timestamps, duplicate hosts, wide time spans) must come
// back with bit-identical StoredFlow sequences and identical index and
// zone-map answers; a store whose segments all spilled must answer
// queries and aggregations bit-identically to the same store fully in
// RAM, at several thread counts; and a failing disk must degrade
// gracefully (segments stay hot, retries counted in obs).
//
// The golden fixture (tests/data/golden_segment_v2.clseg) pins the
// on-disk bytes — magic, version, column layout. An intentional format
// change regenerates it with CAMPUSLAB_UPDATE_GOLDEN=1 and bumps
// kSegmentFileVersion; an accidental one fails here loudly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <vector>

#include "campuslab/obs/registry.h"
#include "campuslab/resilience/fault.h"
#include "campuslab/store/datastore.h"
#include "campuslab/store/query_engine.h"
#include "campuslab/store/segment_file.h"

namespace campuslab::store {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;
using packet::TrafficLabel;

// ------------------------------------------------------------ builders

FlowRecord flow_at(double start_s, Ipv4Address src, Ipv4Address dst,
                   std::uint16_t sport, std::uint16_t dport,
                   std::uint8_t proto = 6,
                   TrafficLabel label = TrafficLabel::kBenign,
                   std::uint64_t bytes = 1500) {
  FlowRecord f;
  f.tuple = packet::FiveTuple{src, dst, sport, dport, proto};
  f.first_ts = Timestamp::from_seconds(start_s);
  f.last_ts = Timestamp::from_seconds(start_s + 0.05);
  f.packets = 3;
  f.bytes = bytes;
  f.label_packets[static_cast<std::size_t>(label)] = 3;
  return f;
}

FlowRecord random_flow(std::mt19937_64& rng) {
  FlowRecord f;
  // Duplicate hosts on purpose: a handful of addresses shared by many
  // flows exercises the dictionary path.
  const auto host = [&] {
    return Ipv4Address(10, 2, static_cast<std::uint8_t>(rng() % 3),
                       static_cast<std::uint8_t>(rng() % 16));
  };
  f.tuple = packet::FiveTuple{
      host(), host(), static_cast<std::uint16_t>(rng() % 65536),
      static_cast<std::uint16_t>(rng() % 65536),
      static_cast<std::uint8_t>(rng() % 4 == 0 ? 17 : 6)};
  f.initial_direction =
      rng() & 1 ? sim::Direction::kOutbound : sim::Direction::kInbound;
  // Wide span: seconds to days apart within one segment.
  const auto base = static_cast<std::int64_t>(rng() % (86'400ull * 7));
  f.first_ts = Timestamp::from_seconds(static_cast<double>(base));
  f.last_ts = f.first_ts + Duration::nanos(static_cast<std::int64_t>(
                  rng() % 3'600'000'000'000ull));
  f.packets = rng() % 100'000;
  f.bytes = rng() % 10'000'000;
  f.payload_bytes = rng() % 1'000'000;
  f.fwd_packets = rng() % 50'000;
  f.rev_packets = rng() % 50'000;
  f.syn_count = static_cast<std::uint32_t>(rng() % 5);
  f.synack_count = static_cast<std::uint32_t>(rng() % 5);
  f.fin_count = static_cast<std::uint32_t>(rng() % 3);
  f.rst_count = static_cast<std::uint32_t>(rng() % 3);
  f.psh_count = static_cast<std::uint32_t>(rng() % 40);
  f.saw_dns = rng() % 5 == 0;
  if (rng() % 3 != 0)
    f.label_packets[rng() % packet::kTrafficLabelCount] = 1 + rng() % 1000;
  if (rng() % 4 == 0) f.scenario_id = 1 + rng() % 1000;
  return f;
}

// Mirror of DataStore::index_flow so hand-built segments carry the same
// inverted indexes a store-built one would.
void index_flow(Segment& seg, const StoredFlow& stored,
                std::uint32_t offset) {
  const auto& f = stored.flow;
  seg.by_host[f.tuple.src.value()].push_back(offset);
  if (f.tuple.dst != f.tuple.src)
    seg.by_host[f.tuple.dst.value()].push_back(offset);
  seg.by_port[f.tuple.src_port].push_back(offset);
  if (f.tuple.dst_port != f.tuple.src_port)
    seg.by_port[f.tuple.dst_port].push_back(offset);
  seg.by_label[static_cast<std::size_t>(f.majority_label())].push_back(
      offset);
}

std::shared_ptr<Segment> make_segment(const std::vector<FlowRecord>& flows,
                                      std::uint64_t first_id = 1) {
  auto seg = std::make_shared<Segment>(flows.size());
  std::uint64_t id = first_id;
  for (const auto& f : flows) {
    StoredFlow stored{id++, f};
    if (stored.flow.last_ts < stored.flow.first_ts)
      stored.flow.last_ts = stored.flow.first_ts;
    seg->min_ts = std::min(seg->min_ts, stored.flow.first_ts);
    seg->max_ts = std::max(seg->max_ts, stored.flow.last_ts);
    const auto offset = static_cast<std::uint32_t>(seg->flows.size());
    seg->flows.push_back(stored);
    index_flow(*seg, seg->flows.back(), offset);
  }
  seg->sealed = true;
  return seg;
}

// ---------------------------------------------------------- assertions

void expect_flow_equal(const StoredFlow& got, const StoredFlow& want) {
  EXPECT_EQ(got.id, want.id);
  const auto& g = got.flow;
  const auto& w = want.flow;
  EXPECT_EQ(g.tuple.src, w.tuple.src);
  EXPECT_EQ(g.tuple.dst, w.tuple.dst);
  EXPECT_EQ(g.tuple.src_port, w.tuple.src_port);
  EXPECT_EQ(g.tuple.dst_port, w.tuple.dst_port);
  EXPECT_EQ(g.tuple.proto, w.tuple.proto);
  EXPECT_EQ(g.initial_direction, w.initial_direction);
  EXPECT_EQ(g.first_ts, w.first_ts);
  EXPECT_EQ(g.last_ts, w.last_ts);
  EXPECT_EQ(g.packets, w.packets);
  EXPECT_EQ(g.bytes, w.bytes);
  EXPECT_EQ(g.payload_bytes, w.payload_bytes);
  EXPECT_EQ(g.fwd_packets, w.fwd_packets);
  EXPECT_EQ(g.rev_packets, w.rev_packets);
  EXPECT_EQ(g.syn_count, w.syn_count);
  EXPECT_EQ(g.synack_count, w.synack_count);
  EXPECT_EQ(g.fin_count, w.fin_count);
  EXPECT_EQ(g.rst_count, w.rst_count);
  EXPECT_EQ(g.psh_count, w.psh_count);
  EXPECT_EQ(g.saw_dns, w.saw_dns);
  EXPECT_EQ(g.label_packets, w.label_packets);
  EXPECT_EQ(g.scenario_id, w.scenario_id);
}

void expect_segment_equal(const Segment& got, const Segment& want) {
  ASSERT_EQ(got.flows.size(), want.flows.size());
  for (std::size_t i = 0; i < want.flows.size(); ++i)
    expect_flow_equal(got.flows[i], want.flows[i]);
  if (!want.flows.empty()) {
    EXPECT_EQ(got.min_ts, want.min_ts);
    EXPECT_EQ(got.max_ts, want.max_ts);
  }
  EXPECT_TRUE(got.sealed);
  // Index answers must be identical, entry for entry.
  ASSERT_EQ(got.by_host.size(), want.by_host.size());
  for (const auto& [key, offsets] : want.by_host) {
    const auto it = got.by_host.find(key);
    ASSERT_NE(it, got.by_host.end()) << "host key " << key;
    EXPECT_EQ(it->second, offsets);
  }
  ASSERT_EQ(got.by_port.size(), want.by_port.size());
  for (const auto& [key, offsets] : want.by_port) {
    const auto it = got.by_port.find(key);
    ASSERT_NE(it, got.by_port.end()) << "port key " << key;
    EXPECT_EQ(it->second, offsets);
  }
  for (std::size_t l = 0; l < want.by_label.size(); ++l)
    EXPECT_EQ(got.by_label[l], want.by_label[l]);
}

void expect_round_trip(const Segment& seg) {
  SegmentFileInfo info;
  const auto bytes = encode_segment(seg, &info);
  auto decoded = decode_segment(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().code << ": "
                            << decoded.error().message;
  expect_segment_equal(*decoded.value(), seg);

  // The zone map must answer without the payload, identically.
  auto zone = decode_zone_map(bytes);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone.value().flow_count, seg.flows.size());
  EXPECT_EQ(zone.value().flow_count, info.zone.flow_count);
  std::uint64_t packets = 0, total = 0;
  for (const auto& s : seg.flows) {
    packets += s.flow.packets;
    total += s.flow.bytes;
  }
  EXPECT_EQ(zone.value().packets, packets);
  EXPECT_EQ(zone.value().bytes, total);
  if (!seg.flows.empty()) {
    EXPECT_EQ(zone.value().min_ts, seg.min_ts);
    EXPECT_EQ(zone.value().max_ts, seg.max_ts);
    EXPECT_EQ(zone.value().id_lo, seg.flows.front().id);
    EXPECT_EQ(zone.value().id_hi, seg.flows.back().id);
  }
}

std::string fresh_dir(const std::string& name) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("campuslab_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// ----------------------------------------------------------- the suite

TEST(SegmentFile, RoundTripEmpty) {
  Segment seg(0);
  seg.sealed = true;
  expect_round_trip(seg);
}

TEST(SegmentFile, RoundTripSingleFlow) {
  const auto seg = make_segment(
      {flow_at(10, Ipv4Address(10, 2, 0, 1), Ipv4Address(192, 0, 2, 9),
               49152, 443, 6, TrafficLabel::kPortScan, 9001)},
      42);
  expect_round_trip(*seg);
}

TEST(SegmentFile, RoundTripRandomizedSegments) {
  std::mt19937_64 rng(0xF00D);
  for (int round = 0; round < 8; ++round) {
    std::vector<FlowRecord> flows;
    const std::size_t n = 1 + rng() % 400;
    flows.reserve(n);
    for (std::size_t i = 0; i < n; ++i) flows.push_back(random_flow(rng));
    expect_round_trip(*make_segment(flows, 1 + rng() % 1'000'000));
  }
}

// Timestamps at the varint/zigzag extremes: the encoder must be total
// and exact even when deltas wrap the full 64-bit range.
TEST(SegmentFile, RoundTripExtremeTimestamps) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  auto f1 = flow_at(0, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                    1, 2);
  f1.first_ts = Timestamp::from_nanos(kMin);
  f1.last_ts = Timestamp::from_nanos(kMax);  // widest possible duration
  auto f2 = f1;
  f2.first_ts = Timestamp::from_nanos(kMax);
  f2.last_ts = Timestamp::from_nanos(kMax);
  auto f3 = f1;
  f3.first_ts = Timestamp::from_nanos(0);
  f3.last_ts = Timestamp::from_nanos(kMax);
  f3.packets = std::numeric_limits<std::uint64_t>::max();
  f3.bytes = std::numeric_limits<std::uint64_t>::max();
  f3.syn_count = std::numeric_limits<std::uint32_t>::max();
  expect_round_trip(*make_segment({f1, f2, f3},
                                  std::numeric_limits<std::uint64_t>::max() -
                                      8));
}

TEST(SegmentFile, RoundTripThroughFile) {
  const auto dir = fresh_dir("segfile_io");
  std::mt19937_64 rng(7);
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 150; ++i) flows.push_back(random_flow(rng));
  const auto seg = make_segment(flows, 100);

  const std::string path = dir + "/seg.clseg";
  auto written = write_segment_file(*seg, path);
  ASSERT_TRUE(written.ok()) << written.error().message;
  EXPECT_EQ(written.value().file_bytes,
            std::filesystem::file_size(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  auto loaded = read_segment_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  expect_segment_equal(*loaded.value(), *seg);

  auto zone = read_zone_map(path);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone.value().flow_count, seg->flows.size());
  std::filesystem::remove_all(dir);
}

TEST(SegmentFile, ColdHandleSharesOneDecode) {
  const auto dir = fresh_dir("segfile_handle");
  const auto seg = make_segment(
      {flow_at(1, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 5, 6)});
  const std::string path = dir + "/seg.clseg";
  auto written = write_segment_file(*seg, path);
  ASSERT_TRUE(written.ok());

  ColdSegmentHandle handle(path, written.value().zone,
                           written.value().file_bytes);
  auto a = handle.load();
  auto b = handle.load();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().get(), b.value().get());  // cached, one decode
  const Segment* first = a.value().get();
  a = Error::make("x", "drop");  // release both references
  b = Error::make("x", "drop");
  auto c = handle.load();  // cache expired → a fresh decode
  ASSERT_TRUE(c.ok());
  expect_segment_equal(*c.value(), *seg);
  (void)first;
  std::filesystem::remove_all(dir);
}

// Acceptance criterion: an all-spilled store answers queries and
// aggregations bit-identically to the same store fully in RAM, at
// multiple thread counts.
TEST(SegmentFile, SpilledStoreMatchesHotStoreBitIdentical) {
  const auto dir = fresh_dir("segfile_lossless");
  DataStoreConfig hot_cfg;
  hot_cfg.segment_flows = 64;
  DataStoreConfig cold_cfg = hot_cfg;
  cold_cfg.spill_directory = dir;

  DataStore hot(hot_cfg);
  DataStore cold(cold_cfg);
  std::mt19937_64 rng(0xBEEF);
  for (int i = 0; i < 1500; ++i) {
    const auto f = random_flow(rng);
    hot.ingest(f);
    cold.ingest(f);
  }
  // Everything sealed goes to disk (budget 0 = spill at seal already
  // did most of it; this catches any sealed tail).
  cold.spill();
  const auto catalog = cold.catalog();
  EXPECT_GT(catalog.cold_segments, 20u);
  EXPECT_EQ(hot.catalog().total_bytes, catalog.total_bytes);
  EXPECT_EQ(hot.catalog().total_packets, catalog.total_packets);

  const Ipv4Address host(10, 2, 1, 3);
  const std::vector<FlowQuery> queries = {
      FlowQuery{},
      FlowQuery{}.about_host(host),
      FlowQuery{}.on_port(443),
      FlowQuery{}.with_proto(17),
      FlowQuery{}.between(Timestamp::from_seconds(3600),
                          Timestamp::from_seconds(7200)),
      FlowQuery{}.about_host(host).top(13),
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    ScanPool pool(threads);
    for (const auto& q : queries) {
      const auto want = hot.query(q, pool);
      const auto got = cold.query(q, pool);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i)
        expect_flow_equal(got[i], want[i]);
      EXPECT_EQ(got.stats().cold_load_failures, 0u);

      const auto agg_want = hot.aggregate(q, GroupBy::kHost, 10, pool);
      const auto agg_got = cold.aggregate(q, GroupBy::kHost, 10, pool);
      ASSERT_EQ(agg_got.rows.size(), agg_want.rows.size());
      EXPECT_EQ(agg_got.matched_flows, agg_want.matched_flows);
      for (std::size_t i = 0; i < agg_want.rows.size(); ++i) {
        EXPECT_EQ(agg_got.rows[i].key, agg_want.rows[i].key);
        EXPECT_EQ(agg_got.rows[i].bytes, agg_want.rows[i].bytes);
        EXPECT_EQ(agg_got.rows[i].flows, agg_want.rows[i].flows);
      }
    }
  }

  // Cursors stream the same rows from cold storage.
  auto hot_cur = hot.open_cursor(FlowQuery{}.on_port(443));
  auto cold_cur = cold.open_cursor(FlowQuery{}.on_port(443));
  while (hot_cur.next()) {
    ASSERT_TRUE(cold_cur.next());
    expect_flow_equal(cold_cur.current(), hot_cur.current());
  }
  EXPECT_FALSE(cold_cur.next());
  std::filesystem::remove_all(dir);
}

// Zone maps keep retention and narrow-window queries I/O-free: cold
// files outside the window are pruned without being read.
TEST(SegmentFile, ZoneMapPrunesColdFilesWithoutIo) {
  const auto dir = fresh_dir("segfile_prune");
  DataStoreConfig cfg;
  cfg.segment_flows = 50;
  cfg.spill_directory = dir;
  DataStore store(cfg);
  // Time-ordered ingest: each segment covers a disjoint ~50 s span.
  for (int i = 0; i < 1000; ++i)
    store.ingest(flow_at(i, Ipv4Address(10, 2, 0, 1),
                         Ipv4Address(10, 2, 0, 2),
                         static_cast<std::uint16_t>(1024 + i), 443));
  store.spill();

  {
    // Scoped: the result pins every cold handle in its snapshot, which
    // keeps the spill files alive; release it before checking cleanup.
    const auto narrow = store.query(FlowQuery{}.between(
        Timestamp::from_seconds(500), Timestamp::from_seconds(520)));
    EXPECT_EQ(narrow.size(), 21u);
    EXPECT_GE(narrow.stats().cold_pruned, 17u);  // ~19 of 20 files skipped
    EXPECT_LE(narrow.stats().cold_loaded, 3u);
  }

  // Retention over cold segments: no I/O, correct counts, files gone.
  const auto evicted =
      store.enforce_retention(Timestamp::from_seconds(1000 + 7 * 86'400));
  EXPECT_EQ(evicted, 1000u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

// Acceptance criterion: a failing disk degrades gracefully — the
// segment stays hot and queryable, the retries are counted in obs, and
// recovery resumes spilling.
TEST(SegmentFile, FailedSpillKeepsSegmentHot) {
  const auto dir = fresh_dir("segfile_faults");
  DataStoreConfig cfg;
  cfg.segment_flows = 10;
  cfg.spill_directory = dir;
  cfg.spill_retry.max_attempts = 3;
  cfg.spill_retry.initial_backoff = Duration::micros(1);
  cfg.spill_retry.max_backoff = Duration::micros(4);
  DataStore store(cfg);

  const auto failures_before =
      obs::Registry::global().counter("store.spill_failures").value();
  {
    resilience::FaultScope scope(resilience::FaultPlan{
        1, {{"store.spill", resilience::FaultKind::kFail, 1}}});
    for (int i = 0; i < 30; ++i)
      store.ingest(flow_at(i, Ipv4Address(10, 2, 0, 1),
                           Ipv4Address(10, 2, 0, 2), 4000, 443));
    // Three sealed segments, every spill attempt failed: all stay hot.
    EXPECT_EQ(scope.injector().fires("store.spill"),
              3u * cfg.spill_retry.max_attempts);
    EXPECT_EQ(store.catalog().cold_segments, 0u);
    EXPECT_TRUE(std::filesystem::is_empty(dir));
    EXPECT_EQ(store.query(FlowQuery{}).size(), 30u);
  }
  EXPECT_GE(
      obs::Registry::global().counter("store.spill_failures").value(),
      failures_before + 3);

  // Disk back: the stayed-hot segments spill on the next opportunity.
  EXPECT_EQ(store.spill(), 3u);
  EXPECT_EQ(store.catalog().cold_segments, 3u);
  EXPECT_EQ(store.query(FlowQuery{}).size(), 30u);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ golden fixture

std::filesystem::path golden_path() {
  return std::filesystem::path(CAMPUSLAB_TEST_DATA_DIR) /
         "golden_segment_v2.clseg";
}

// A small, fully deterministic segment: fixed flows, fixed ids.
std::shared_ptr<Segment> golden_segment() {
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 12; ++i) {
    auto f = flow_at(100 + 10 * i, Ipv4Address(10, 2, 0, 1 + i % 3),
                     Ipv4Address(192, 0, 2, 1 + i % 2),
                     static_cast<std::uint16_t>(40'000 + i),
                     i % 4 == 0 ? 53 : 443, i % 3 == 0 ? 17 : 6,
                     i % 5 == 0 ? TrafficLabel::kPortScan
                                : TrafficLabel::kBenign,
                     1000 + 17 * i);
    f.saw_dns = i % 4 == 0;
    f.payload_bytes = 900 + i;
    f.fwd_packets = 2;
    f.rev_packets = 1;
    f.psh_count = static_cast<std::uint32_t>(i);
    // Pin the v2 scenario_id column with a mix of background (0) and
    // attack-scenario flows.
    f.scenario_id = i % 5 == 0 ? 3u : 0u;
    flows.push_back(f);
  }
  return make_segment(flows, 1000);
}

TEST(SegmentFile, GoldenFixturePinsFormat) {
  const auto bytes = encode_segment(*golden_segment());

  // Layout invariants, independent of the fixture file.
  ASSERT_GE(bytes.size(), kSegmentFileHeaderBytes);
  const std::uint8_t magic[8] = {'C', 'L', 'S', 'E', 'G', '0', '1', '\n'};
  EXPECT_TRUE(std::equal(magic, magic + 8, bytes.begin()));
  EXPECT_EQ(bytes[8], 0u);  // version u32 big-endian == kSegmentFileVersion
  EXPECT_EQ(bytes[9], 0u);
  EXPECT_EQ(bytes[10], 0u);
  EXPECT_EQ(bytes[11], kSegmentFileVersion);

  const auto path = golden_path();
  if (std::getenv("CAMPUSLAB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden fixture regenerated at " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing " << path
                  << " — regenerate with CAMPUSLAB_UPDATE_GOLDEN=1";
  std::vector<std::uint8_t> golden{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  ASSERT_EQ(bytes.size(), golden.size())
      << "on-disk segment format changed size; if intentional, bump "
         "kSegmentFileVersion and regenerate with CAMPUSLAB_UPDATE_GOLDEN=1";
  EXPECT_EQ(bytes, golden)
      << "on-disk segment format changed; if intentional, bump "
         "kSegmentFileVersion and regenerate with CAMPUSLAB_UPDATE_GOLDEN=1";

  // And the committed fixture still decodes to the exact segment.
  auto decoded = decode_segment(golden);
  ASSERT_TRUE(decoded.ok());
  expect_segment_equal(*decoded.value(), *golden_segment());
}

}  // namespace
}  // namespace campuslab::store

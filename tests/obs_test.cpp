// campuslab::obs — metric primitives, registry semantics, stage
// tracing, and the end-to-end claim that one Registry::snapshot()
// exposes every pipeline stage.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "campuslab/capture/sharded_engine.h"
#include "campuslab/control/development_loop.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/features/flow_merge.h"
#include "campuslab/features/packet_dataset.h"
#include "campuslab/features/packet_features.h"
#include "campuslab/obs/metrics.h"
#include "campuslab/obs/registry.h"
#include "campuslab/obs/stage_timer.h"
#include "campuslab/packet/builder.h"
#include "campuslab/store/datastore.h"
#include "campuslab/store/sharded_ingest.h"

namespace campuslab {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricKind;
using obs::Registry;

TEST(ObsCounter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, SetAddRead) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket b >= 1 covers [2^(b-1), 2^b); bucket 0 is exact zero.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(ObsHistogram, SnapshotCountsSumAndMean) {
  Histogram h;
  h.observe(0);
  h.observe(100);
  h.observe(200);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 300u);
  EXPECT_DOUBLE_EQ(snap.mean(), 100.0);
  EXPECT_EQ(snap.buckets[0], 1u);  // the zero
  EXPECT_EQ(snap.buckets[Histogram::bucket_of(100)], 1u);
  EXPECT_EQ(snap.buckets[Histogram::bucket_of(200)], 1u);
}

TEST(ObsHistogram, QuantilesLandInTheRightBucket) {
  Histogram h;
  // 900 fast events (~64ns bucket) and 100 slow ones (~8192ns bucket).
  for (int i = 0; i < 900; ++i) h.observe(64);
  for (int i = 0; i < 100; ++i) h.observe(8192);
  const auto snap = h.snapshot();
  // p50 must resolve inside the fast bucket [64, 128); p999 inside the
  // slow bucket [8192, 16384).
  const double p50 = snap.quantile(0.50);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 128.0);
  const double p999 = snap.quantile(0.999);
  EXPECT_GE(p999, 8192.0);
  EXPECT_LE(p999, 16384.0);
  // Quantiles are monotone in q.
  EXPECT_LE(snap.quantile(0.1), snap.quantile(0.9));
}

TEST(ObsHistogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 0.0);
}

TEST(ObsRegistry, GetOrCreateReturnsSameObject) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(b.value(), 5u);
}

TEST(ObsRegistry, LabelsDistinguishMetrics) {
  Registry reg;
  Counter& s0 = reg.counter("drops", "shard=0");
  Counter& s1 = reg.counter("drops", "shard=1");
  EXPECT_NE(&s0, &s1);
  s0.add(3);
  s1.add(7);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("drops", "shard=0", -1), 3.0);
  EXPECT_DOUBLE_EQ(snap.value_or("drops", "shard=1", -1), 7.0);
}

TEST(ObsRegistry, KindsAreSeparateNamespaces) {
  Registry reg;
  reg.counter("m").add(2);
  reg.gauge("m").set(9);
  const auto snap = reg.snapshot();
  // Both exist, both named "m", different kinds.
  std::size_t counters = 0, gauges = 0;
  for (const auto& m : snap.metrics) {
    if (m.name != "m") continue;
    if (m.kind == MetricKind::kCounter) ++counters;
    if (m.kind == MetricKind::kGauge) ++gauges;
  }
  EXPECT_EQ(counters, 1u);
  EXPECT_EQ(gauges, 1u);
}

TEST(ObsRegistry, SnapshotIsSortedAndFindable) {
  Registry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.counter("alpha", "shard=1").add(3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "alpha");
  EXPECT_EQ(snap.metrics[0].labels, "");
  EXPECT_EQ(snap.metrics[1].labels, "shard=1");
  EXPECT_EQ(snap.metrics[2].name, "zeta");
  ASSERT_NE(snap.find("alpha", "shard=1"), nullptr);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(ObsRegistry, CallbackGaugesSampleLiveAndUnregister) {
  Registry reg;
  double level = 12.0;
  {
    auto handle =
        reg.register_callback("depth", "", [&level] { return level; });
    EXPECT_DOUBLE_EQ(reg.snapshot().value_or("depth", "", -1), 12.0);
    level = 30.0;  // live: next snapshot sees the new value
    EXPECT_DOUBLE_EQ(reg.snapshot().value_or("depth", "", -1), 30.0);
  }
  // Handle destroyed -> callback gone -> no dangling sample.
  EXPECT_EQ(reg.snapshot().find("depth"), nullptr);
}

TEST(ObsRegistry, DuplicateCallbacksSum) {
  // Two instances of one component exporting the same (name, labels)
  // aggregate, mirroring counter get-or-create semantics.
  Registry reg;
  auto h1 = reg.register_callback("pending", "", [] { return 4.0; });
  auto h2 = reg.register_callback("pending", "", [] { return 6.0; });
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("pending", "", -1), 10.0);
}

TEST(ObsRegistry, CallbackHandleMoveTransfersOwnership) {
  Registry reg;
  auto h1 = reg.register_callback("g", "", [] { return 1.0; });
  Registry::CallbackHandle h2 = std::move(h1);
  EXPECT_NE(reg.snapshot().find("g"), nullptr);
  {
    Registry::CallbackHandle h3;
    h3 = std::move(h2);
    EXPECT_NE(reg.snapshot().find("g"), nullptr);
  }
  EXPECT_EQ(reg.snapshot().find("g"), nullptr);
}

TEST(ObsRegistry, TextExportFormatsCountersAndHistograms) {
  Registry reg;
  reg.counter("pkt.count", "shard=0").add(42);
  reg.histogram("lat_ns").observe(100);
  const auto text = reg.snapshot().to_text();
  EXPECT_NE(text.find("pkt.count{shard=0} 42"), std::string::npos);
  EXPECT_NE(text.find("lat_ns count=1"), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

TEST(ObsRegistry, JsonExportIsWellFormedEnough) {
  Registry reg;
  reg.counter("c").add(1);
  reg.gauge("g", "shard=0").set(2);
  reg.histogram("h").observe(7);
  const auto json = reg.snapshot().to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":\"shard=0\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity).
  int depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsCounterConcurrency, RelaxedAddsNeverLoseIncrements) {
  Registry reg;
  Counter& c = reg.counter("concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.increment();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsStageTimer, RecordsWhenSamplingEveryEvent) {
  obs::set_trace_sample_period(1);
  obs::set_tracing_enabled(true);
  Histogram h;
  {
    obs::StageTimer t(h);
    EXPECT_TRUE(t.armed());
  }
  EXPECT_EQ(h.snapshot().count, 1u);
  obs::set_trace_sample_period(256);
}

TEST(ObsStageTimer, DisabledTimersRecordNothing) {
  obs::set_trace_sample_period(1);
  obs::set_tracing_enabled(false);
  Histogram h;
  {
    obs::StageTimer t(h);
    EXPECT_FALSE(t.armed());
  }
  EXPECT_EQ(h.snapshot().count, 0u);
  obs::set_tracing_enabled(true);
  obs::set_trace_sample_period(256);
}

TEST(ObsStageTimer, CancelDiscardsTheMeasurement) {
  obs::set_trace_sample_period(1);
  Histogram h;
  {
    obs::StageTimer t(h);
    t.cancel();
  }
  EXPECT_EQ(h.snapshot().count, 0u);
  obs::set_trace_sample_period(256);
}

TEST(ObsStageTimer, SamplePeriodRoundsToPowerOfTwo) {
  obs::set_trace_sample_period(48);
  EXPECT_EQ(obs::trace_sample_period(), 64u);
  obs::set_trace_sample_period(0);
  EXPECT_EQ(obs::trace_sample_period(), 1u);
  obs::set_trace_sample_period(256);
}

// ---------------------------------------------------------------------------
// Integration: one snapshot of the global registry exposes the whole
// pipeline (the ISSUE's >= 6 stage acceptance bar).

using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;
using packet::PacketBuilder;

Endpoint host(std::uint32_t id, std::uint16_t port) {
  return Endpoint{MacAddress::from_id(id), Ipv4Address(10, 0, 0, id & 0xFF),
                  port};
}

/// A deterministic deployable package: a stump over quantized
/// kFrameBytes (identity quantizer), so FastLoop verdicts depend only
/// on frame size — no training randomness, no float fragility.
control::DeploymentPackage make_frame_size_package(double split_bytes) {
  ml::Dataset data(features::packet_feature_names(), {"benign", "attack"});
  std::vector<double> row(features::kPacketFeatureCount, 0.0);
  for (int i = 0; i < 20; ++i) {
    row[static_cast<std::size_t>(features::PacketFeature::kFrameBytes)] =
        split_bytes - 200.0;
    data.add(row, 0);
    row[static_cast<std::size_t>(features::PacketFeature::kFrameBytes)] =
        split_bytes + 200.0;
    data.add(row, 1);
  }
  ml::TreeConfig cfg;
  cfg.max_depth = 2;
  control::DeploymentPackage package;
  package.student = ml::DecisionTree(cfg);
  package.student.fit(data);
  package.task = control::AutomationTask::dns_amplification_drop();
  std::vector<std::pair<double, double>> ranges(
      features::kPacketFeatureCount,
      {0.0, static_cast<double>(dataplane::Quantizer::kMaxQ) + 1.0});
  package.quantizer = dataplane::Quantizer::from_ranges(std::move(ranges));
  package.strategy = "tree_walk";
  return package;
}

TEST(ObsPipeline, SnapshotExposesAtLeastSixStages) {
  obs::set_tracing_enabled(true);
  obs::set_trace_sample_period(1);  // every hop records

  constexpr std::size_t kShards = 2;
  capture::ShardedCaptureEngine engine(
      {.shards = kShards, .ring_capacity = 1 << 10});
  features::ShardedFlowCollector collector(kShards);
  store::ShardedFlowIngester ingester(kShards);
  features::PacketDatasetCollector datasets;
  engine.add_sink_factory([&](std::size_t shard) {
    collector.meter(shard).set_sink(
        [&ingester, shard](const capture::FlowRecord& r) {
          ingester.ingest(shard, r);
        });
    return [&collector, &datasets, shard](const capture::TaggedPacket& t) {
      collector.meter(shard).offer(t);
      datasets.offer(t.pkt, t.view, t.dir);
    };
  });

  auto package = make_frame_size_package(700.0);
  auto loop = control::FastLoop::deploy(package);
  ASSERT_TRUE(loop.ok());

  for (int i = 0; i < 400; ++i) {
    auto pkt = PacketBuilder(Timestamp::from_nanos(i * 1000000))
                   .udp(host(1 + (i % 8), 40000), host(100, 53))
                   .payload_size(i % 2 == 0 ? 120 : 1200)
                   .build();
    loop.value()->inspect(pkt);
    engine.offer(std::move(pkt), sim::Direction::kInbound);
  }
  engine.drain();
  for (std::size_t s = 0; s < kShards; ++s) collector.meter(s).flush();
  store::DataStore store;
  ingester.merge_into(store);

  const auto snap = obs::Registry::global().snapshot();

  // Stage histograms: every hop of the ISSUE's list shows up with
  // samples in one snapshot.
  const char* stages[] = {"tap_decode",     "ring_enqueue", "ring_dequeue",
                          "sink_dispatch",  "flow_update",  "dataset_append",
                          "store_ingest",   "fastloop_inspect",
                          "switch_apply"};
  std::size_t populated = 0;
  for (const char* stage : stages) {
    const auto* m =
        snap.find("pipeline_stage_ns", std::string("stage=") + stage);
    ASSERT_NE(m, nullptr) << stage;
    EXPECT_EQ(m->kind, MetricKind::kHistogram) << stage;
    if (m->histogram.count > 0) ++populated;
  }
  EXPECT_GE(populated, 6u);

  // Counters and gauges from across the layers.
  EXPECT_GE(snap.value_or("capture.shard.offered", "shard=0", 0) +
                snap.value_or("capture.shard.offered", "shard=1", 0),
            400.0);
  EXPECT_GT(snap.value_or("flow.flows_created", "", 0), 0.0);
  EXPECT_GT(snap.value_or("dataset.packets_seen", "", 0), 0.0);
  EXPECT_GT(snap.value_or("store.flows_ingested", "", 0), 0.0);
  EXPECT_GE(snap.value_or("fastloop.inspected", "", 0), 400.0);
  EXPECT_GE(snap.value_or("switch.processed", "", 0), 400.0);
  EXPECT_NE(snap.find("bufferpool.outstanding"), nullptr);
  EXPECT_NE(snap.find("capture.ring_occupancy", "shard=0"), nullptr);
  EXPECT_NE(snap.find("flow.table_size", "shard=0"), nullptr);
  EXPECT_NE(snap.find("store.ingest_pending"), nullptr);

  // Exports render.
  EXPECT_FALSE(snap.to_text().empty());
  EXPECT_FALSE(snap.to_json().empty());

  obs::set_trace_sample_period(256);
}

}  // namespace
}  // namespace campuslab

// Golden-trace regression: a committed synthetic packet trace
// (tests/data/golden_trace_frames.txt) is replayed through the full
// capture pipeline — sharded engine, flow meters, dataset collector,
// FastLoop verdicts — and every observable output is compared
// line-by-line against a committed golden file. Any change to decode,
// flow accounting, feature extraction, merge order, or the dataplane
// compiler that shifts an output shows up as a diff here, not as a
// silent drift in EXPERIMENTS numbers.
//
// Regeneration (after an INTENDED behavior change):
//   CAMPUSLAB_UPDATE_GOLDEN=1 ./build/tests/golden_trace_test
// rewrites both files; commit the diff with the change that caused it.
//
// The fixture file — not the generator below — is the source of truth:
// frames are replayed from the committed bytes, so builder changes
// cannot silently change the input.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campuslab/capture/sharded_engine.h"
#include "campuslab/control/development_loop.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/features/flow_merge.h"
#include "campuslab/features/packet_dataset.h"
#include "campuslab/features/packet_features.h"
#include "campuslab/packet/builder.h"
#include "campuslab/packet/dns.h"
#include "campuslab/store/datastore.h"
#include "campuslab/store/sharded_ingest.h"

namespace campuslab {
namespace {

using packet::DnsType;
using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;
using packet::PacketBuilder;
using packet::TcpFlags;
using packet::TrafficLabel;

constexpr const char* kFramesPath =
    CAMPUSLAB_TEST_DATA_DIR "/golden_trace_frames.txt";
constexpr const char* kGoldenPath =
    CAMPUSLAB_TEST_DATA_DIR "/golden_trace_expected.txt";

/// One replayable frame: the committed representation.
struct TraceFrame {
  std::int64_t ts_ns = 0;
  sim::Direction dir = sim::Direction::kInbound;
  TrafficLabel label = TrafficLabel::kBenign;
  std::vector<std::uint8_t> bytes;
};

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const auto b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> hex_decode(const std::string& hex) {
  auto nibble = [](char c) -> std::uint8_t {
    return static_cast<std::uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                            nibble(hex[i + 1])));
  return out;
}

// ---------------------------------------------------------------------------
// Fixture generation (CAMPUSLAB_UPDATE_GOLDEN mode only).

Endpoint host(std::uint32_t id, std::uint8_t octet, std::uint16_t port) {
  return Endpoint{MacAddress::from_id(id), Ipv4Address(10, 0, 0, octet),
                  port};
}
Endpoint external(std::uint32_t id, std::uint8_t octet, std::uint16_t port) {
  return Endpoint{MacAddress::from_id(0x1000 + id),
                  Ipv4Address(198, 51, 100, octet), port};
}

/// Deterministic campus day-in-the-life: benign DNS lookups and TCP
/// sessions, an idle gap long enough to evict them, then a DNS
/// amplification burst against one victim, then recovery traffic.
std::vector<TraceFrame> generate_trace() {
  std::vector<TraceFrame> trace;
  auto add = [&trace](packet::Packet pkt, sim::Direction dir) {
    TraceFrame f;
    f.ts_ns = pkt.ts.nanos();
    f.dir = dir;
    f.label = pkt.label;
    f.bytes = pkt.copy_bytes();
    trace.push_back(std::move(f));
  };
  std::int64_t t = 1'000'000'000;  // 1s
  const auto resolver = external(1, 1, 53);

  // Phase 1: 30 benign DNS query/response pairs from 6 campus clients.
  for (int i = 0; i < 30; ++i) {
    const auto client =
        host(2 + (i % 6), static_cast<std::uint8_t>(2 + (i % 6)),
             static_cast<std::uint16_t>(40000 + i));
    const auto query = packet::make_dns_query(
        static_cast<std::uint16_t>(0x2000 + i),
        "svc" + std::to_string(i % 7) + ".example.edu", DnsType::kA);
    add(packet::build_dns_packet(Timestamp::from_nanos(t), client, resolver,
                                 query),
        sim::Direction::kOutbound);
    t += 3'000'000;  // 3ms RTT
    const auto resp = packet::make_dns_response(query, 1, 120 + (i % 5) * 30);
    add(packet::build_dns_packet(Timestamp::from_nanos(t), resolver, client,
                                 resp),
        sim::Direction::kInbound);
    t += 97'000'000;  // next lookup 100ms later
  }

  // Phase 2: 5 benign TCP sessions (handshake, data both ways, close).
  for (int s = 0; s < 5; ++s) {
    const auto client = host(20 + s, static_cast<std::uint8_t>(20 + s),
                             static_cast<std::uint16_t>(50000 + s));
    const auto server = external(40 + s, 40, 443);
    auto seg = [&](const Endpoint& src, const Endpoint& dst,
                   std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                   std::size_t payload, sim::Direction dir) {
      add(PacketBuilder(Timestamp::from_nanos(t))
              .tcp(src, dst, flags, seq, ack)
              .payload_size(payload)
              .build(),
          dir);
      t += 10'000'000;  // 10ms per segment
    };
    seg(client, server, TcpFlags::kSyn, 100, 0, 0,
        sim::Direction::kOutbound);
    seg(server, client, TcpFlags::kSyn | TcpFlags::kAck, 300, 101, 0,
        sim::Direction::kInbound);
    seg(client, server, TcpFlags::kAck, 101, 301, 0,
        sim::Direction::kOutbound);
    seg(client, server, TcpFlags::kPsh | TcpFlags::kAck, 101, 301,
        200 + static_cast<std::size_t>(s) * 40, sim::Direction::kOutbound);
    seg(server, client, TcpFlags::kPsh | TcpFlags::kAck, 301, 341,
        400 + static_cast<std::size_t>(s) * 100, sim::Direction::kInbound);
    seg(client, server, TcpFlags::kFin | TcpFlags::kAck, 341, 701, 0,
        sim::Direction::kOutbound);
    seg(server, client, TcpFlags::kAck, 701, 342, 0,
        sim::Direction::kInbound);
  }

  // Phase 3: idle gap past the 15s idle timeout, so phase 1-2 flows
  // evict mid-trace (exercises sweep + export ordering).
  t += 20'000'000'000;

  // Phase 4: DNS amplification burst — 60 large spoofed responses from
  // 4 "open resolvers" onto one victim, 5ms apart.
  const auto victim = host(5, 5, 33000);
  for (int i = 0; i < 60; ++i) {
    const auto amp = external(60 + (i % 4),
                              static_cast<std::uint8_t>(60 + (i % 4)), 53);
    const auto query = packet::make_dns_query(
        static_cast<std::uint16_t>(0x7000 + i), "big.example.org",
        DnsType::kAny);
    const auto resp = packet::make_dns_response(query, 8, 1100 + (i % 3) * 50);
    add(packet::build_dns_packet(Timestamp::from_nanos(t), amp, victim, resp,
                                 TrafficLabel::kDnsAmplification),
        sim::Direction::kInbound);
    t += 5'000'000;
  }

  // Phase 5: 10 benign lookups after the attack subsides.
  for (int i = 0; i < 10; ++i) {
    const auto client = host(2 + (i % 3), static_cast<std::uint8_t>(2 + (i % 3)),
                             static_cast<std::uint16_t>(41000 + i));
    const auto query = packet::make_dns_query(
        static_cast<std::uint16_t>(0x9000 + i), "recovery.example.edu",
        DnsType::kA);
    add(packet::build_dns_packet(Timestamp::from_nanos(t), client, resolver,
                                 query),
        sim::Direction::kOutbound);
    t += 2'000'000;
    const auto resp = packet::make_dns_response(query, 1, 150);
    add(packet::build_dns_packet(Timestamp::from_nanos(t), resolver, client,
                                 resp),
        sim::Direction::kInbound);
    t += 98'000'000;
  }
  return trace;
}

void write_fixture(const std::vector<TraceFrame>& trace) {
  std::ofstream out(kFramesPath);
  ASSERT_TRUE(out) << kFramesPath;
  out << "# ts_ns dir label hexbytes — replayed by golden_trace_test\n";
  for (const auto& f : trace)
    out << f.ts_ns << ' ' << static_cast<int>(f.dir) << ' '
        << static_cast<int>(f.label) << ' ' << hex_encode(f.bytes) << '\n';
}

std::vector<TraceFrame> read_fixture() {
  std::ifstream in(kFramesPath);
  std::vector<TraceFrame> trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::int64_t ts_ns = 0;
    int dir = 0, label = 0;
    std::string hex;
    fields >> ts_ns >> dir >> label >> hex;
    TraceFrame f;
    f.ts_ns = ts_ns;
    f.dir = static_cast<sim::Direction>(dir);
    f.label = static_cast<TrafficLabel>(label);
    f.bytes = hex_decode(hex);
    trace.push_back(std::move(f));
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Pipeline replay and output serialization.

std::string fmt_double(double v) {
  // %.9g survives sub-ulp libm drift while still pinning every feature
  // the tree could split on.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Same handcrafted deterministic package as obs_test: a stump over
/// identity-quantized kFrameBytes splitting at 700 — attack-sized DNS
/// responses land above it with confidence 1.0.
control::DeploymentPackage make_frame_size_package(double split_bytes) {
  ml::Dataset data(features::packet_feature_names(), {"benign", "attack"});
  std::vector<double> row(features::kPacketFeatureCount, 0.0);
  for (int i = 0; i < 20; ++i) {
    row[static_cast<std::size_t>(features::PacketFeature::kFrameBytes)] =
        split_bytes - 200.0;
    data.add(row, 0);
    row[static_cast<std::size_t>(features::PacketFeature::kFrameBytes)] =
        split_bytes + 200.0;
    data.add(row, 1);
  }
  ml::TreeConfig cfg;
  cfg.max_depth = 2;
  control::DeploymentPackage package;
  package.student = ml::DecisionTree(cfg);
  package.student.fit(data);
  package.task = control::AutomationTask::dns_amplification_drop();
  std::vector<std::pair<double, double>> ranges(
      features::kPacketFeatureCount,
      {0.0, static_cast<double>(dataplane::Quantizer::kMaxQ) + 1.0});
  package.quantizer = dataplane::Quantizer::from_ranges(std::move(ranges));
  package.strategy = "tree_walk";
  return package;
}

/// Replay the trace through the pipeline; every observable output
/// becomes one line.
std::vector<std::string> run_pipeline(const std::vector<TraceFrame>& trace) {
  constexpr std::size_t kShards = 2;
  capture::ShardedCaptureEngine engine(
      {.shards = kShards, .ring_capacity = 1 << 9});
  features::ShardedFlowCollector collector(kShards);
  features::PacketDatasetCollector datasets;
  engine.add_sink_factory([&](std::size_t shard) {
    return [&collector, &datasets, shard](const capture::TaggedPacket& t) {
      collector.meter(shard).offer(t.pkt, t.view, t.dir);
      datasets.offer(t.pkt, t.view, t.dir);
    };
  });

  auto package = make_frame_size_package(700.0);
  auto loop = control::FastLoop::deploy(package);
  EXPECT_TRUE(loop.ok());

  std::string verdicts;
  for (const auto& f : trace) {
    packet::Packet pkt;
    pkt.ts = Timestamp::from_nanos(f.ts_ns);
    pkt.label = f.label;
    pkt.assign(f.bytes);
    // FastLoop scores inbound frames only — mirror the ingress scope.
    if (f.dir == sim::Direction::kInbound)
      verdicts.push_back(loop.value()->inspect(pkt) ? '1' : '0');
    engine.offer(std::move(pkt), f.dir);
    engine.drain();  // sim mode: consume in arrival order
  }
  engine.drain();

  std::vector<std::string> lines;
  lines.push_back("trace frames=" + std::to_string(trace.size()));

  // FastLoop verdicts: one char per inbound frame, 64 per line.
  const auto& stats = loop.value()->stats();
  lines.push_back("verdicts inspected=" + std::to_string(stats.inspected) +
                  " dropped=" + std::to_string(stats.dropped) +
                  " attack_dropped=" + std::to_string(stats.attack_dropped) +
                  " benign_dropped=" + std::to_string(stats.benign_dropped));
  for (std::size_t i = 0; i < verdicts.size(); i += 64)
    lines.push_back("verdict " + verdicts.substr(i, 64));

  // Flow exports in canonical merged order, field by field.
  const auto flows = features::merge_flow_exports({collector.merged_export()});
  lines.push_back("flows " + std::to_string(flows.size()));
  for (const auto& r : flows) {
    std::ostringstream s;
    s << "flow " << r.tuple.to_string()
      << " dir=" << static_cast<int>(r.initial_direction)
      << " first=" << r.first_ts.nanos() << " last=" << r.last_ts.nanos()
      << " pkts=" << r.packets << " bytes=" << r.bytes
      << " payload=" << r.payload_bytes << " fwd=" << r.fwd_packets
      << " rev=" << r.rev_packets << " syn=" << r.syn_count
      << " synack=" << r.synack_count << " fin=" << r.fin_count
      << " rst=" << r.rst_count << " psh=" << r.psh_count
      << " dns=" << (r.saw_dns ? 1 : 0) << " label="
      << packet::to_string(r.majority_label());
    lines.push_back(s.str());
  }

  // Dataset rows: every inbound IPv4 frame's stateful feature vector.
  const auto& data = datasets.dataset();
  lines.push_back("rows " + std::to_string(data.n_rows()));
  for (std::size_t i = 0; i < data.n_rows(); ++i) {
    std::string s = "row " + std::to_string(data.label(i));
    for (const double v : data.row(i)) {
      s.push_back(' ');
      s += fmt_double(v);
    }
    lines.push_back(std::move(s));
  }
  return lines;
}

TEST(GoldenTrace, PipelineOutputsMatchCommittedGolden) {
  if (std::getenv("CAMPUSLAB_UPDATE_GOLDEN") != nullptr) {
    write_fixture(generate_trace());
    const auto lines = run_pipeline(read_fixture());
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out) << kGoldenPath;
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "regenerated " << kFramesPath << " and " << kGoldenPath;
  }

  const auto trace = read_fixture();
  ASSERT_GT(trace.size(), 100u)
      << "fixture missing or unreadable: " << kFramesPath;
  const auto actual = run_pipeline(trace);

  std::ifstream golden(kGoldenPath);
  ASSERT_TRUE(golden) << "golden missing: " << kGoldenPath;
  std::vector<std::string> expected;
  std::string line;
  while (std::getline(golden, line)) expected.push_back(line);

  ASSERT_EQ(actual.size(), expected.size())
      << "output line count drifted — if intended, regenerate with "
         "CAMPUSLAB_UPDATE_GOLDEN=1";
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(actual[i], expected[i]) << "golden mismatch at line " << i + 1;
}

TEST(GoldenTrace, ReplayIsDeterministicAcrossRuns) {
  // The pipeline itself must be a pure function of the trace: two
  // fresh replays in one process (different registry/metric state,
  // different heap layout) produce identical output.
  const auto trace = read_fixture();
  ASSERT_GT(trace.size(), 100u);
  const auto first = run_pipeline(trace);
  const auto second = run_pipeline(trace);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i], second[i]) << "nondeterminism at line " << i + 1;
}

TEST(GoldenTrace, FixtureFramesDecode) {
  // Every committed frame must still decode to an IPv4 packet with a
  // 5-tuple — guards against fixture corruption (bad hex, truncation).
  const auto trace = read_fixture();
  ASSERT_GT(trace.size(), 100u);
  std::int64_t prev_ts = -1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const packet::PacketView view{
        std::span<const std::uint8_t>(trace[i].bytes)};
    EXPECT_TRUE(view.valid()) << "frame " << i;
    EXPECT_TRUE(view.five_tuple().has_value()) << "frame " << i;
    EXPECT_GE(trace[i].ts_ns, prev_ts) << "timestamps regress at " << i;
    prev_ts = trace[i].ts_ns;
  }
}

}  // namespace
}  // namespace campuslab

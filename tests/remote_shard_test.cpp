// Socket-backed StoreShard suite: a RemoteShard talking CLRP01 over
// loopback to a ShardServer must be observationally identical to the
// LocalShard it fronts — same rows, same aggregates, same catalog —
// and the PR 7 cluster bit-identity battery must hold with every
// shard message crossing a real TCP connection at N in {1, 2, 4}.
//
// The failure-path half: chunked pulls resume across server
// idle-closes (transparent reconnect), a refused connection surfaces
// immediately as "connect_refused" and flips the cluster node dead, a
// slow client holding half a frame is reaped, an oversized frame earns
// a farewell error and a close, and a malformed-but-framed body gets
// an error reply on a connection that survives.
//
// RemoteShardConcurrency.* run under TSAN in CI (parallel callers
// serializing on one socket against a concurrent writer).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "campuslab/resilience/fault.h"
#include "campuslab/resilience/health.h"
#include "campuslab/store/cluster.h"
#include "campuslab/store/query_engine.h"
#include "campuslab/store/remote_shard.h"
#include "campuslab/store/shard_server.h"
#include "campuslab/util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace campuslab::store {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;
using packet::TrafficLabel;

FlowRecord random_flow(Rng& rng) {
  FlowRecord f;
  const Ipv4Address src(
      static_cast<std::uint32_t>(0x0A010000 + rng.below(64)));
  const Ipv4Address dst(
      static_cast<std::uint32_t>(0x97650000 + rng.below(256)));
  static constexpr std::uint16_t kPorts[] = {53, 80, 443, 22, 25, 8080};
  f.tuple = packet::FiveTuple{
      src, dst, static_cast<std::uint16_t>(1024 + rng.below(60000)),
      kPorts[rng.below(6)],
      static_cast<std::uint8_t>(rng.chance(0.7) ? 6 : 17)};
  f.first_ts = Timestamp::from_seconds(rng.uniform(0, 600));
  f.last_ts = f.first_ts + Duration::from_seconds(rng.uniform(0.001, 30));
  f.packets = 1 + rng.below(1000);
  f.bytes = f.packets * (64 + rng.below(1400));
  const auto label =
      rng.chance(0.9) ? TrafficLabel::kBenign
                      : static_cast<TrafficLabel>(1 + rng.below(4));
  f.label_packets[static_cast<std::size_t>(label)] = f.packets;
  return f;
}

std::vector<FlowRecord> canonical_flows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) flows.push_back(random_flow(rng));
  std::stable_sort(flows.begin(), flows.end(), capture::flow_export_before);
  return flows;
}

bool same_flow(const FlowRecord& a, const FlowRecord& b) {
  return a.tuple.src == b.tuple.src && a.tuple.dst == b.tuple.dst &&
         a.tuple.src_port == b.tuple.src_port &&
         a.tuple.dst_port == b.tuple.dst_port &&
         a.tuple.proto == b.tuple.proto && a.first_ts == b.first_ts &&
         a.last_ts == b.last_ts && a.packets == b.packets &&
         a.bytes == b.bytes &&
         a.majority_label() == b.majority_label();
}

ShardIngestBatch batch_of(const std::vector<FlowRecord>& flows) {
  ShardIngestBatch batch;
  for (const auto& f : flows) batch.rows.push_back(StoredFlow{0, f});
  return batch;
}

/// One served node: a primary LocalShard behind a ShardServer on an
/// ephemeral loopback port.
struct ServedShard {
  LocalShard local;
  ShardServer server;

  explicit ServedShard(DataStoreConfig cfg = {}, ShardServerConfig scfg = {})
      : local(std::move(cfg)), server(std::move(scfg)) {
    server.add_shard(0, local);
    const Status st = server.start();
    EXPECT_TRUE(st.ok()) << st.error().message;
  }

  RemoteShardConfig client_config() const {
    RemoteShardConfig cfg;
    cfg.port = server.port();
    return cfg;
  }
};

// ------------------------------------------------- loopback identity

TEST(RemoteShard, MirrorsLocalShardBitForBit) {
  DataStoreConfig store_cfg;
  store_cfg.segment_flows = 100;
  ServedShard served(store_cfg);
  LocalShard reference(store_cfg);

  const auto flows = canonical_flows(1200, 41);
  RemoteShard remote(served.client_config());
  ASSERT_TRUE(remote.ping().ok());

  const auto remote_ack = remote.ingest(batch_of(flows));
  const auto local_ack = reference.ingest(batch_of(flows));
  ASSERT_TRUE(remote_ack.ok()) << remote_ack.error().message;
  ASSERT_TRUE(local_ack.ok());
  EXPECT_EQ(remote_ack.value().applied, local_ack.value().applied);

  LogEvent ev;
  ev.ts = Timestamp::from_seconds(42);
  ev.source = "firewall";
  ev.severity = 2;
  ev.subject = Ipv4Address(10, 1, 0, 9);
  ev.message = "deny";
  ASSERT_TRUE(remote.ingest_log(ev).ok());
  ASSERT_TRUE(reference.ingest_log(ev).ok());

  // Every query shape: rows bit-identical to the in-process shard.
  std::vector<FlowQuery> queries;
  queries.push_back(FlowQuery{});
  queries.push_back(FlowQuery{}.about_host(
      Ipv4Address(static_cast<std::uint32_t>(0x0A010007))));
  queries.push_back(FlowQuery{}.on_port(443));
  queries.push_back(FlowQuery{}.with_label(TrafficLabel::kBenign));
  queries.push_back(FlowQuery{}.between(Timestamp::from_seconds(100),
                                        Timestamp::from_seconds(200)));
  queries.push_back(FlowQuery{}.on_port(80).top(57));
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    SCOPED_TRACE("query " + std::to_string(qi));
    ShardQueryPlan plan;
    plan.query = queries[qi];
    const auto over_wire = remote.query(plan);
    const auto in_process = reference.query(plan);
    ASSERT_TRUE(over_wire.ok()) << over_wire.error().message;
    ASSERT_TRUE(in_process.ok());
    ASSERT_EQ(over_wire.value().rows.size(), in_process.value().rows.size());
    for (std::size_t i = 0; i < over_wire.value().rows.size(); ++i) {
      ASSERT_EQ(over_wire.value().rows[i].id,
                in_process.value().rows[i].id);
      ASSERT_TRUE(same_flow(over_wire.value().rows[i].flow,
                            in_process.value().rows[i].flow));
    }
    EXPECT_EQ(over_wire.value().exhausted, in_process.value().exhausted);
    EXPECT_EQ(over_wire.value().stats.index, in_process.value().stats.index);
  }

  for (const GroupBy by : {GroupBy::kHost, GroupBy::kPort, GroupBy::kLabel}) {
    const auto over_wire = remote.aggregate(FlowQuery{}, by, 10);
    const auto in_process = reference.aggregate(FlowQuery{}, by, 10);
    ASSERT_TRUE(over_wire.ok()) << over_wire.error().message;
    ASSERT_TRUE(in_process.ok());
    EXPECT_EQ(over_wire.value().matched_flows,
              in_process.value().matched_flows);
    ASSERT_EQ(over_wire.value().rows.size(), in_process.value().rows.size());
    for (std::size_t i = 0; i < over_wire.value().rows.size(); ++i) {
      EXPECT_EQ(over_wire.value().rows[i].key,
                in_process.value().rows[i].key);
      EXPECT_EQ(over_wire.value().rows[i].bytes,
                in_process.value().rows[i].bytes);
    }
  }

  LogQuery lq;
  lq.from_source("firewall");
  const auto remote_logs = remote.query_logs(lq);
  const auto local_logs = reference.query_logs(lq);
  ASSERT_TRUE(remote_logs.ok()) << remote_logs.error().message;
  ASSERT_TRUE(local_logs.ok());
  ASSERT_EQ(remote_logs.value().size(), local_logs.value().size());

  const auto remote_catalog = remote.catalog();
  const auto local_catalog = reference.catalog();
  ASSERT_TRUE(remote_catalog.ok()) << remote_catalog.error().message;
  ASSERT_TRUE(local_catalog.ok());
  EXPECT_EQ(remote_catalog.value().total_flows,
            local_catalog.value().total_flows);
  EXPECT_EQ(remote_catalog.value().total_bytes,
            local_catalog.value().total_bytes);
  EXPECT_EQ(remote_catalog.value().total_log_events,
            local_catalog.value().total_log_events);
  EXPECT_EQ(remote_catalog.value().flows_per_label,
            local_catalog.value().flows_per_label);

  const auto remote_count = remote.flow_count();
  const auto local_count = reference.flow_count();
  ASSERT_TRUE(remote_count.ok());
  ASSERT_TRUE(local_count.ok());
  EXPECT_EQ(remote_count.value(), local_count.value());
  EXPECT_GE(served.server.frames_served(), queries.size());
}

TEST(RemoteShard, ChunkedPullsResumeAcrossIdleCloseReconnects) {
  DataStoreConfig store_cfg;
  store_cfg.segment_flows = 100;
  ShardServerConfig server_cfg;
  server_cfg.idle_timeout = Duration::millis(120);
  ServedShard served(store_cfg, server_cfg);

  const auto flows = canonical_flows(400, 43);
  RemoteShard remote(served.client_config());
  ASSERT_TRUE(remote.ingest(batch_of(flows)).ok());
  const auto full = served.local.store().query(FlowQuery{}.on_port(443));

  // Stream in small chunks, stalling past the idle timeout every few
  // pulls so the server reaps the connection mid-stream. The resume
  // token (after_id) plus transparent reconnect must hand back the
  // exact full sequence.
  std::vector<StoredFlow> streamed;
  ShardQueryPlan plan;
  plan.query.on_port(443);
  plan.max_rows = 23;
  int pulls = 0;
  while (true) {
    if (++pulls % 3 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    auto reply = remote.query(plan);
    ASSERT_TRUE(reply.ok()) << reply.error().message;
    for (auto& row : reply.value().rows) streamed.push_back(std::move(row));
    if (reply.value().exhausted) break;
    ASSERT_FALSE(reply.value().rows.empty()) << "no progress";
    plan.after_id = streamed.back().id;
    ASSERT_LT(pulls, 1000);
  }
  ASSERT_EQ(streamed.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(streamed[i].id, full[i].id);
    EXPECT_TRUE(same_flow(streamed[i].flow, full[i].flow));
  }
  EXPECT_GE(remote.reconnects(), 1u)
      << "the idle reaper should have forced at least one reconnect";
}

// ------------------------------------------------------ failure paths

TEST(RemoteShard, ConnectRefusedSurfacesImmediately) {
  // Bind-then-stop guarantees a port nobody listens on.
  std::uint16_t dead_port = 0;
  {
    ServedShard served;
    dead_port = served.server.port();
    served.server.stop();
  }
  RemoteShardConfig cfg;
  cfg.port = dead_port;
  RemoteShard remote(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = remote.flow_count();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "connect_refused");
  // Fail-fast: a refused loopback connect is instant, not a deadline
  // burn.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            400);
  EXPECT_FALSE(remote.connected());
}

TEST(RemoteShard, OversizedRequestEarnsFarewellAndClose) {
  ShardServerConfig server_cfg;
  server_cfg.max_body = 2048;  // tiny server-side bound
  ServedShard served({}, server_cfg);

  RemoteShard remote(served.client_config());
  ASSERT_TRUE(remote.ping().ok());

  // A batch whose encoded body clearly exceeds the server's bound.
  Rng rng(44);
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 200; ++i) flows.push_back(random_flow(rng));
  const auto result = remote.ingest(batch_of(flows));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "wire_oversize");

  // The server rejected and closed that connection...
  for (int i = 0; i < 100 && served.server.connections_rejected() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(served.server.connections_rejected(), 1u);
  // ...and the client recovers on a fresh one.
  EXPECT_TRUE(remote.ping().ok());
  EXPECT_GE(remote.reconnects(), 1u);
}

#if defined(__unix__) || defined(__APPLE__)
/// Minimal raw client for crafting hostile byte streams.
struct RawClient {
  int fd = -1;

  explicit RawClient(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~RawClient() {
    if (fd >= 0) ::close(fd);
  }

  void send_bytes(std::span<const std::uint8_t> data) const {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Read until EOF or `want` bytes; returns what arrived.
  std::vector<std::uint8_t> read_up_to(std::size_t want) const {
    std::vector<std::uint8_t> got;
    std::uint8_t buf[4096];
    while (got.size() < want) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      got.insert(got.end(), buf, buf + n);
    }
    return got;
  }
};

TEST(RemoteShard, SlowClientHoldingHalfAFrameIsReaped) {
  ShardServerConfig server_cfg;
  server_cfg.idle_timeout = Duration::millis(120);
  ServedShard served({}, server_cfg);

  RawClient slow(served.server.port());
  ASSERT_GE(slow.fd, 0);
  // Half a valid frame: a correct header promising a body that never
  // arrives.
  const auto frame =
      wire::encode_frame(wire::MsgType::kFlowCount, 0, 1,
                         std::vector<std::uint8_t>(64, 0));
  slow.send_bytes(std::span<const std::uint8_t>(frame).subspan(
      0, wire::kHeaderSize + 10));

  // The reaper must close on us (EOF) rather than hold the half-frame
  // buffer forever.
  const auto got = slow.read_up_to(1);
  EXPECT_TRUE(got.empty()) << "server should close without replying";
  EXPECT_GE(served.server.connections_rejected(), 1u);
}

TEST(RemoteShard, MalformedBodySurvivesTheConnection) {
  ServedShard served;
  RawClient raw(served.server.port());
  ASSERT_GE(raw.fd, 0);

  // Valid framing, garbage body: error reply, connection stays up.
  const std::vector<std::uint8_t> garbage{0xDE, 0xAD, 0xBE, 0xEF, 0xFF};
  raw.send_bytes(wire::encode_frame(wire::MsgType::kQuery, 0, 7, garbage));
  auto reply_bytes = raw.read_up_to(wire::kHeaderSize);
  ASSERT_GE(reply_bytes.size(), wire::kHeaderSize);
  auto header = wire::parse_frame_header(reply_bytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().type, wire::MsgType::kError);
  EXPECT_EQ(header.value().request_id, 7u);

  // Drain the error body, then prove the same connection still serves.
  (void)raw.read_up_to(header.value().body_len -
                       (reply_bytes.size() - wire::kHeaderSize));
  raw.send_bytes(wire::encode_frame(wire::MsgType::kPing, 0, 8, {}));
  auto pong = raw.read_up_to(wire::kHeaderSize);
  ASSERT_GE(pong.size(), wire::kHeaderSize);
  auto pong_header = wire::parse_frame_header(pong);
  ASSERT_TRUE(pong_header.ok());
  EXPECT_EQ(pong_header.value().type, wire::MsgType::kPong);
  EXPECT_EQ(pong_header.value().request_id, 8u);
}
#endif  // raw-socket tests

TEST(RemoteShard, SocketFaultSitesInjectTransportFailures) {
  ServedShard served;

  {
    resilience::FaultPlan plan;
    plan.seed = 1;
    resilience::FaultSpec spec;
    spec.site = "rpc.connect";
    spec.kind = resilience::FaultKind::kFail;
    spec.every_n = 1;
    plan.faults.push_back(spec);
    resilience::FaultScope scope(std::move(plan));
    RemoteShard remote(served.client_config());
    const auto result = remote.ping();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, "connect_refused");
  }

  {
    RemoteShard remote(served.client_config());
    ASSERT_TRUE(remote.ping().ok());  // warm connection, outside scope
    resilience::FaultPlan plan;
    plan.seed = 2;
    resilience::FaultSpec spec;
    spec.site = "rpc.recv";
    spec.kind = resilience::FaultKind::kFail;
    spec.every_n = 1;
    plan.faults.push_back(spec);
    resilience::FaultScope scope(std::move(plan));
    const auto result = remote.flow_count();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, "rpc_io");
  }
}

// ------------------------------------------- socket-backed clusters

/// N servers, each hosting its node's primary (shard id 0) and replica
/// (shard id 1+owner) LocalShards; the cluster's ShardFactory returns
/// RemoteShards dialed at them. SIGKILLing a server process (the chaos
/// binary) or stop()ping it here takes the node's whole shard set
/// down, exactly like kill_node.
struct SocketClusterHarness {
  struct NodeHost {
    std::unique_ptr<LocalShard> primary;
    std::vector<std::unique_ptr<LocalShard>> replicas;
    std::unique_ptr<ShardServer> server;
  };
  std::vector<NodeHost> hosts;

  SocketClusterHarness(std::size_t nodes, const DataStoreConfig& store_cfg,
                       std::size_t replication = 2) {
    hosts.resize(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      NodeHost& host = hosts[i];
      host.primary = std::make_unique<LocalShard>(store_cfg);
      host.server = std::make_unique<ShardServer>();
      host.server->add_shard(0, *host.primary);
      host.replicas.resize(nodes);
      for (std::size_t owner = 0; owner < nodes; ++owner) {
        if (owner == i || replication < 2) continue;
        host.replicas[owner] = std::make_unique<LocalShard>(store_cfg);
        host.server->add_shard(static_cast<std::uint32_t>(1 + owner),
                               *host.replicas[owner]);
      }
      const Status st = host.server->start();
      EXPECT_TRUE(st.ok()) << st.error().message;
    }
  }

  ShardFactory factory() {
    return [this](NodeId via, NodeId owner,
                  DataStoreConfig) -> std::unique_ptr<StoreShard> {
      RemoteShardConfig cfg;
      cfg.port = hosts[via].server->port();
      cfg.shard = owner == via ? 0u : 1u + owner;
      return std::make_unique<RemoteShard>(cfg);
    };
  }
};

void expect_cluster_matches_single(const DataStore& single,
                                   const Cluster& cluster) {
  const auto expected = single.query(FlowQuery{});
  const auto rows = cluster.query(FlowQuery{});
  ASSERT_EQ(rows.size(), expected.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].id, expected[i].id) << "row " << i;
    ASSERT_TRUE(same_flow(rows[i].flow, expected[i].flow)) << "row " << i;
  }

  FlowQuery by_port;
  by_port.on_port(443);
  const auto filtered_single = single.query(by_port);
  const auto filtered_cluster = cluster.query(by_port);
  ASSERT_EQ(filtered_cluster.size(), filtered_single.size());
  for (std::size_t i = 0; i < filtered_cluster.size(); ++i)
    ASSERT_EQ(filtered_cluster[i].id, filtered_single[i].id);

  for (const GroupBy by : {GroupBy::kHost, GroupBy::kPort, GroupBy::kLabel}) {
    const auto sa = single.aggregate(FlowQuery{}, by, 10);
    const auto ca = cluster.aggregate(FlowQuery{}, by, 10);
    ASSERT_EQ(sa.rows.size(), ca.rows.size());
    ASSERT_EQ(sa.matched_flows, ca.matched_flows);
    for (std::size_t i = 0; i < sa.rows.size(); ++i) {
      ASSERT_EQ(sa.rows[i].key, ca.rows[i].key);
      ASSERT_EQ(sa.rows[i].bytes, ca.rows[i].bytes);
    }
  }

  // Cursor sequences step identically over the wire.
  FlowQuery cq;
  cq.top(123);
  auto single_result = single.query(cq);
  auto cursor = cluster.open_cursor(cq);
  std::size_t i = 0;
  while (cursor.next()) {
    ASSERT_LT(i, single_result.size());
    ASSERT_EQ(cursor.current().id, single_result[i].id);
    ++i;
  }
  ASSERT_EQ(i, single_result.size());

  const CatalogInfo sc = single.catalog();
  const CatalogInfo cc = cluster.catalog();
  EXPECT_EQ(sc.total_flows, cc.total_flows);
  EXPECT_EQ(sc.total_bytes, cc.total_bytes);
  EXPECT_EQ(sc.flows_per_label, cc.flows_per_label);
  EXPECT_EQ(single.size(), cluster.size());
}

TEST(SocketCluster, BitIdenticalToSingleNodeAcrossNodeCounts) {
  const auto flows = canonical_flows(2000, 51);
  DataStoreConfig store_cfg;
  store_cfg.segment_flows = 250;
  for (const std::size_t nodes : {1u, 2u, 4u}) {
    SCOPED_TRACE("nodes=" + std::to_string(nodes));
    DataStore single(store_cfg);
    for (const auto& f : flows) single.ingest(f);

    SocketClusterHarness harness(nodes, store_cfg);
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.node_store.segment_flows = 250;
    cfg.shard_factory = harness.factory();
    Cluster cluster(cfg);

    const auto report = cluster.ingest(flows);
    ASSERT_EQ(report.acked, flows.size());
    ASSERT_EQ(report.lost, 0u);
    expect_cluster_matches_single(single, cluster);
  }
}

TEST(SocketCluster, ServerDeathFailsOverToReplicasBitIdentically) {
  const auto flows = canonical_flows(2000, 52);
  DataStoreConfig store_cfg;
  store_cfg.segment_flows = 250;
  DataStore single(store_cfg);
  for (const auto& f : flows) single.ingest(f);

  SocketClusterHarness harness(4, store_cfg);
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.node_store.segment_flows = 250;
  cfg.shard_factory = harness.factory();
  Cluster cluster(cfg);

  const auto report = cluster.ingest(flows);
  ASSERT_EQ(report.acked, flows.size());
  ASSERT_EQ(report.fully_replicated, flows.size());

  // Stop one node's server: every shard it hosted vanishes at once —
  // the socket equivalent of SIGKILL. No kill_node() call: the cluster
  // must *discover* the death from "connect_refused" and flip scopes.
  const NodeId victim = 2;
  harness.hosts[victim].server->stop();

  const auto rows = cluster.query(FlowQuery{});
  const auto expected = single.query(FlowQuery{});
  ASSERT_EQ(rows.size(), expected.size())
      << "zero lost acked flows with the victim's server down";
  for (std::size_t i = 0; i < rows.size(); ++i)
    ASSERT_EQ(rows[i].id, expected[i].id) << "row " << i;
  EXPECT_GE(rows.stats().replica_scopes, 1u);

  // The refused connection marked the node dead — feed_health and the
  // gauges see a dead node, not a healthy cluster with slow queries.
  EXPECT_FALSE(cluster.alive(victim));
  EXPECT_EQ(cluster.live_nodes(), 3u);
  resilience::HealthMonitor monitor;
  (void)cluster.feed_health(monitor);

  // And it stays bit-identical on the aggregate path too.
  const auto sa = single.aggregate(FlowQuery{}, GroupBy::kHost, 10);
  const auto ca = cluster.aggregate(FlowQuery{}, GroupBy::kHost, 10);
  ASSERT_EQ(sa.rows.size(), ca.rows.size());
  for (std::size_t i = 0; i < sa.rows.size(); ++i)
    EXPECT_EQ(sa.rows[i].bytes, ca.rows[i].bytes);
}

TEST(SocketCluster, RefusedConnectFailsFastNotPerMessage) {
  // Satellite regression: with a generous retry budget, a dead remote
  // must cost ONE refused connect, not (messages x retries x backoff).
  DataStoreConfig store_cfg;
  store_cfg.segment_flows = 100;
  SocketClusterHarness harness(2, store_cfg);
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node_store.segment_flows = 100;
  cfg.shard_factory = harness.factory();
  cfg.rpc_retry.max_attempts = 5;
  cfg.rpc_retry.initial_backoff = Duration::millis(50);
  cfg.rpc_retry.max_backoff = Duration::millis(400);
  Cluster cluster(cfg);

  const auto flows = canonical_flows(500, 53);
  ASSERT_EQ(cluster.ingest(flows).acked, flows.size());
  harness.hosts[0].server->stop();

  const auto t0 = std::chrono::steady_clock::now();
  const auto rows = cluster.query(FlowQuery{});
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(rows.size(), cluster.size());
  EXPECT_FALSE(cluster.alive(0));
  // One fast refused connect + replica failover; a retry-burning
  // implementation would sit in backoff for seconds here.
  EXPECT_LT(elapsed.count(), 2000) << "refused remote burned the retry "
                                      "budget instead of failing fast";
}

// ------------------------------------------------------- concurrency

TEST(RemoteShardConcurrency, ParallelCallersShareOneSocket) {
  DataStoreConfig store_cfg;
  store_cfg.segment_flows = 200;
  ServedShard served(store_cfg);
  RemoteShard remote(served.client_config());

  const auto flows = canonical_flows(600, 54);
  ASSERT_TRUE(remote.ingest(batch_of(flows)).ok());

  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&remote, &failed, t] {
      for (int i = 0; i < 40 && !failed.load(); ++i) {
        ShardQueryPlan plan;
        if (t % 2 == 0) plan.query.on_port(443);
        plan.max_rows = 64;
        if (!remote.query(plan).ok() || !remote.flow_count().ok() ||
            !remote.ping().ok())
          failed.store(true);
      }
    });
  }
  std::thread writer([&remote, &failed] {
    Rng rng(55);
    for (int i = 0; i < 20 && !failed.load(); ++i) {
      std::vector<FlowRecord> more;
      for (int k = 0; k < 10; ++k) more.push_back(random_flow(rng));
      if (!remote.ingest(batch_of(more)).ok()) failed.store(true);
    }
  });
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_FALSE(failed.load());
  const auto count = remote.flow_count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), flows.size() + 200u);
}

TEST(RemoteShardConcurrency, ManyClientsOneServer) {
  DataStoreConfig store_cfg;
  store_cfg.segment_flows = 200;
  ServedShard served(store_cfg);
  {
    RemoteShard seeder(served.client_config());
    ASSERT_TRUE(seeder.ingest(batch_of(canonical_flows(400, 56))).ok());
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&served, &failed] {
      RemoteShard remote(served.client_config());
      for (int i = 0; i < 25 && !failed.load(); ++i) {
        ShardQueryPlan plan;
        plan.max_rows = 50;
        if (!remote.query(plan).ok() || !remote.catalog().ok())
          failed.store(true);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace campuslab::store

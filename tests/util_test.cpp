// Unit tests for campuslab::util — Result/Status, RNG determinism and
// distribution sanity, byte reader/writer round-trips and bounds
// behaviour, time arithmetic, and streaming statistics.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include "campuslab/util/bytes.h"
#include "campuslab/util/hash.h"
#include "campuslab/util/result.h"
#include "campuslab/util/rng.h"
#include "campuslab/util/stats.h"
#include "campuslab/util/time.h"

namespace campuslab {
namespace {

// ---------------------------------------------------------------- Result

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Error::make("not_found", "missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "not_found");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(Status, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  Status s = Error::make("full", "ring full");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "full");
}

// ------------------------------------------------------------------- RNG

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(21);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(22);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.05);
  EXPECT_NEAR(st.stddev(), 3.0, 0.05);
}

TEST(Rng, ParetoLowerBound) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(100.0, 1.2), 100.0);
}

TEST(Rng, ForkIndependent) {
  Rng parent(42);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next() == c2.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ----------------------------------------------------------------- Bytes

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  const std::array<std::uint8_t, 3> tail{1, 2, 3};
  w.bytes(tail);

  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  const auto got = r.bytes(3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[2], 3);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.view()[0], 0x01);
  EXPECT_EQ(w.view()[1], 0x02);
}

TEST(Bytes, ReaderTruncationSticky) {
  const std::array<std::uint8_t, 3> buf{1, 2, 3};
  ByteReader r(buf);
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_EQ(r.u32(), 0u);  // only 1 byte left
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still failing after the first violation
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, ReaderSkipAndRest) {
  const std::array<std::uint8_t, 5> buf{10, 20, 30, 40, 50};
  ByteReader r(buf);
  r.skip(2);
  const auto rest = r.rest();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 30);
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u32(0x11223344);
  w.patch_u16(0, 0xBEEF);
  ByteReader r(w.view());
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0x11223344u);
}

TEST(Bytes, ZerosFill) {
  ByteWriter w;
  w.zeros(4);
  EXPECT_EQ(w.size(), 4u);
  for (auto b : w.view()) EXPECT_EQ(b, 0);
}

// ------------------------------------------------------------------ Time

TEST(Time, DurationFactoriesAgree) {
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
  EXPECT_EQ(Duration::millis(1), Duration::micros(1000));
  EXPECT_EQ(Duration::micros(1), Duration::nanos(1000));
  EXPECT_EQ(Duration::minutes(2), Duration::seconds(120));
  EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
}

TEST(Time, ArithmeticAndComparison) {
  const Timestamp t0 = Timestamp::epoch();
  const Timestamp t1 = t0 + Duration::seconds(5);
  EXPECT_GT(t1, t0);
  EXPECT_EQ(t1 - t0, Duration::seconds(5));
  EXPECT_EQ((t1 - Duration::seconds(5)), t0);
}

TEST(Time, FractionalSeconds) {
  const auto d = Duration::from_seconds(0.25);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 0.25);
  EXPECT_EQ(d.count_nanos(), 250'000'000);
}

// ----------------------------------------------------------------- Stats

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(77);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(EntropyCounter, UniformIsMaximal) {
  EntropyCounter e;
  for (std::uint64_t k = 0; k < 8; ++k) e.add(k, 10);
  EXPECT_NEAR(e.entropy(), 3.0, 1e-12);
  EXPECT_NEAR(e.normalized_entropy(), 1.0, 1e-12);
}

TEST(EntropyCounter, SingleKeyIsZero) {
  EntropyCounter e;
  e.add(42, 1000);
  EXPECT_EQ(e.entropy(), 0.0);
  EXPECT_EQ(e.normalized_entropy(), 0.0);
}

TEST(EntropyCounter, SkewLowersEntropy) {
  EntropyCounter uniform, skewed;
  for (std::uint64_t k = 0; k < 4; ++k) uniform.add(k, 25);
  skewed.add(0, 97);
  for (std::uint64_t k = 1; k < 4; ++k) skewed.add(k, 1);
  EXPECT_LT(skewed.entropy(), uniform.entropy());
}

TEST(EntropyCounter, DistinctAndTotal) {
  EntropyCounter e;
  e.add(1);
  e.add(1);
  e.add(2, 3);
  EXPECT_EQ(e.distinct(), 2u);
  EXPECT_EQ(e.total(), 5u);
}

// ----------------------------------------------------------------- hash

// Reference vectors from the FNV-1a specification (64-bit). The
// segment-file checksums and every other byte-exact user depend on
// these constants; a drift here corrupts on-disk compatibility.
TEST(Fnv1a, ReferenceVectors) {
  EXPECT_EQ(util::fnv1a(std::string_view{}), util::kFnvOffsetBasis);
  EXPECT_EQ(util::fnv1a(std::string_view{"a"}), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(util::fnv1a(std::string_view{"foobar"}), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, SpanAndStringAgree) {
  const std::string_view s = "campuslab";
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(util::fnv1a(std::span<const std::uint8_t>(bytes)),
            util::fnv1a(s));
}

TEST(Fnv1a, StepFoldsWholeWordsNotBytes) {
  // fnv1a_step is the spreader's historical whole-word fold — one
  // (h ^ v) * prime per 64-bit value — NOT byte-at-a-time FNV over the
  // word. Pin both the semantics and the compat basis the spreader
  // ships with.
  const std::uint64_t v = 0x0102030405060708ULL;
  EXPECT_EQ(util::fnv1a_step(util::kFnvCompatBasis, v),
            (util::kFnvCompatBasis ^ v) * util::kFnvPrime);
  EXPECT_EQ(util::kFnvCompatBasis, 1469598103934665603ULL);
  // The compat basis is the standard basis with its last decimal
  // digit dropped (the historical typo, kept bit-stable).
  EXPECT_EQ(util::kFnvCompatBasis, util::kFnvOffsetBasis / 10);
}

TEST(Mix64, AvalanchesHighBits) {
  // The finalizer exists because short-input FNV barely moves the top
  // bits: consecutive inputs must land in different 2^56-wide buckets
  // once mixed (this is what keeps hash-ring vnode points spread).
  std::set<std::uint64_t> top_bytes;
  for (std::uint64_t v = 0; v < 64; ++v)
    top_bytes.insert(util::mix64(v) >> 56);
  EXPECT_GT(top_bytes.size(), 32u);
  EXPECT_EQ(util::mix64(12345), util::mix64(12345));
  EXPECT_NE(util::mix64(12345), util::mix64(12346));
}

}  // namespace
}  // namespace campuslab

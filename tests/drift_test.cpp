// DriftDetector edge cases: empty windows, constant and single-class
// streams, min-sample guards, and the hysteresis no-flap property under
// a drift score oscillating at the trigger threshold.
#include "campuslab/control/drift.h"

#include <gtest/gtest.h>

namespace campuslab::control {
namespace {

DriftConfig small_config() {
  DriftConfig config;
  config.window = 100;
  config.bins = 2;
  config.min_samples = 1;
  config.trigger_threshold = 0.25;
  config.clear_threshold = 0.12;
  config.trigger_windows = 2;
  return config;
}

/// Feed exactly one full window where `high_fraction` of samples score
/// 0.9 as positives and the rest score 0.1 as negatives. With bins=2
/// the TV distance against a 50/50 reference is |high_fraction - 0.5|.
void feed_window(DriftDetector& det, double high_fraction,
                 std::size_t window = 100) {
  const auto high = static_cast<std::size_t>(
      high_fraction * static_cast<double>(window) + 0.5);
  for (std::size_t i = 0; i < window; ++i) {
    const bool hi = i < high;
    det.observe(hi ? 0.9 : 0.1, hi);
  }
}

TEST(DriftDetectorTest, EmptyWindowIsNeverJudged) {
  DriftDetector det(small_config());
  det.evaluate_window();  // zero samples
  det.evaluate_window();
  EXPECT_EQ(det.windows_judged(), 0u);
  EXPECT_FALSE(det.has_reference());
  EXPECT_FALSE(det.triggered());
  EXPECT_EQ(det.transitions(), 0u);
}

TEST(DriftDetectorTest, WindowBelowMinSamplesIsDiscarded) {
  auto config = small_config();
  config.min_samples = 50;
  DriftDetector det(config);
  for (int i = 0; i < 10; ++i) det.observe(0.9, true);
  det.evaluate_window();  // 10 < min_samples: discarded, not a reference
  EXPECT_FALSE(det.has_reference());
  EXPECT_EQ(det.windows_judged(), 0u);
  feed_window(det, 0.5);  // a full window does become the reference
  EXPECT_TRUE(det.has_reference());
  EXPECT_EQ(det.windows_judged(), 0u);  // the reference itself is not judged
}

TEST(DriftDetectorTest, WindowSmallerThanMinSamplesNeverJudges) {
  auto config = small_config();
  config.window = 64;
  config.min_samples = 256;  // unreachable: every window is quiet
  DriftDetector det(config);
  for (int i = 0; i < 10'000; ++i) det.observe(0.5, i % 2 == 0);
  EXPECT_FALSE(det.has_reference());
  EXPECT_EQ(det.windows_judged(), 0u);
  EXPECT_FALSE(det.triggered());
}

TEST(DriftDetectorTest, ConstantStreamStaysCalm) {
  DriftDetector det(small_config());
  for (int w = 0; w < 50; ++w) feed_window(det, 0.3);
  EXPECT_TRUE(det.has_reference());
  EXPECT_EQ(det.windows_judged(), 49u);
  EXPECT_FALSE(det.triggered());
  EXPECT_EQ(det.transitions(), 0u);
  EXPECT_EQ(det.triggers(), 0u);
  EXPECT_NEAR(det.last_score_distance(), 0.0, 1e-9);
  EXPECT_NEAR(det.last_rate_delta(), 0.0, 1e-9);
}

TEST(DriftDetectorTest, SingleClassStreamIsCalmUntilTheClassFlips) {
  DriftDetector det(small_config());
  // All-benign stream: reference and every later window identical.
  for (int w = 0; w < 10; ++w) feed_window(det, 0.0);
  EXPECT_FALSE(det.triggered());
  EXPECT_NEAR(det.last_rate_delta(), 0.0, 1e-9);
  // The stream flips to all-attack: rate delta 1.0, arms after
  // trigger_windows consecutive drifted windows.
  feed_window(det, 1.0);
  EXPECT_FALSE(det.triggered()) << "one drifted window must not arm";
  feed_window(det, 1.0);
  EXPECT_TRUE(det.triggered());
  EXPECT_EQ(det.triggers(), 1u);
  EXPECT_NEAR(det.last_rate_delta(), 1.0, 1e-9);
  EXPECT_NEAR(det.last_score_distance(), 1.0, 1e-9);
}

TEST(DriftDetectorTest, HysteresisDoesNotFlapAtTheThreshold) {
  DriftDetector det(small_config());
  feed_window(det, 0.5);  // reference: 50/50
  // Oscillate between TV = 0.26 (over the 0.25 trigger) and TV = 0.20
  // (in the dead band between clear=0.12 and trigger). The dead band
  // holds both the streak and the state, so the oscillation arms the
  // detector exactly once and can never disarm it.
  for (int w = 0; w < 40; ++w) feed_window(det, w % 2 == 0 ? 0.76 : 0.70);
  EXPECT_TRUE(det.triggered());
  EXPECT_EQ(det.triggers(), 1u) << "oscillation at the threshold re-armed";
  EXPECT_EQ(det.transitions(), 1u) << "state flapped";
  // Only a clearly calm window disarms.
  feed_window(det, 0.5);
  EXPECT_FALSE(det.triggered());
  EXPECT_EQ(det.transitions(), 2u);
}

TEST(DriftDetectorTest, DeadBandWindowDoesNotResetTheStreak) {
  DriftDetector det(small_config());
  feed_window(det, 0.5);   // reference
  feed_window(det, 0.76);  // streak 1
  feed_window(det, 0.70);  // dead band: streak held, still calm
  EXPECT_FALSE(det.triggered());
  feed_window(det, 0.76);  // streak 2 -> armed
  EXPECT_TRUE(det.triggered());
}

TEST(DriftDetectorTest, RebaseDropsReferenceAndDisarms) {
  DriftDetector det(small_config());
  feed_window(det, 0.1);
  feed_window(det, 0.9);
  feed_window(det, 0.9);
  ASSERT_TRUE(det.triggered());
  det.rebase();
  EXPECT_FALSE(det.triggered());
  EXPECT_FALSE(det.has_reference());
  EXPECT_NEAR(det.last_score_distance(), 0.0, 1e-9);
  // The drifted-to distribution becomes the new normal.
  feed_window(det, 0.9);  // new reference
  feed_window(det, 0.9);
  EXPECT_FALSE(det.triggered());
}

TEST(DriftDetectorTest, ScoresOutsideUnitIntervalAreClamped) {
  DriftDetector det(small_config());
  for (int i = 0; i < 100; ++i) det.observe(i % 2 == 0 ? -3.0 : 4.0, false);
  for (int i = 0; i < 100; ++i) det.observe(i % 2 == 0 ? 0.0 : 1.0, false);
  // -3 clamps into bin 0 and 4 into the top bin: the two streams build
  // identical histograms, so the second window scores zero drift.
  EXPECT_NEAR(det.last_score_distance(), 0.0, 1e-9);
}

}  // namespace
}  // namespace campuslab::control

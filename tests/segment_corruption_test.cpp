// Segment-file reader corruption suite: the decoder must be total.
//
// A truncated, bit-flipped, zeroed, saturated, or garbage-extended
// segment file yields a clean util::Result error with a stable code —
// never a crash, an out-of-bounds read (the ASAN CI job runs this
// binary), an allocation bomb, or silently wrong rows. Reuses the
// decoder_fuzz_test seeded-mutation pattern: every failure replays
// from (seed, iteration).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "campuslab/store/datastore.h"
#include "campuslab/store/query_engine.h"
#include "campuslab/store/segment_file.h"
#include "campuslab/util/rng.h"

namespace campuslab::store {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;

FlowRecord sample_flow(Rng& rng, double start_s) {
  FlowRecord f;
  f.tuple = packet::FiveTuple{
      Ipv4Address(10, 2, static_cast<std::uint8_t>(rng.below(4)),
                  static_cast<std::uint8_t>(rng.below(32))),
      Ipv4Address(192, 0, 2, static_cast<std::uint8_t>(rng.below(16))),
      static_cast<std::uint16_t>(rng.below(65536)),
      static_cast<std::uint16_t>(rng.below(65536)),
      static_cast<std::uint8_t>(rng.chance(0.3) ? 17 : 6)};
  f.first_ts = Timestamp::from_seconds(start_s);
  f.last_ts = f.first_ts + Duration::nanos(
                  static_cast<std::int64_t>(rng.below(1'000'000'000)));
  f.packets = rng.below(10'000);
  f.bytes = rng.below(1'000'000);
  f.payload_bytes = rng.below(100'000);
  f.fwd_packets = rng.below(5'000);
  f.rev_packets = rng.below(5'000);
  f.syn_count = static_cast<std::uint32_t>(rng.below(4));
  f.psh_count = static_cast<std::uint32_t>(rng.below(32));
  f.saw_dns = rng.chance(0.2);
  f.label_packets[rng.below(packet::kTrafficLabelCount)] =
      1 + rng.below(100);
  return f;
}

// A valid file image built through the real ingest/index path.
std::vector<std::uint8_t> valid_file(Rng& rng, std::size_t flows) {
  auto seg = std::make_shared<Segment>(flows);
  std::uint64_t id = 1;
  for (std::size_t i = 0; i < flows; ++i) {
    StoredFlow stored{id++, sample_flow(rng, static_cast<double>(i))};
    seg->min_ts = std::min(seg->min_ts, stored.flow.first_ts);
    seg->max_ts = std::max(seg->max_ts, stored.flow.last_ts);
    const auto offset = static_cast<std::uint32_t>(seg->flows.size());
    seg->flows.push_back(stored);
    seg->by_host[stored.flow.tuple.src.value()].push_back(offset);
    seg->by_host[stored.flow.tuple.dst.value()].push_back(offset);
    seg->by_port[stored.flow.tuple.dst_port].push_back(offset);
    seg->by_label[static_cast<std::size_t>(
                      stored.flow.majority_label())].push_back(offset);
  }
  seg->sealed = true;
  return encode_segment(*seg);
}

bool known_code(const std::string& code) {
  return code == "segment_magic" || code == "segment_version" ||
         code == "segment_truncated" || code == "segment_checksum" ||
         code == "segment_corrupt" || code == "io";
}

// One random structural mutation, in place (decoder_fuzz_test pattern).
void mutate(Rng& rng, std::vector<std::uint8_t>& file) {
  switch (rng.below(6)) {
    case 0:  // truncate anywhere, including to zero
      file.resize(rng.below(file.size() + 1));
      break;
    case 1: {  // flip 1-8 random bytes
      if (file.empty()) break;
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t i = 0; i < flips; ++i)
        file[rng.below(file.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      break;
    }
    case 2: {  // zero a random region (wipes counts/sizes)
      if (file.empty()) break;
      const std::size_t begin = rng.below(file.size());
      const std::size_t len = rng.below(file.size() - begin + 1);
      for (std::size_t i = begin; i < begin + len; ++i) file[i] = 0;
      break;
    }
    case 3: {  // saturate a random region (maxes the same fields)
      if (file.empty()) break;
      const std::size_t begin = rng.below(file.size());
      const std::size_t len = rng.below(file.size() - begin + 1);
      for (std::size_t i = begin; i < begin + len; ++i) file[i] = 0xFF;
      break;
    }
    case 4: {  // append garbage
      const std::size_t extra = 1 + rng.below(64);
      for (std::size_t i = 0; i < extra; ++i)
        file.push_back(static_cast<std::uint8_t>(rng.below(256)));
      break;
    }
    default: {  // replace the whole tail with noise
      if (file.empty()) break;
      const std::size_t begin = rng.below(file.size());
      for (std::size_t i = begin; i < file.size(); ++i)
        file[i] = static_cast<std::uint8_t>(rng.below(256));
      break;
    }
  }
}

// FNV-1a 64, the file's checksum function — the test-side copy lets
// the suite craft files whose checksums are *valid* but whose payload
// is structurally wrong, reaching the decode validators behind the
// checksum gate.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u64_be(std::vector<std::uint8_t>& buf, std::size_t at,
                std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

// Recompute both checksums after a deliberate payload tamper.
void reseal(std::vector<std::uint8_t>& file) {
  const std::size_t payload_fnv_at = 8 + 4 + 4 + 8;  // after payload_size
  put_u64_be(file, payload_fnv_at,
             fnv1a(file.data() + kSegmentFileHeaderBytes,
                   file.size() - kSegmentFileHeaderBytes));
  put_u64_be(file, kSegmentFileHeaderBytes - 8,
             fnv1a(file.data(), kSegmentFileHeaderBytes - 8));
}

// ----------------------------------------------------------- the suite

TEST(SegmentCorruption, StableErrorCodes) {
  Rng rng(11);
  const auto base = valid_file(rng, 40);
  ASSERT_TRUE(decode_segment(base).ok());

  auto bad = base;
  bad[0] ^= 0xFF;
  EXPECT_EQ(decode_segment(bad).error().code, "segment_magic");

  bad = base;
  bad[11] = 0x7F;  // future version
  EXPECT_EQ(decode_segment(bad).error().code, "segment_version");

  bad = base;
  bad.resize(kSegmentFileHeaderBytes - 1);  // shorter than the header
  EXPECT_EQ(decode_segment(bad).error().code, "segment_truncated");

  bad = base;
  bad.pop_back();  // payload_size disagrees with file size
  EXPECT_EQ(decode_segment(bad).error().code, "segment_truncated");

  bad = base;
  bad[40] ^= 0x01;  // a zone-map byte: header checksum catches it
  EXPECT_EQ(decode_segment(bad).error().code, "segment_checksum");

  bad = base;
  bad[kSegmentFileHeaderBytes + 5] ^= 0x01;  // payload byte
  EXPECT_EQ(decode_segment(bad).error().code, "segment_checksum");

  // Valid checksums, structurally wrong payload: the flow count varint
  // no longer matches the zone map.
  bad = base;
  bad[kSegmentFileHeaderBytes] ^= 0x01;
  reseal(bad);
  EXPECT_EQ(decode_segment(bad).error().code, "segment_corrupt");

  EXPECT_EQ(read_segment_file("/nonexistent/campuslab.clseg").error().code,
            "io");
}

// Every prefix of a valid file, byte by byte: errors all the way up,
// no crash, no over-read.
TEST(SegmentCorruption, TruncationLadder) {
  Rng rng(22);
  const auto base = valid_file(rng, 25);
  for (std::size_t len = 0; len < base.size(); ++len) {
    std::vector<std::uint8_t> cut(base.begin(),
                                  base.begin() +
                                      static_cast<std::ptrdiff_t>(len));
    auto r = decode_segment(cut);
    ASSERT_FALSE(r.ok()) << "decoded a " << len << "-byte prefix of a "
                         << base.size() << "-byte file";
    ASSERT_TRUE(known_code(r.error().code)) << r.error().code;
    auto z = decode_zone_map(cut);
    if (z.ok()) {  // header complete and intact: the zone map IS valid
      ASSERT_GE(len, kSegmentFileHeaderBytes);
    }
  }
}

// The seeded mutation storm. Success is allowed only when the mutation
// reproduced the original bytes — anything else must be a clean error
// (this is the "no silent wrong rows" property: the checksums make a
// byte-accurate impostor the only thing that decodes).
TEST(SegmentCorruption, SeededMutationStorm) {
  Rng rng(33);
  const std::vector<std::vector<std::uint8_t>> corpus = {
      valid_file(rng, 0), valid_file(rng, 1), valid_file(rng, 60),
      valid_file(rng, 300)};
  for (int iter = 0; iter < 8000; ++iter) {
    auto file = corpus[rng.below(corpus.size())];
    const auto mutations = 1 + rng.below(3);
    for (std::size_t m = 0; m < mutations; ++m) mutate(rng, file);
    auto r = decode_segment(file);
    if (r.ok()) {
      bool identical = false;
      for (const auto& original : corpus)
        identical = identical || file == original;
      ASSERT_TRUE(identical)
          << "iter " << iter << ": decoded " << file.size()
          << " mutated bytes without error";
    } else {
      ASSERT_TRUE(known_code(r.error().code))
          << "iter " << iter << ": unstable code " << r.error().code;
    }
    auto z = decode_zone_map(file);
    if (!z.ok()) {
      ASSERT_TRUE(known_code(z.error().code)) << z.error().code;
    }
  }
}

// Mutations aimed where the structural validators live: keep both
// checksums valid (reseal) so the fuzz reaches the bounds checks
// behind the checksum gate — dictionary indexes, offset monotonicity,
// bitset sizes, trailing bytes.
TEST(SegmentCorruption, ResealedPayloadFuzz) {
  Rng rng(44);
  const auto base = valid_file(rng, 120);
  for (int iter = 0; iter < 4000; ++iter) {
    auto file = base;
    const std::size_t payload = file.size() - kSegmentFileHeaderBytes;
    switch (rng.below(4)) {
      case 0: {  // flip payload bytes
        const std::size_t flips = 1 + rng.below(4);
        for (std::size_t i = 0; i < flips; ++i)
          file[kSegmentFileHeaderBytes + rng.below(payload)] ^=
              static_cast<std::uint8_t>(1 + rng.below(255));
        break;
      }
      case 1: {  // saturate a payload varint region
        const std::size_t begin = rng.below(payload);
        const std::size_t len = 1 + rng.below(12);
        for (std::size_t i = begin; i < std::min(begin + len, payload);
             ++i)
          file[kSegmentFileHeaderBytes + i] = 0xFF;
        break;
      }
      case 2:  // drop payload tail, fix payload_size to match
        file.resize(kSegmentFileHeaderBytes + rng.below(payload));
        put_u64_be(file, 16, file.size() - kSegmentFileHeaderBytes);
        break;
      default:  // append payload garbage, fix payload_size to match
        for (std::size_t i = 0, extra = 1 + rng.below(32); i < extra; ++i)
          file.push_back(static_cast<std::uint8_t>(rng.below(256)));
        put_u64_be(file, 16, file.size() - kSegmentFileHeaderBytes);
        break;
    }
    reseal(file);
    auto r = decode_segment(file);
    if (r.ok()) {
      // A resealed mutation can yield a *different but valid* file
      // (a flipped counter byte is just another legal value). What
      // must hold is stability: whatever the decoder accepted must
      // re-encode canonically — encode∘decode is idempotent after
      // one normalization pass, or the decoder let garbage through.
      const auto e1 = encode_segment(*std::move(r).value());
      auto d2 = decode_segment(e1);
      ASSERT_TRUE(d2.ok()) << "iter " << iter << ": re-encode of an "
                           << "accepted mutation failed to decode: "
                           << d2.error().code;
      const auto e2 = encode_segment(*std::move(d2).value());
      ASSERT_EQ(e1, e2) << "iter " << iter;
    } else {
      ASSERT_TRUE(known_code(r.error().code))
          << "iter " << iter << ": " << r.error().code;
    }
  }
}

// A corrupt file behind a live query: the query completes, reports the
// failure in its stats, returns every row from intact segments, and
// never crashes. Direct reads of the same file return a clean error.
TEST(SegmentCorruption, CorruptFileBehindQueryDegradesCleanly) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "campuslab_corrupt_q";
  std::filesystem::remove_all(dir);
  DataStoreConfig cfg;
  cfg.segment_flows = 50;
  cfg.spill_directory = dir.string();
  // A budget nothing reaches: keep everything hot until the explicit
  // spill() below, so the test controls exactly when files appear.
  cfg.hot_bytes_budget = std::numeric_limits<std::uint64_t>::max();
  DataStore store(cfg);
  Rng rng(55);
  for (int i = 0; i < 200; ++i) store.ingest(sample_flow(rng, i));
  ASSERT_EQ(store.spill(), 4u);

  // Flip one payload byte of one spilled file, on disk.
  std::filesystem::path victim;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (victim.empty() || entry.path() < victim) victim = entry.path();
  ASSERT_FALSE(victim.empty());
  {
    std::fstream f(victim,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(kSegmentFileHeaderBytes + 3));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(kSegmentFileHeaderBytes + 3));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(static_cast<std::streamoff>(kSegmentFileHeaderBytes + 3));
    f.write(&byte, 1);
  }

  const auto result = store.query(FlowQuery{});
  EXPECT_EQ(result.stats().cold_load_failures, 1u);
  EXPECT_EQ(result.size(), 150u);  // 4 cold segments, one unreadable
  std::uint64_t last_id = 0;
  for (const auto& stored : result) {  // surviving rows are coherent
    EXPECT_GT(stored.id, last_id);
    last_id = stored.id;
  }

  auto direct = read_segment_file(victim.string());
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.error().code, "segment_checksum");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace campuslab::store

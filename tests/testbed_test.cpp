// Tests for the Testbed harness itself — pipeline wiring (tap ->
// capture -> flow meter -> store, collector), the optional raw-packet
// archive with collection-time payload policy, and harvest semantics.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "campuslab/packet/view.h"
#include "campuslab/testbed/testbed.h"

namespace campuslab::testbed {
namespace {

TestbedConfig base_config(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  return cfg;
}

TEST(Testbed, PipelineWiringPopulatesStoreAndCollector) {
  auto cfg = base_config(31001);
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(500)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(4)));
  cfg.collector.labeling.attack_vs_benign = true;
  Testbed bed(cfg);
  bed.run(Duration::seconds(8));

  EXPECT_GT(bed.capture_engine().stats().offered, 1000u);
  EXPECT_EQ(bed.capture_engine().stats().dropped, 0u);
  EXPECT_GT(bed.collector().rows_collected(), 500u);

  const auto dataset = bed.harvest_dataset();
  EXPECT_GT(dataset.n_rows(), 500u);
  EXPECT_EQ(bed.collector().rows_collected(), 0u);  // taken
  EXPECT_GT(bed.store().size(), 50u);  // flushed flows landed
  const auto counts = dataset.class_counts();
  EXPECT_GT(counts[0], 0u);
  EXPECT_GT(counts[1], 0u);
}

TEST(Testbed, ObserversSeeEveryCapturedPacket) {
  auto cfg = base_config(31002);
  Testbed bed(cfg);
  std::uint64_t observed = 0;
  bed.add_observer(
      [&](const capture::TaggedPacket&) { ++observed; });
  bed.run(Duration::seconds(5));
  EXPECT_EQ(observed, bed.capture_engine().stats().consumed);
  EXPECT_GT(observed, 500u);
}

class ArchiveTestbedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("campuslab_tb_archive_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(ArchiveTestbedFixture, ArchivesRedactedPackets) {
  auto cfg = base_config(31003);
  cfg.archive_directory = dir_.string();
  cfg.archive_segment_span = Duration::seconds(5);
  Testbed bed(cfg);
  ASSERT_TRUE(bed.archive().has_value());
  bed.run(Duration::seconds(12));
  ASSERT_TRUE(bed.archive()->seal().ok());

  // Multiple segments rotated and recorded on disk.
  EXPECT_GE(bed.archive()->segments().size(), 2u);
  EXPECT_EQ(bed.archive()->records_written(),
            bed.capture_engine().stats().consumed);

  auto packets = bed.archive()->read_range(Timestamp::from_seconds(0),
                                           Timestamp::from_seconds(12));
  ASSERT_TRUE(packets.ok());
  ASSERT_GT(packets.value().size(), 500u);

  // Collection-time policy: ssh payloads are stripped, DNS kept.
  for (const auto& pkt : packets.value()) {
    packet::PacketView view(pkt);
    if (!view.valid()) continue;
    const auto tuple = view.five_tuple();
    if (!tuple) continue;
    if (tuple->src_port == 22 || tuple->dst_port == 22) {
      EXPECT_TRUE(view.payload().empty())
          << "ssh payload survived the policy";
    }
  }
}

TEST_F(ArchiveTestbedFixture, MissingDirectoryDisablesArchive) {
  auto cfg = base_config(31004);
  cfg.archive_directory = (dir_ / "nope" / "nothere").string();
  Testbed bed(cfg);
  EXPECT_FALSE(bed.archive().has_value());
  bed.run(Duration::seconds(2));  // still works without the archive
  EXPECT_GT(bed.capture_engine().stats().consumed, 100u);
}

TEST(Testbed, FlashCrowdScenarioStaysBenign) {
  auto cfg = base_config(31005);
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kFlashCrowd)
          .rate(800)
          .starting_at(Timestamp::from_seconds(1))
          .lasting(Duration::seconds(4)));
  Testbed bed(cfg);
  bed.run(Duration::seconds(6));
  // The crowd dominated inbound traffic, yet nothing is labelled attack.
  const auto& acc = bed.network().accounting();
  EXPECT_GT(acc.tapped_in.benign_frames(), 2500u);
  EXPECT_EQ(acc.tapped_in.attack_frames(), 0u);
}

}  // namespace
}  // namespace campuslab::testbed

// Tests for campuslab::control + campuslab::testbed — the complete
// Figure-2 pipeline: collect labelled packets on the testbed, run the
// development loop (train -> extract -> compile), deploy the fast loop
// as the ingress filter, and verify mitigation quality with ground
// truth; canary and safety-monitor behaviour included.
#include <gtest/gtest.h>

#include "campuslab/control/development_loop.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/testbed/canary.h"
#include "campuslab/testbed/report.h"
#include "campuslab/testbed/safety.h"
#include "campuslab/testbed/testbed.h"

namespace campuslab::control {
namespace {

using packet::TrafficLabel;
using testbed::Testbed;
using testbed::TestbedConfig;

/// A testbed preloaded with the DNS-amplification scenario and a
/// binary packet collector for it.
TestbedConfig amp_scenario(std::uint64_t seed, double attack_pps = 2000,
                           double attack_start_s = 5,
                           double attack_duration_s = 20) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2500})
          .rate(attack_pps)
          .starting_at(Timestamp::from_seconds(attack_start_s))
          .lasting(Duration::from_seconds(attack_duration_s)));
  cfg.collector.labeling.binary_target =
      TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.25;  // balance the classes
  cfg.collector.seed = seed ^ 0xC011EC7;
  return cfg;
}

DevelopmentConfig small_dev_config(std::uint64_t seed) {
  DevelopmentConfig cfg;
  cfg.teacher.n_trees = 20;
  cfg.teacher.max_depth = 12;
  cfg.teacher.seed = seed;
  cfg.extraction.student_max_depth = 5;
  cfg.extraction.synthetic_samples = 5000;
  cfg.extraction.seed = seed + 1;
  cfg.seed = seed + 2;
  return cfg;
}

class PipelineFixture : public ::testing::Test {
 protected:
  void build_package(std::uint64_t seed = 101) {
    Testbed bed(amp_scenario(seed));
    bed.run(Duration::seconds(30));
    dataset_ = std::make_unique<ml::Dataset>(bed.harvest_dataset());
    ASSERT_GT(dataset_->n_rows(), 2000u);
    const auto counts = dataset_->class_counts();
    ASSERT_GT(counts[0], 100u);
    ASSERT_GT(counts[1], 100u);

    DevelopmentLoop loop(small_dev_config(seed));
    auto result = loop.run(*dataset_);
    ASSERT_TRUE(result.ok()) << result.error().message;
    package_ = std::make_unique<DeploymentPackage>(
        std::move(result).value());
  }

  std::unique_ptr<ml::Dataset> dataset_;
  std::unique_ptr<DeploymentPackage> package_;
};

// ------------------------------------------------------ DevelopmentLoop

TEST_F(PipelineFixture, PackageQualityAndArtifacts) {
  build_package();
  EXPECT_GT(package_->teacher_holdout_accuracy, 0.97);
  EXPECT_GT(package_->student_holdout_accuracy, 0.95);
  EXPECT_GT(package_->holdout_fidelity, 0.95);
  EXPECT_TRUE(package_->resources.fits(
      dataplane::ResourceBudget::tofino_like()));
  EXPECT_EQ(package_->strategy, "tree_walk");  // depth 5 fits stages
  EXPECT_NE(package_->p4_source.find("model_metadata_t"),
            std::string::npos);
  EXPECT_NE(package_->p4_source.find("dst_inbound_pps"),
            std::string::npos);
  EXPECT_GT(package_->timings.train_us, 0);
  EXPECT_GT(package_->timings.extract_us, 0);
  EXPECT_GT(package_->timings.total_us, package_->timings.train_us);
  // The trust report names the paper's task.
  EXPECT_NE(package_->trust.to_string().find(
                "dns-amplification-ingress-drop"),
            std::string::npos);
}

TEST(DevelopmentLoop, RejectsMulticlassDataset) {
  ml::Dataset data(features::packet_feature_names(),
                   {"a", "b", "c"});
  DevelopmentLoop loop(small_dev_config(1));
  const auto result = loop.run(data);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "shape");
}

TEST(DevelopmentLoop, RejectsSingleClassData) {
  ml::Dataset data(features::packet_feature_names(), {"rest", "evt"});
  std::vector<double> row(features::kPacketFeatureCount, 1.0);
  for (int i = 0; i < 100; ++i) data.add(row, 0);
  DevelopmentLoop loop(small_dev_config(2));
  const auto result = loop.run(data);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "data");
}

TEST(DevelopmentLoop, GradientBoostedTeacherWorksToo) {
  Testbed bed(amp_scenario(313));
  bed.run(Duration::seconds(25));
  const auto dataset = bed.harvest_dataset();
  auto cfg = small_dev_config(313);
  cfg.teacher_kind = TeacherKind::kGradientBoosted;
  cfg.boosted_teacher.n_rounds = 40;
  cfg.boosted_teacher.seed = 314;
  const auto result = DevelopmentLoop(cfg).run(dataset);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_GT(result.value().teacher_holdout_accuracy, 0.97);
  EXPECT_GT(result.value().student_holdout_accuracy, 0.95);
  EXPECT_GT(result.value().holdout_fidelity, 0.95);
}

TEST(DevelopmentLoop, AutoFallsBackToTcamWhenStagesTooFew) {
  Testbed bed(amp_scenario(323));
  bed.run(Duration::seconds(25));
  const auto dataset = bed.harvest_dataset();
  auto cfg = small_dev_config(323);
  cfg.extraction.student_max_depth = 3;  // keep TCAM expansion small
  cfg.budget.stages = 3;  // too few for a tree walk (needs depth+2)
  cfg.budget.tcam_entries_per_stage = 1 << 14;
  const auto result = DevelopmentLoop(cfg).run(dataset);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().strategy, "rule_tcam");
}

TEST(DevelopmentLoop, FailsWhenNothingFits) {
  Testbed bed(amp_scenario(333));
  bed.run(Duration::seconds(25));
  const auto dataset = bed.harvest_dataset();
  auto cfg = small_dev_config(333);
  cfg.budget.stages = 1;  // nothing fits one stage
  const auto result = DevelopmentLoop(cfg).run(dataset);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "budget");
}

TEST(DevelopmentLoop, ForcedTcamStrategy) {
  Testbed bed(amp_scenario(303));
  bed.run(Duration::seconds(25));
  const auto dataset = bed.harvest_dataset();
  auto cfg = small_dev_config(303);
  cfg.strategy = CompileStrategy::kRuleTcam;
  cfg.extraction.student_max_depth = 4;  // keep expansion tame
  const auto result = DevelopmentLoop(cfg).run(dataset);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().strategy, "rule_tcam");
  EXPECT_GT(result.value().resources.tcam_entries, 0u);
}

// -------------------------------------------------------------- FastLoop

TEST_F(PipelineFixture, EnforcementMitigatesAttack) {
  build_package();
  // Fresh campus, same attack profile, different seed: road-test.
  Testbed bed(amp_scenario(202, 3000, 3, 15));
  auto loop = FastLoop::deploy(*package_);
  ASSERT_TRUE(loop.ok());
  loop.value()->install(bed.network());
  bed.run(Duration::seconds(25));

  const auto& stats = loop.value()->stats();
  EXPECT_GT(stats.inspected, 10000u);
  EXPECT_GT(stats.attack_block_rate(), 0.90);
  EXPECT_GT(stats.drop_precision(), 0.95);
  EXPECT_LT(stats.benign_loss_rate(), 0.02);
  // The network's own per-label accounting agrees.
  const auto& acc = bed.network().accounting();
  EXPECT_EQ(acc.filtered.total_frames(), stats.dropped);
  // Latency was measured.
  EXPECT_GT(loop.value()->latency_ns().count(), 0u);
  EXPECT_GT(loop.value()->latency_ns().mean(), 0.0);
}

TEST_F(PipelineFixture, MonitorOnlyNeverDrops) {
  build_package();
  package_->task.action = MitigationAction::kMonitorOnly;
  Testbed bed(amp_scenario(404, 1500, 2, 8));
  auto loop = FastLoop::deploy(*package_);
  ASSERT_TRUE(loop.ok());
  loop.value()->install(bed.network());
  bed.run(Duration::seconds(12));
  EXPECT_EQ(loop.value()->stats().dropped, 0u);
  EXPECT_GT(loop.value()->stats().inspected, 1000u);
}

TEST_F(PipelineFixture, RateLimitCapsAttackPassRate) {
  build_package();
  package_->task.action = MitigationAction::kRateLimit;
  package_->task.rate_limit_pps = 50.0;
  Testbed bed(amp_scenario(505, 2000, 2, 10));
  auto loop = FastLoop::deploy(*package_);
  ASSERT_TRUE(loop.ok());
  loop.value()->install(bed.network());
  bed.run(Duration::seconds(14));

  const auto& stats = loop.value()->stats();
  EXPECT_GT(stats.rate_limited_dropped, 0u);
  // Attack packets that got through <= limit * attack seconds + slack.
  EXPECT_LT(stats.attack_passed, 50.0 * 10 * 1.8 + 200);
  // Most of the flood was still shed.
  EXPECT_GT(stats.attack_block_rate(), 0.7);
}

// ---------------------------------------------------------------- Canary

TEST_F(PipelineFixture, CanaryScoresWithoutTouchingTraffic) {
  build_package();
  Testbed bed(amp_scenario(606, 2000, 3, 10));
  auto canary = testbed::CanaryDeployment::create(*package_);
  ASSERT_TRUE(canary.ok());
  canary.value()->attach(bed);
  bed.run(Duration::seconds(15));

  const auto& stats = canary.value()->stats();
  EXPECT_GT(stats.observed, 5000u);
  EXPECT_GT(stats.would_drop_precision(), 0.95);
  EXPECT_GT(stats.would_block_rate(), 0.90);
  EXPECT_LT(stats.would_benign_loss(), 0.02);
  EXPECT_TRUE(canary.value()->ready_to_promote(0.9, 0.8));
  // Mirror only: nothing filtered at the border.
  EXPECT_EQ(bed.network().accounting().filtered.total_frames(), 0u);
}

TEST_F(PipelineFixture, CanaryRefusesWithoutEvidence) {
  build_package();
  auto canary = testbed::CanaryDeployment::create(*package_);
  ASSERT_TRUE(canary.ok());
  EXPECT_FALSE(canary.value()->ready_to_promote(0.5, 0.5));
}

// ---------------------------------------------------------- SafetyMonitor

TEST_F(PipelineFixture, SafetyHoldsForGoodModel) {
  build_package();
  Testbed bed(amp_scenario(707, 2500, 3, 12));
  auto loop = FastLoop::deploy(*package_);
  ASSERT_TRUE(loop.ok());
  testbed::SafetyMonitor safety(*loop.value(), testbed::SafetyConfig{});
  safety.install(bed.network());
  bed.run(Duration::seconds(18));
  EXPECT_FALSE(safety.rolled_back());
  EXPECT_GT(safety.windows_judged(), 3u);
  EXPECT_GT(loop.value()->stats().attack_dropped, 0u);
}

TEST_F(PipelineFixture, SafetyRollsBackPoisonedModel) {
  build_package();
  // Poison: flip every label so the "attack" class is benign traffic.
  ml::Dataset poisoned(dataset_->feature_names(),
                       dataset_->class_names());
  for (std::size_t i = 0; i < dataset_->n_rows(); ++i)
    poisoned.add(dataset_->row(i), 1 - dataset_->label(i));
  const auto bad = DevelopmentLoop(small_dev_config(808)).run(poisoned);
  ASSERT_TRUE(bad.ok()) << bad.error().message;

  Testbed bed(amp_scenario(808, 2000, 3, 12));
  auto loop = FastLoop::deploy(bad.value());
  ASSERT_TRUE(loop.ok());
  testbed::SafetyConfig scfg;
  scfg.max_benign_drop_fraction = 0.05;
  testbed::SafetyMonitor safety(*loop.value(), scfg);
  safety.install(bed.network());
  bed.run(Duration::seconds(18));

  EXPECT_TRUE(safety.rolled_back());
  // After rollback everything passes: benign delivery recovers.
  const auto& acc = bed.network().accounting();
  EXPECT_GT(acc.delivered.benign_frames(), 0u);
}

// --------------------------------------------------------- RoadTestReport

TEST_F(PipelineFixture, ReportAggregatesAllPhases) {
  build_package();
  Testbed bed(amp_scenario(909, 2000, 2, 10));
  auto canary = testbed::CanaryDeployment::create(*package_);
  ASSERT_TRUE(canary.ok());
  canary.value()->attach(bed);
  auto loop = FastLoop::deploy(*package_);
  ASSERT_TRUE(loop.ok());
  testbed::SafetyMonitor safety(*loop.value(), testbed::SafetyConfig{});
  safety.install(bed.network());
  bed.run(Duration::seconds(14));

  const auto report = testbed::make_road_test_report(
      *package_, *canary.value(), *loop.value(), safety, bed.network());
  EXPECT_EQ(report.task_name, "dns-amplification-ingress-drop");
  EXPECT_GT(report.enforcement.attack_dropped, 0u);
  EXPECT_FALSE(report.rolled_back);
  const auto text = report.to_string();
  EXPECT_NE(text.find("Road-test report"), std::string::npos);
  EXPECT_NE(text.find("canary (mirror)"), std::string::npos);
  EXPECT_NE(text.find("fast-loop latency"), std::string::npos);
  EXPECT_NE(text.find("held"), std::string::npos);
}

}  // namespace
}  // namespace campuslab::control

// ModelRegistry: CLMRG01 codec round trips, durable open/publish/
// promote/reload, audit-trail semantics (torn tails, no phantom
// promotions), fault-injected persistence, and the golden format
// fixture (tests/data/golden_registry_v1.clmr; regenerate intentional
// format changes with CAMPUSLAB_UPDATE_GOLDEN=1).
#include "campuslab/control/model_registry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "campuslab/resilience/fault.h"

namespace campuslab::control {
namespace {

namespace fs = std::filesystem;

// A tiny fitted tree, hand-written in the v1 text format so the test
// needs no training run and the golden fixture stays deterministic.
constexpr const char* kTreeText =
    "campuslab-tree v1\n"
    "2 2 3\n"
    "udp_fraction\n"
    "pkt_len\n"
    "benign\n"
    "attack\n"
    "0 3.5 1 2 100 0.5 0.5\n"
    "-1 0 -1 -1 75 0.75 0.25\n"
    "-1 0 -1 -1 25 0.125 0.875\n";

DeploymentPackage make_package(double lo0 = 0.0) {
  DeploymentPackage package;
  package.task = AutomationTask::dns_amplification_drop();
  auto tree = ml::DecisionTree::deserialize(kTreeText);
  EXPECT_TRUE(tree.ok());
  package.student = std::move(tree).value();
  package.quantizer =
      dataplane::Quantizer::from_levels({lo0, -2.5}, {0.25, 1.0});
  package.strategy = "tree_walk";
  package.resources.stages_used = 3;
  package.resources.tcam_entries = 128;
  package.resources.sram_bits = 4096;
  package.resources.register_arrays_used = 2;
  return package;
}

RegistryEntry make_entry(std::uint32_t version) {
  RegistryEntry entry;
  entry.version = version;
  entry.trained_at = Timestamp::from_nanos(1'000'000'000LL * version);
  entry.candidate_accuracy = 0.5 + 0.001 * version;
  entry.incumbent_accuracy = 0.5;
  entry.package = make_package(0.5 * version);
  return entry;
}

fs::path fresh_dir(const char* tag) {
  auto dir = fs::path(::testing::TempDir()) /
             (std::string("campuslab_registry_") + tag);
  fs::remove_all(dir);
  return dir;
}

void expect_entries_equal(const RegistryEntry& a, const RegistryEntry& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.trained_at.nanos(), b.trained_at.nanos());
  EXPECT_EQ(a.candidate_accuracy, b.candidate_accuracy);
  EXPECT_EQ(a.incumbent_accuracy, b.incumbent_accuracy);
  EXPECT_EQ(a.package.task.name, b.package.task.name);
  EXPECT_EQ(a.package.task.event, b.package.task.event);
  EXPECT_EQ(a.package.task.confidence_threshold,
            b.package.task.confidence_threshold);
  EXPECT_EQ(a.package.task.action, b.package.task.action);
  EXPECT_EQ(a.package.task.rate_limit_pps, b.package.task.rate_limit_pps);
  EXPECT_EQ(a.package.strategy, b.package.strategy);
  EXPECT_EQ(a.package.resources.stages_used, b.package.resources.stages_used);
  EXPECT_EQ(a.package.resources.tcam_entries,
            b.package.resources.tcam_entries);
  EXPECT_EQ(a.package.resources.sram_bits, b.package.resources.sram_bits);
  EXPECT_EQ(a.package.resources.register_arrays_used,
            b.package.resources.register_arrays_used);
  ASSERT_EQ(a.package.quantizer.n_features(),
            b.package.quantizer.n_features());
  for (std::size_t f = 0; f < a.package.quantizer.n_features(); ++f) {
    // Bit-exact: the recovered model must quantize identically.
    EXPECT_EQ(a.package.quantizer.lo(f), b.package.quantizer.lo(f));
    EXPECT_EQ(a.package.quantizer.step(f), b.package.quantizer.step(f));
  }
  EXPECT_EQ(a.package.student.serialize(), b.package.student.serialize());
}

// ------------------------------------------------------------- codec

TEST(RegistryCodec, EncodeDecodeRoundTrip) {
  RegistryFile file;
  file.active_version = 2;
  file.entries.push_back(make_entry(1));
  file.entries.push_back(make_entry(2));
  file.entries.push_back(make_entry(7));

  const auto bytes = encode_registry(file);
  auto decoded = decode_registry(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().active_version, 2u);
  ASSERT_EQ(decoded.value().entries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    expect_entries_equal(decoded.value().entries[i], file.entries[i]);
}

TEST(RegistryCodec, EmptyRegistryRoundTrips) {
  RegistryFile file;
  const auto bytes = encode_registry(file);
  auto decoded = decode_registry(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().active_version, 0u);
  EXPECT_TRUE(decoded.value().entries.empty());
}

TEST(RegistryCodec, EncodingIsDeterministic) {
  RegistryFile file;
  file.active_version = 1;
  file.entries.push_back(make_entry(1));
  EXPECT_EQ(encode_registry(file), encode_registry(file));
}

TEST(RegistryCodec, RejectsForeignMagicWithStableCode) {
  auto bytes = encode_registry(RegistryFile{});
  bytes[0] = 'X';
  auto decoded = decode_registry(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "registry_magic");
}

TEST(RegistryCodec, RejectsFutureVersionWithStableCode) {
  auto bytes = encode_registry(RegistryFile{});
  bytes[8] = kModelRegistryFormatVersion + 1;
  // Header checksum covers the version byte; reseal it so the version
  // check itself is what fires.
  auto decoded = decode_registry(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "registry_version");
}

TEST(RegistryCodec, RejectsTruncationWithStableCode) {
  RegistryFile file;
  file.entries.push_back(make_entry(1));
  const auto bytes = encode_registry(file);
  auto truncated = decode_registry(
      std::span<const std::uint8_t>(bytes).subspan(0, bytes.size() - 1));
  ASSERT_FALSE(truncated.ok());
  EXPECT_TRUE(truncated.error().code == "registry_truncated" ||
              truncated.error().code == "registry_checksum")
      << truncated.error().code;
}

TEST(RegistryCodec, RejectsPayloadFlipWithStableCode) {
  RegistryFile file;
  file.entries.push_back(make_entry(1));
  auto bytes = encode_registry(file);
  bytes[bytes.size() - 1] ^= 0x40;
  auto decoded = decode_registry(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "registry_checksum");
}

// ------------------------------------------------------- audit codec

TEST(AuditLineCodec, RoundTripsEveryKindAndEscapesDetail) {
  for (int k = 0; k <= 5; ++k) {
    AuditEvent event;
    event.seq = 41 + static_cast<std::uint64_t>(k);
    event.at = Timestamp::from_nanos(123'456'789 + k);
    event.kind = static_cast<AuditKind>(k);
    event.version = 9;
    event.detail = "cycle 3: tv=0.31 % done\nnext";
    const auto line = encode_audit_line(event);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    auto decoded = decode_audit_line(line);
    ASSERT_TRUE(decoded.has_value()) << line;
    EXPECT_EQ(decoded->seq, event.seq);
    EXPECT_EQ(decoded->at.nanos(), event.at.nanos());
    EXPECT_EQ(decoded->kind, event.kind);
    EXPECT_EQ(decoded->version, event.version);
    EXPECT_EQ(decoded->detail, event.detail);
  }
}

TEST(AuditLineCodec, TamperedLineIsRejected) {
  AuditEvent event;
  event.seq = 7;
  event.kind = AuditKind::kPromoted;
  event.version = 3;
  auto line = encode_audit_line(event);
  line[3] ^= 1;
  EXPECT_FALSE(decode_audit_line(line).has_value());
  EXPECT_FALSE(decode_audit_line("").has_value());
  EXPECT_FALSE(decode_audit_line("v1 garbage").has_value());
  // A torn (half-written) line fails its checksum.
  EXPECT_FALSE(
      decode_audit_line(line.substr(0, line.size() / 2)).has_value());
}

// ---------------------------------------------------------- registry

TEST(ModelRegistry, EphemeralModeNeedsNoFilesystem) {
  auto reg = ModelRegistry::open("");
  ASSERT_TRUE(reg.ok());
  EXPECT_FALSE(reg.value().persistent());
  ASSERT_TRUE(reg.value().publish(make_entry(1), "initial").ok());
  ASSERT_TRUE(reg.value()
                  .promote(1, Timestamp::from_nanos(5), "initial")
                  .ok());
  EXPECT_EQ(reg.value().active_version(), 1u);
  EXPECT_EQ(reg.value().audit_trail().size(), 2u);
}

TEST(ModelRegistry, PublishPromoteSurviveReload) {
  const auto dir = fresh_dir("reload");
  {
    auto reg = ModelRegistry::open(dir.string());
    ASSERT_TRUE(reg.ok()) << reg.error().message;
    ASSERT_TRUE(reg.value().publish(make_entry(1), "initial").ok());
    ASSERT_TRUE(
        reg.value().promote(1, Timestamp::from_nanos(10), "initial").ok());
    ASSERT_TRUE(reg.value().publish(make_entry(2), "cycle 1").ok());
  }
  auto reopened = ModelRegistry::open(dir.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(reopened.value().recovered_from_corruption());
  EXPECT_EQ(reopened.value().active_version(), 1u);
  ASSERT_EQ(reopened.value().entries().size(), 2u);
  expect_entries_equal(reopened.value().entries()[0], make_entry(1));
  EXPECT_EQ(reopened.value().next_version(), 3u);

  // Audit order: published(1), promoted(1), published(2).
  const auto& audit = reopened.value().audit_trail();
  ASSERT_EQ(audit.size(), 3u);
  EXPECT_EQ(audit[0].kind, AuditKind::kPublished);
  EXPECT_EQ(audit[1].kind, AuditKind::kPromoted);
  EXPECT_EQ(audit[1].version, 1u);
  EXPECT_EQ(audit[2].kind, AuditKind::kPublished);
  EXPECT_EQ(audit[2].version, 2u);
  fs::remove_all(dir);
}

TEST(ModelRegistry, PromoteToOlderVersionIsRollback) {
  auto reg = ModelRegistry::open("");
  ASSERT_TRUE(reg.ok());
  ASSERT_TRUE(reg.value().publish(make_entry(1)).ok());
  ASSERT_TRUE(reg.value().publish(make_entry(2)).ok());
  ASSERT_TRUE(reg.value().promote(2, Timestamp::from_nanos(1)).ok());
  ASSERT_TRUE(reg.value().promote(1, Timestamp::from_nanos(2)).ok());
  EXPECT_EQ(reg.value().active_version(), 1u);
  auto missing = reg.value().promote(9, Timestamp::from_nanos(3));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, "registry_not_found");
}

TEST(ModelRegistry, VersionsMustAscend) {
  auto reg = ModelRegistry::open("");
  ASSERT_TRUE(reg.ok());
  ASSERT_TRUE(reg.value().publish(make_entry(5)).ok());
  auto stale = reg.value().publish(make_entry(5));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, "registry_version_order");
}

TEST(ModelRegistry, PruneKeepsTheActiveVersion) {
  auto reg = ModelRegistry::open("");
  ASSERT_TRUE(reg.ok());
  reg.value().max_entries = 3;
  ASSERT_TRUE(reg.value().publish(make_entry(1)).ok());
  ASSERT_TRUE(reg.value().promote(1, Timestamp::from_nanos(1)).ok());
  for (std::uint32_t v = 2; v <= 6; ++v)
    ASSERT_TRUE(reg.value().publish(make_entry(v)).ok());
  EXPECT_EQ(reg.value().entries().size(), 3u);
  EXPECT_NE(reg.value().find(1), nullptr)
      << "pruning evicted the active version";
  EXPECT_EQ(reg.value().active_version(), 1u);
}

TEST(ModelRegistry, TornAuditTailIsDropped) {
  const auto dir = fresh_dir("torn");
  {
    auto reg = ModelRegistry::open(dir.string());
    ASSERT_TRUE(reg.ok());
    ASSERT_TRUE(reg.value().publish(make_entry(1)).ok());
    ASSERT_TRUE(reg.value().promote(1, Timestamp::from_nanos(1)).ok());
  }
  {
    // Simulate a kill mid-append: a half line, then (unreachable in
    // reality, but adversarial here) a valid-looking line after it.
    std::ofstream audit(dir / "audit.log", std::ios::app);
    audit << "v1 3 17 aborted 1 de";  // no checksum, no newline
  }
  auto reopened = ModelRegistry::open(dir.string());
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened.value().audit_trail().size(), 2u);
  // Appends after the torn tail reuse its sequence number cleanly.
  ASSERT_TRUE(reopened.value()
                  .record(AuditKind::kRecovered, 1,
                          Timestamp::from_nanos(2), "post-torn")
                  .ok());
  EXPECT_EQ(reopened.value().audit_trail().back().seq, 3u);
  fs::remove_all(dir);
}

TEST(ModelRegistry, CorruptRegistryDegradesToEmptyStart) {
  const auto dir = fresh_dir("corrupt");
  {
    auto reg = ModelRegistry::open(dir.string());
    ASSERT_TRUE(reg.ok());
    ASSERT_TRUE(reg.value().publish(make_entry(1)).ok());
  }
  {
    std::ofstream out(dir / "registry.clmr",
                      std::ios::binary | std::ios::trunc);
    out << "not a registry at all";
  }
  auto reopened = ModelRegistry::open(dir.string());
  ASSERT_TRUE(reopened.ok()) << "corrupt file must not fail open()";
  EXPECT_TRUE(reopened.value().recovered_from_corruption());
  EXPECT_TRUE(reopened.value().entries().empty());
  EXPECT_EQ(reopened.value().active_version(), 0u);
  EXPECT_TRUE(fs::exists(dir / "registry.clmr.corrupt"))
      << "bad file should be quarantined, not deleted";
  // And the registry is usable immediately.
  ASSERT_TRUE(reopened.value().publish(make_entry(1)).ok());
  fs::remove_all(dir);
}

TEST(ModelRegistry, InjectedPersistFailureRevertsMemoryState) {
  auto reg = ModelRegistry::open("");
  ASSERT_TRUE(reg.ok());
  ASSERT_TRUE(reg.value().publish(make_entry(1)).ok());
  {
    resilience::FaultPlan plan;
    plan.faults.push_back(resilience::FaultSpec{
        "control.registry", resilience::FaultKind::kFail, 1});
    resilience::FaultScope scope(std::move(plan));
    auto failed = reg.value().publish(make_entry(2));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().code, "fault_injected");
    EXPECT_EQ(reg.value().entries().size(), 1u)
        << "unpersisted publish must not linger in memory";
    auto promoted = reg.value().promote(1, Timestamp::from_nanos(1));
    ASSERT_FALSE(promoted.ok());
    EXPECT_EQ(reg.value().active_version(), 0u)
        << "unpersisted promote must not flip the active version";
  }
  // Injector disarmed: the same mutations now succeed (retry story).
  ASSERT_TRUE(reg.value().publish(make_entry(2)).ok());
  ASSERT_TRUE(reg.value().promote(2, Timestamp::from_nanos(2)).ok());
  EXPECT_EQ(reg.value().active_version(), 2u);
}

// ------------------------------------------------------ golden fixture

fs::path golden_path() {
  return fs::path(CAMPUSLAB_TEST_DATA_DIR) / "golden_registry_v1.clmr";
}

TEST(ModelRegistry, GoldenFixturePinsFormat) {
  RegistryFile file;
  file.active_version = 2;
  file.entries.push_back(make_entry(1));
  file.entries.push_back(make_entry(2));
  const auto bytes = encode_registry(file);

  // Layout invariants, independent of the fixture file.
  const std::uint8_t magic[8] = {'C', 'L', 'M', 'R', 'G', '0', '1', '\n'};
  ASSERT_GE(bytes.size(), 32u);
  EXPECT_TRUE(std::equal(magic, magic + 8, bytes.begin()));
  EXPECT_EQ(bytes[8], kModelRegistryFormatVersion);

  const auto path = golden_path();
  if (std::getenv("CAMPUSLAB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden fixture regenerated at " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing " << path
                  << " — regenerate with CAMPUSLAB_UPDATE_GOLDEN=1";
  std::vector<std::uint8_t> golden{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  EXPECT_EQ(bytes, golden)
      << "registry format changed; if intentional, bump "
         "kModelRegistryFormatVersion and regenerate with "
         "CAMPUSLAB_UPDATE_GOLDEN=1";

  auto decoded = decode_registry(golden);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().active_version, 2u);
  ASSERT_EQ(decoded.value().entries.size(), 2u);
  expect_entries_equal(decoded.value().entries[1], make_entry(2));
}

}  // namespace
}  // namespace campuslab::control

// Tests for campuslab::capture — SPSC ring correctness (including a
// two-thread stress test), pcap write/read round-trips, flow metering
// semantics, and the capture engine's drop accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "campuslab/capture/engine.h"
#include "campuslab/capture/flow.h"
#include "campuslab/capture/pcap.h"
#include "campuslab/capture/spsc_ring.h"
#include "campuslab/sim/simulator.h"

namespace campuslab::capture {
namespace {

using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;
using packet::PacketBuilder;
using packet::TcpFlags;
using packet::TrafficLabel;
using sim::Direction;

Endpoint ep(std::uint32_t id, Ipv4Address ip, std::uint16_t port) {
  return Endpoint{MacAddress::from_id(id), ip, port};
}

packet::Packet make_udp(double t_s, std::uint16_t sport = 1000,
                        std::uint16_t dport = 53, std::size_t payload = 64,
                        TrafficLabel label = TrafficLabel::kBenign) {
  return PacketBuilder(Timestamp::from_seconds(t_s))
      .udp(ep(1, Ipv4Address(10, 0, 16, 2), sport),
           ep(2, Ipv4Address(8, 8, 8, 8), dport))
      .payload_size(payload)
      .label(label)
      .build();
}

// -------------------------------------------------------------- SpscRing

TEST(SpscRing, PushPopFifo) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_TRUE(!ring.try_push(99));
  int v;
  ASSERT_TRUE(ring.try_pop(v));
  EXPECT_TRUE(ring.try_push(99));  // slot freed
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t(i)));
    std::uint64_t v;
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, expect++);
  }
}

TEST(SpscRing, TwoThreadStressPreservesSequence) {
  SpscRing<std::uint64_t> ring(1024);
  constexpr std::uint64_t kCount = 2'000'000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (ring.try_push(std::uint64_t(i))) ++i;
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t v;
  while (expected < kCount) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ------------------------------------------------------------------ Pcap

class PcapFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("campuslab_pcap_test_" +
             std::to_string(::getpid()) + "_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()) +
             ".pcap");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(PcapFixture, WriteReadRoundTrip) {
  auto writer = PcapWriter::open(path_.string());
  ASSERT_TRUE(writer.ok());
  std::vector<packet::Packet> sent;
  for (int i = 0; i < 50; ++i) {
    sent.push_back(make_udp(0.001 * i, static_cast<std::uint16_t>(1000 + i),
                            53, static_cast<std::size_t>(20 + i * 7)));
    ASSERT_TRUE(writer.value().write(sent.back()).ok());
  }
  ASSERT_TRUE(writer.value().flush().ok());
  EXPECT_EQ(writer.value().records_written(), 50u);

  auto reader = PcapReader::open(path_.string());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().nanosecond_resolution());
  auto all = reader.value().read_all();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(all.value()[i].ts, sent[i].ts);
    EXPECT_EQ(all.value()[i].copy_bytes(), sent[i].copy_bytes());
  }
}

TEST_F(PcapFixture, NanosecondTimestampsPreserved) {
  auto writer = PcapWriter::open(path_.string());
  ASSERT_TRUE(writer.ok());
  auto pkt = make_udp(0);
  pkt.ts = Timestamp::from_nanos(1'234'567'891'234'567);
  ASSERT_TRUE(writer.value().write(pkt).ok());
  ASSERT_TRUE(writer.value().flush().ok());

  auto reader = PcapReader::open(path_.string());
  ASSERT_TRUE(reader.ok());
  auto r = reader.value().next();
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().has_value());
  EXPECT_EQ(r.value()->ts.nanos(), 1'234'567'891'234'567);
}

TEST_F(PcapFixture, SnaplenTruncates) {
  auto writer = PcapWriter::open(path_.string(), 100);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().write(make_udp(0, 1, 2, 600)).ok());
  ASSERT_TRUE(writer.value().flush().ok());
  auto reader = PcapReader::open(path_.string());
  ASSERT_TRUE(reader.ok());
  auto r = reader.value().next();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->size(), 100u);
}

TEST_F(PcapFixture, RejectsGarbageFile) {
  {
    std::ofstream out(path_);
    out << "this is not a pcap file at all, not even close";
  }
  EXPECT_FALSE(PcapReader::open(path_.string()).ok());
}

TEST_F(PcapFixture, MissingFileFails) {
  EXPECT_FALSE(PcapReader::open("/nonexistent/dir/x.pcap").ok());
}

TEST_F(PcapFixture, TruncatedRecordReported) {
  auto writer = PcapWriter::open(path_.string());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().write(make_udp(0)).ok());
  ASSERT_TRUE(writer.value().flush().ok());
  // Chop the file mid-record.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 10);
  auto reader = PcapReader::open(path_.string());
  ASSERT_TRUE(reader.ok());
  auto r = reader.value().next();
  EXPECT_FALSE(r.ok());
}

// ------------------------------------------------------------- FlowMeter

TEST(FlowMeter, AggregatesBidirectionalFlow) {
  FlowMeter meter;
  std::vector<FlowRecord> records;
  meter.set_sink([&](const FlowRecord& r) { records.push_back(r); });

  const auto a = ep(1, Ipv4Address(10, 0, 16, 2), 5555);
  const auto b = ep(2, Ipv4Address(1, 2, 3, 4), 80);
  // Forward SYN, reverse SYN-ACK, forward ACK + data.
  meter.offer(PacketBuilder(Timestamp::from_seconds(1.0))
                  .tcp(a, b, TcpFlags::kSyn)
                  .build(),
              Direction::kOutbound);
  meter.offer(PacketBuilder(Timestamp::from_seconds(1.05))
                  .tcp(b, a, TcpFlags::kSyn | TcpFlags::kAck)
                  .build(),
              Direction::kInbound);
  meter.offer(PacketBuilder(Timestamp::from_seconds(1.1))
                  .tcp(a, b, TcpFlags::kAck | TcpFlags::kPsh)
                  .payload_size(500)
                  .build(),
              Direction::kOutbound);
  EXPECT_EQ(meter.active_flows(), 1u);
  meter.flush();
  ASSERT_EQ(records.size(), 1u);
  const auto& r = records[0];
  EXPECT_EQ(r.packets, 3u);
  EXPECT_EQ(r.fwd_packets, 2u);
  EXPECT_EQ(r.rev_packets, 1u);
  EXPECT_EQ(r.syn_count, 1u);
  EXPECT_EQ(r.synack_count, 1u);
  EXPECT_EQ(r.psh_count, 1u);
  EXPECT_EQ(r.payload_bytes, 500u);
  EXPECT_EQ(r.initial_direction, Direction::kOutbound);
  EXPECT_EQ(r.tuple.src, a.ip);
  EXPECT_EQ(r.duration(), Duration::millis(100));
}

TEST(FlowMeter, IdleTimeoutEvicts) {
  FlowMeterConfig cfg;
  cfg.idle_timeout = Duration::seconds(2);
  FlowMeter meter(cfg);
  std::vector<FlowRecord> records;
  meter.set_sink([&](const FlowRecord& r) { records.push_back(r); });

  meter.offer(make_udp(1.0), Direction::kOutbound);
  meter.offer(make_udp(1.5), Direction::kOutbound);
  EXPECT_EQ(meter.active_flows(), 1u);
  meter.sweep(Timestamp::from_seconds(4.0));
  EXPECT_EQ(meter.active_flows(), 0u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].packets, 2u);
  EXPECT_EQ(meter.stats().flows_evicted_idle, 1u);
}

TEST(FlowMeter, ActiveTimeoutSplitsLongFlow) {
  FlowMeterConfig cfg;
  cfg.active_timeout = Duration::seconds(10);
  cfg.idle_timeout = Duration::seconds(60);
  FlowMeter meter(cfg);
  std::vector<FlowRecord> records;
  meter.set_sink([&](const FlowRecord& r) { records.push_back(r); });

  for (int i = 0; i <= 25; ++i)
    meter.offer(make_udp(1.0 * i), Direction::kOutbound);
  meter.flush();
  // 26 packets over 25s with a 10s active timeout -> >= 2 records.
  EXPECT_GE(records.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& r : records) total += r.packets;
  EXPECT_EQ(total, 26u);
}

TEST(FlowMeter, DistinctTuplesDistinctFlows) {
  FlowMeter meter;
  for (int i = 0; i < 10; ++i)
    meter.offer(make_udp(1.0, static_cast<std::uint16_t>(1000 + i)),
                Direction::kOutbound);
  EXPECT_EQ(meter.active_flows(), 10u);
  EXPECT_EQ(meter.stats().flows_created, 10u);
}

TEST(FlowMeter, MajorityLabelAndDnsFlag) {
  FlowMeter meter;
  std::vector<FlowRecord> records;
  meter.set_sink([&](const FlowRecord& r) { records.push_back(r); });
  meter.offer(make_udp(1.0, 2000, 53, 64, TrafficLabel::kDnsAmplification),
              Direction::kInbound);
  meter.offer(make_udp(1.1, 2000, 53, 64, TrafficLabel::kDnsAmplification),
              Direction::kInbound);
  meter.offer(make_udp(1.2, 2000, 53, 64, TrafficLabel::kBenign),
              Direction::kInbound);
  meter.flush();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].majority_label(), TrafficLabel::kDnsAmplification);
  EXPECT_TRUE(records[0].saw_dns);
}

TEST(FlowMeter, AttackIfAnyLabelingBeatsBenignTies) {
  // A brute-force attempt: equal attack and benign (victim response)
  // packet counts must still label the flow as the attack.
  capture::FlowRecord f;
  f.label_packets[0] = 5;
  f.label_packets[static_cast<std::size_t>(
      TrafficLabel::kSshBruteForce)] = 5;
  EXPECT_EQ(f.majority_label(), TrafficLabel::kSshBruteForce);
  // Even a single attack packet taints the flow.
  capture::FlowRecord g;
  g.label_packets[0] = 100;
  g.label_packets[static_cast<std::size_t>(TrafficLabel::kPortScan)] = 1;
  EXPECT_EQ(g.majority_label(), TrafficLabel::kPortScan);
  // Pure benign stays benign.
  capture::FlowRecord h;
  h.label_packets[0] = 10;
  EXPECT_EQ(h.majority_label(), TrafficLabel::kBenign);
}

TEST(FlowMeter, CapacityCapEvictsIdlest) {
  FlowMeterConfig cfg;
  cfg.max_flows = 5;
  FlowMeter meter(cfg);
  std::vector<FlowRecord> records;
  meter.set_sink([&](const FlowRecord& r) { records.push_back(r); });
  for (int i = 0; i < 8; ++i)
    meter.offer(make_udp(1.0 + 0.1 * i, static_cast<std::uint16_t>(1000 + i)),
                Direction::kOutbound);
  EXPECT_LE(meter.active_flows(), 5u);
  EXPECT_EQ(meter.stats().flows_evicted_capacity, 3u);
  // Sampled eviction: evicted entries are real completed flows.
  ASSERT_EQ(records.size(), 3u);
  for (const auto& r : records) {
    EXPECT_GE(r.tuple.src_port, 1000);
    EXPECT_LT(r.tuple.src_port, 1008);
  }
}

// Property: across random traffic, every offered IPv4 packet is
// accounted in exactly one evicted flow record (conservation).
TEST(FlowMeterProperty, PacketConservation) {
  FlowMeterConfig cfg;
  cfg.idle_timeout = Duration::seconds(5);
  cfg.active_timeout = Duration::seconds(20);
  FlowMeter meter(cfg);
  std::uint64_t recorded_packets = 0;
  std::uint64_t recorded_bytes = 0;
  meter.set_sink([&](const FlowRecord& r) {
    recorded_packets += r.packets;
    recorded_bytes += r.bytes;
  });
  Rng rng(0xC0A5);
  std::uint64_t offered_bytes = 0;
  constexpr int kPackets = 20000;
  for (int i = 0; i < kPackets; ++i) {
    const auto pkt = make_udp(
        rng.uniform(0, 300),
        static_cast<std::uint16_t>(1000 + rng.below(50)),
        static_cast<std::uint16_t>(rng.chance(0.5) ? 53 : 443),
        rng.below(800));
    offered_bytes += pkt.size();
    meter.offer(pkt, rng.chance(0.5) ? Direction::kInbound
                                     : Direction::kOutbound);
  }
  meter.flush();
  EXPECT_EQ(recorded_packets, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(recorded_bytes, offered_bytes);
  EXPECT_EQ(meter.stats().packets_seen,
            static_cast<std::uint64_t>(kPackets));
}

TEST(FlowMeter, NonIpCounted) {
  FlowMeter meter;
  packet::Packet junk;
  junk.ts = Timestamp::from_seconds(1);
  junk.assign(60, 0xEE);
  meter.offer(junk, Direction::kInbound);
  EXPECT_EQ(meter.stats().non_ip_packets, 1u);
  EXPECT_EQ(meter.active_flows(), 0u);
}

// --------------------------------------------------------- CaptureEngine

TEST(CaptureEngine, DeliversToAllSinksInOrder) {
  CaptureEngine engine;
  std::vector<std::uint16_t> seen_a, seen_b;
  engine.add_sink([&](const TaggedPacket& t) {
    packet::PacketView v(t.pkt);
    seen_a.push_back(v.five_tuple()->src_port);
  });
  engine.add_sink([&](const TaggedPacket& t) {
    packet::PacketView v(t.pkt);
    seen_b.push_back(v.five_tuple()->src_port);
  });
  for (int i = 0; i < 20; ++i)
    engine.offer(make_udp(0.01 * i, static_cast<std::uint16_t>(3000 + i)),
                 Direction::kInbound);
  EXPECT_EQ(engine.drain(), 20u);
  ASSERT_EQ(seen_a.size(), 20u);
  EXPECT_EQ(seen_a, seen_b);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(seen_a[static_cast<std::size_t>(i)], 3000 + i);
}

TEST(CaptureEngine, DropsWhenRingFullAndCounts) {
  CaptureConfig cfg;
  cfg.ring_capacity = 8;
  CaptureEngine engine(cfg);
  int accepted = 0;
  for (int i = 0; i < 20; ++i)
    if (engine.offer(make_udp(0.01 * i), Direction::kInbound)) ++accepted;
  EXPECT_EQ(accepted, 8);
  EXPECT_EQ(engine.stats().offered, 20u);
  EXPECT_EQ(engine.stats().accepted, 8u);
  EXPECT_EQ(engine.stats().dropped, 12u);
  EXPECT_NEAR(engine.stats().loss_rate(), 0.6, 1e-12);
  EXPECT_EQ(engine.drain(), 8u);
  EXPECT_EQ(engine.stats().consumed, 8u);
}

TEST(CaptureEngine, PollBatchesBounded) {
  CaptureEngine engine;
  for (int i = 0; i < 100; ++i)
    engine.offer(make_udp(0.001 * i), Direction::kInbound);
  EXPECT_EQ(engine.poll(30), 30u);
  EXPECT_EQ(engine.ring_occupancy(), 70u);
  EXPECT_EQ(engine.drain(), 70u);
}

// ------------------------------------------- Integration with simulator

TEST(CaptureIntegration, SimToFlowRecordsWithLabels) {
  sim::ScenarioConfig scenario;
  scenario.campus.seed = 21;
  scenario.campus.diurnal = false;
  scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(1000)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(5)));
  sim::CampusSimulator simulator(scenario);

  CaptureEngine engine;
  FlowMeter meter;
  std::vector<FlowRecord> flows;
  meter.set_sink([&](const FlowRecord& r) { flows.push_back(r); });
  engine.add_sink(
      [&](const TaggedPacket& t) { meter.offer(t.pkt, t.dir); });
  simulator.network().set_tap(
      [&](const packet::Packet& p, Direction d) {
        engine.offer(p, d);
        engine.poll(64);  // consume inline: same-thread capture
      });
  simulator.run_for(Duration::seconds(10));
  engine.drain();
  meter.flush();

  ASSERT_GT(flows.size(), 50u);
  std::size_t attack_flows = 0, benign_flows = 0;
  for (const auto& f : flows) {
    EXPECT_GT(f.packets, 0u);
    EXPECT_GE(f.last_ts, f.first_ts);
    if (is_attack(f.majority_label())) ++attack_flows;
    else ++benign_flows;
  }
  EXPECT_GT(attack_flows, 0u);
  EXPECT_GT(benign_flows, 20u);
  EXPECT_EQ(engine.stats().dropped, 0u);  // lossless at this load
}

}  // namespace
}  // namespace campuslab::capture

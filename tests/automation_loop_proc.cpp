// Crash-chaos helper for the automation loop (loop_crash_recovery_test).
//
// Runs the closed loop against a durable registry in a child process:
//
//   automation_loop_proc <registry_dir> <status_file> crash   <seed>
//   automation_loop_proc <registry_dir> <status_file> recover <seed>
//
// crash mode bootstraps v1, arms a stage hook that SIGKILLs the
// process the moment a seed-chosen stage (train / extract / compile /
// canary / swap) of the NEXT cycle is entered, then drives a retrain
// cycle — the process dies mid-stage with no flush and no farewell.
// recover mode restarts against the same registry directory with a
// fresh, data-free testbed and reports what start() redeployed.
//
// Exit codes (crash mode should never exit — it dies by signal):
//   2  start() failed        3  the kill stage was never reached
//   4  recovery disagreed with the registry   5  bad usage
#include <csignal>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "campuslab/testbed/automation_loop.h"

namespace {

using namespace campuslab;

testbed::TestbedConfig drift_scenario(std::uint64_t seed) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2400})
          .rate(1200)
          .starting_at(Timestamp::from_seconds(4))
          .lasting(Duration::seconds(14)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 300,
                                           .reflectors = 20})
          .rate(60)
          .starting_at(Timestamp::from_seconds(45))
          .lasting(Duration::seconds(35)));
  cfg.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.5;
  cfg.collector.seed = seed + 5;
  return cfg;
}

control::AutomationConfig loop_config(std::uint64_t seed,
                                      std::string registry_dir) {
  control::AutomationConfig cfg;
  cfg.development.teacher.n_trees = 12;
  cfg.development.teacher.seed = seed;
  cfg.development.extraction.student_max_depth = 5;
  cfg.development.extraction.synthetic_samples = 3000;
  cfg.development.extraction.seed = seed + 1;
  cfg.development.seed = seed + 2;
  cfg.registry_directory = std::move(registry_dir);
  cfg.drift_check_interval = Duration::seconds(5);
  cfg.canary_duration = Duration::seconds(5);
  // Fully permissive gate: the cycle must march through every stage so
  // the seed-chosen kill point is always reached.
  cfg.gate.min_precision = 0.0;
  cfg.gate.min_block_rate = 0.0;
  cfg.gate.max_benign_loss = 1.0;
  cfg.gate.min_observed = 1;
  // Candidate always wins the fresh-window comparison: a kSwap-stage
  // kill target must actually reach the swap.
  cfg.promote_margin = -1.0;
  cfg.min_window_rows = 200;
  cfg.retry.initial_backoff = Duration::micros(10);
  cfg.retry.max_backoff = Duration::micros(100);
  cfg.seed = seed + 3;
  return cfg;
}

int run_crash(const std::string& registry_dir,
              const std::string& status_file, std::uint64_t seed) {
  testbed::Testbed bed(drift_scenario(seed));
  bed.run(Duration::seconds(20));
  control::AutomationLoop loop(loop_config(seed, registry_dir), bed);
  if (!loop.start().ok()) return 2;

  {
    std::ofstream out(status_file, std::ios::trunc);
    out << "promoted " << loop.registry().active_version() << '\n';
  }

  // The hook arms only after bootstrap: the victim is a mid-CYCLE
  // stage, with v1 already durable on disk.
  const control::LoopStage targets[] = {
      control::LoopStage::kTrain, control::LoopStage::kExtract,
      control::LoopStage::kCompile, control::LoopStage::kCanary,
      control::LoopStage::kSwap};
  const auto target = targets[SplitMix64(seed).next() % 5];
  loop.set_stage_hook([target](control::LoopStage stage) {
    if (stage == target) ::kill(::getpid(), SIGKILL);
  });

  bed.run(Duration::seconds(30));       // fresh phase-2 data
  (void)loop.trigger_cycle();           // dies in train/extract/compile…
  bed.run(Duration::seconds(15));       // …or in canary/swap on the clock
  return 3;                             // the kill stage was never entered
}

int run_recover(const std::string& registry_dir,
                const std::string& status_file, std::uint64_t seed) {
  // A restart has no gathered data: recovery must come entirely from
  // the registry directory.
  testbed::TestbedConfig fresh;
  fresh.scenario.campus.seed = seed + 17;
  fresh.collector.labeling.binary_target =
      packet::TrafficLabel::kDnsAmplification;
  testbed::Testbed bed(fresh);
  control::AutomationLoop loop(loop_config(seed, registry_dir), bed);
  if (!loop.start().ok()) return 2;

  const auto deployed = loop.handle().version();
  const auto active = loop.registry().active_version();
  std::ofstream out(status_file, std::ios::trunc);
  out << "recovered " << deployed << " active " << active << " entries "
      << loop.registry().entries().size() << '\n';
  if (deployed == 0 || deployed != active) return 4;
  // Serve a little traffic on the recovered model: the loop is live,
  // not just reloaded.
  bed.run(Duration::seconds(5));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) return 5;
  const std::string registry_dir = argv[1];
  const std::string status_file = argv[2];
  const std::string mode = argv[3];
  const std::uint64_t seed = std::stoull(argv[4]);
  if (mode == "crash") return run_crash(registry_dir, status_file, seed);
  if (mode == "recover")
    return run_recover(registry_dir, status_file, seed);
  return 5;
}

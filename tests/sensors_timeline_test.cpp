// Tests for the complementary-sensor emulation and the cross-source
// incident timeline — §5's "complementary data" and "linked" store.
#include <gtest/gtest.h>

#include "campuslab/store/timeline.h"
#include "campuslab/testbed/testbed.h"

namespace campuslab::testbed {
namespace {

using packet::TrafficLabel;

TEST(Sensors, QuietCampusEmitsOnlyRoutineHum) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = 51001;
  cfg.scenario.campus.diurnal = false;
  cfg.sensors.dhcp_period = Duration::seconds(10);
  Testbed bed(cfg);
  bed.run(Duration::seconds(60));
  ASSERT_TRUE(bed.sensors().has_value());
  const auto& stats = bed.sensors()->stats();
  EXPECT_GE(stats.dhcp_events, 4u);
  // Benign traffic produces few or no security events; allow sshd noise
  // from legitimate bastion logins.
  EXPECT_EQ(stats.firewall_events, 0u);
  EXPECT_EQ(stats.ids_events, 0u);
}

TEST(Sensors, PortScanLightsUpTheFirewall) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = 51002;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kPortScan)
          .rate(200)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(15)));
  Testbed bed(cfg);
  bed.run(Duration::seconds(20));

  EXPECT_GT(bed.sensors()->stats().firewall_events, 500u);
  store::LogQuery q;
  q.source = "firewall";
  const auto events = bed.store().query_logs(q);
  ASSERT_GT(events.size(), 500u);
  EXPECT_NE(events[0].message.find("blocked"), std::string::npos);
}

TEST(Sensors, BruteForceFillsTheAuthLog) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = 51003;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSshBruteForce)
          .rate(20)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(15)));
  Testbed bed(cfg);
  bed.run(Duration::seconds(20));

  store::LogQuery q;
  q.source = "sshd";
  q.subject = bed.network().topology().ssh_gateway().endpoint.ip;
  EXPECT_GT(bed.store().query_logs(q).size(), 150u);
}

TEST(Sensors, AmplificationTriggersIdsSamples) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = 51004;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2500})
          .rate(2000)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(12)));
  cfg.collector.benign_sample_rate = 0.01;
  cfg.collector.attack_sample_rate = 0.01;
  Testbed bed(cfg);
  bed.run(Duration::seconds(16));
  // ~24k oversized responses at 1% sampling.
  EXPECT_GT(bed.sensors()->stats().ids_events, 50u);
}

TEST(Sensors, CanBeDisabled) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = 51005;
  cfg.enable_sensors = false;
  Testbed bed(cfg);
  bed.run(Duration::seconds(5));
  EXPECT_FALSE(bed.sensors().has_value());
  EXPECT_EQ(bed.store().catalog().total_log_events, 0u);
}

TEST(Timeline, MergesFlowsAndLogsChronologically) {
  TestbedConfig cfg;
  cfg.scenario.campus.seed = 51006;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2500})
          .rate(800)
          .starting_at(Timestamp::from_seconds(5))
          .lasting(Duration::seconds(8)));
  cfg.collector.benign_sample_rate = 0.01;
  cfg.collector.attack_sample_rate = 0.01;
  Testbed bed(cfg);
  bed.run(Duration::seconds(16));
  bed.flush_flows();

  const auto victim =
      bed.network().topology().clients().front().endpoint.ip;
  const auto timeline = store::incident_timeline(
      bed.store(), victim, Timestamp::from_seconds(0),
      Timestamp::from_seconds(16));
  ASSERT_GT(timeline.size(), 10u);

  bool saw_flow = false, saw_attack_flow = false;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(timeline[i].ts, timeline[i - 1].ts);
    }
    if (timeline[i].kind == store::TimelineEntry::Kind::kFlowStart) {
      saw_flow = true;
      if (timeline[i].severity >= 2) saw_attack_flow = true;
    }
  }
  EXPECT_TRUE(saw_flow);
  EXPECT_TRUE(saw_attack_flow);

  const auto text = store::to_string(timeline);
  EXPECT_NE(text.find("FLOW"), std::string::npos);
  EXPECT_NE(text.find("dns_amplification"), std::string::npos);
}

TEST(Timeline, RespectsWindowAndCap) {
  store::DataStore store;
  const packet::Ipv4Address host(10, 9, 16, 2);
  for (int i = 0; i < 50; ++i) {
    store.ingest_log(store::LogEvent{Timestamp::from_seconds(i), "syslog",
                                     0, host, "tick"});
  }
  store::TimelineOptions opt;
  opt.max_entries = 10;
  const auto timeline = store::incident_timeline(
      store, host, Timestamp::from_seconds(20),
      Timestamp::from_seconds(40), opt);
  EXPECT_EQ(timeline.size(), 10u);
  for (const auto& e : timeline) {
    EXPECT_GE(e.ts, Timestamp::from_seconds(20));
    EXPECT_LE(e.ts, Timestamp::from_seconds(40));
  }
}

TEST(Timeline, BenignFlowFilterKeepsLogs) {
  store::DataStore store;
  const packet::Ipv4Address host(10, 9, 16, 3);
  capture::FlowRecord tiny;
  tiny.tuple = packet::FiveTuple{host, packet::Ipv4Address(1, 1, 1, 1),
                                 1000, 80, 6};
  tiny.first_ts = tiny.last_ts = Timestamp::from_seconds(5);
  tiny.packets = 1;
  tiny.bytes = 60;
  tiny.label_packets[0] = 1;
  store.ingest(tiny);
  store.ingest_log(store::LogEvent{Timestamp::from_seconds(6), "ids", 2,
                                   host, "alert"});

  store::TimelineOptions opt;
  opt.min_benign_flow_bytes = 1000;  // filters the tiny benign flow
  const auto timeline = store::incident_timeline(
      store, host, Timestamp::from_seconds(0),
      Timestamp::from_seconds(10), opt);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].source, "ids");
}

}  // namespace
}  // namespace campuslab::testbed

// Real two-thread stress tests for SpscRing and the CaptureEngine's
// live-sampled stats — the concurrency harness for the sharded capture
// pipeline. Run these under -fsanitize=thread (CAMPUSLAB_SANITIZE) to
// verify the memory-ordering story, not just the happy path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "campuslab/capture/engine.h"
#include "campuslab/capture/spsc_ring.h"
#include "campuslab/packet/builder.h"

namespace campuslab::capture {
namespace {

constexpr std::uint64_t kOps = 1'000'000;

/// Move-only payload: the ring must never copy it, and a lost or
/// duplicated item shows up as a null/dangling pointer or a bad value.
using Payload = std::unique_ptr<std::uint64_t>;

// Producer retries until accepted: every op arrives exactly once, in
// FIFO order, across real threads.
TEST(SpscRingConcurrency, MoveOnlyFifoNoLossWithRetry) {
  SpscRing<Payload> ring(1024);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kOps;) {
      auto item = std::make_unique<std::uint64_t>(i);
      if (ring.try_push(std::move(item))) ++i;
      // On failure the ring leaves `value` untouched, but `item` dies
      // here anyway; rebuilding it per attempt keeps the loop simple.
    }
  });

  std::uint64_t expected = 0;
  Payload out;
  while (expected < kOps) {
    if (ring.try_pop(out)) {
      ASSERT_TRUE(out != nullptr);
      ASSERT_EQ(*out, expected) << "FIFO order violated";
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

// Producer drops on failure (the capture engine's policy): the
// consumer-observed gap must exactly equal the producer's try_push
// failure count — losses are accounted, never silent.
TEST(SpscRingConcurrency, PushFailuresExactlyMatchConsumerGap) {
  SpscRing<Payload> ring(256);
  std::atomic<bool> done{false};
  std::uint64_t push_failures = 0;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kOps; ++i) {
      auto item = std::make_unique<std::uint64_t>(i);
      if (!ring.try_push(std::move(item))) ++push_failures;
    }
    done.store(true, std::memory_order_release);
  });

  std::uint64_t consumed = 0;
  std::uint64_t last_seen = 0;
  bool any = false;
  Payload out;
  for (;;) {
    if (ring.try_pop(out)) {
      ASSERT_TRUE(out != nullptr);
      if (any)
        ASSERT_GT(*out, last_seen)
            << "sequence went backwards: duplication or reordering";
      last_seen = *out;
      any = true;
      ++consumed;
    } else if (done.load(std::memory_order_acquire) && ring.empty()) {
      break;
    }
  }
  producer.join();

  // Every op either reached the consumer or failed to push — exactly.
  EXPECT_EQ(consumed + push_failures, kOps);
  EXPECT_GT(consumed, 0u);
}

// The satellite-5 invariant: CaptureEngine::stats() is safe to sample
// from a third thread while both sides run, and every live snapshot
// satisfies consumed <= offered and accepted + dropped <= offered,
// with all counters monotone. Exact equalities hold after quiescence.
TEST(CaptureEngineConcurrency, LiveStatsSnapshotInvariants) {
  CaptureConfig cfg;
  cfg.ring_capacity = 512;
  CaptureEngine engine(cfg);
  std::uint64_t sink_count = 0;
  engine.add_sink([&](const TaggedPacket&) { ++sink_count; });

  const auto pkt =
      packet::PacketBuilder(Timestamp::from_nanos(1))
          .udp(packet::Endpoint{packet::MacAddress::from_id(1),
                                packet::Ipv4Address(10, 0, 0, 1), 1111},
               packet::Endpoint{packet::MacAddress::from_id(2),
                                packet::Ipv4Address(10, 0, 0, 2), 53})
          .payload_size(32)
          .build();

  constexpr std::uint64_t kPackets = 300'000;
  std::atomic<bool> producer_done{false};
  std::atomic<bool> consumer_done{false};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kPackets; ++i)
      engine.offer(pkt, sim::Direction::kInbound);
    producer_done.store(true, std::memory_order_release);
  });
  std::thread consumer([&] {
    while (!producer_done.load(std::memory_order_acquire))
      engine.poll(128);
    engine.drain();
    consumer_done.store(true, std::memory_order_release);
  });

  CaptureStats prev;
  std::uint64_t samples = 0;
  while (!consumer_done.load(std::memory_order_acquire)) {
    const auto s = engine.stats();
    ++samples;
    ASSERT_LE(s.consumed, s.offered);
    ASSERT_LE(s.accepted + s.dropped, s.offered);
    ASSERT_LE(s.dropped_bytes, s.offered_bytes);
    // Monotone between samples (single sampler thread).
    ASSERT_GE(s.offered, prev.offered);
    ASSERT_GE(s.accepted, prev.accepted);
    ASSERT_GE(s.dropped, prev.dropped);
    ASSERT_GE(s.consumed, prev.consumed);
    prev = s;
  }
  producer.join();
  consumer.join();
  EXPECT_GT(samples, 0u);

  const auto end = engine.stats();
  EXPECT_EQ(end.offered, kPackets);
  EXPECT_EQ(end.offered, end.accepted + end.dropped);
  EXPECT_EQ(end.consumed, end.accepted);
  EXPECT_EQ(sink_count, end.consumed);
}

}  // namespace
}  // namespace campuslab::capture

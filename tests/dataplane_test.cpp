// Tests for campuslab::dataplane — quantizer monotonicity, range-to-
// prefix correctness (property: cover is exact and minimal-bounded),
// ternary/exact/range table semantics, and the central compiler
// property: TreeProgram and RuleTcamProgram produce byte-identical
// verdicts to the source tree on quantized inputs.
#include <gtest/gtest.h>

#include "campuslab/dataplane/p4gen.h"
#include "campuslab/dataplane/programs.h"
#include "campuslab/dataplane/quantize.h"
#include "campuslab/dataplane/switch.h"
#include "campuslab/dataplane/tables.h"
#include "campuslab/ml/metrics.h"

namespace campuslab::dataplane {
namespace {

ml::Dataset grid_dataset(std::size_t n, std::uint64_t seed) {
  // 3 classes over 4 features with axis-aligned structure (tree-friendly).
  ml::Dataset data({"f0", "f1", "f2", "f3"}, {"a", "b", "c"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x[4] = {rng.uniform(0, 100), rng.uniform(0, 1),
                         rng.uniform(-50, 50), rng.uniform(0, 1e6)};
    int y = 0;
    if (x[0] > 60 && x[3] > 4e5) y = 1;
    else if (x[1] > 0.7 || x[2] > 20) y = 2;
    data.add(x, y);
  }
  return data;
}

// --------------------------------------------------------------- Quantizer

TEST(Quantizer, MonotoneAndBounded) {
  auto data = grid_dataset(500, 1);
  const auto q = Quantizer::fit(data);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(-10, 110);
    const double b = rng.uniform(-10, 110);
    const auto qa = q.quantize(0, a);
    const auto qb = q.quantize(0, b);
    EXPECT_LE(qa, Quantizer::kMaxQ);
    if (a <= b) {
      EXPECT_LE(qa, qb);
    }
  }
  EXPECT_EQ(q.quantize(0, -1e9), 0u);
  EXPECT_EQ(q.quantize(0, 1e9), Quantizer::kMaxQ);
}

TEST(Quantizer, ConstantFeatureMapsToZero) {
  const auto q = Quantizer::from_ranges({{5.0, 5.0}});
  EXPECT_EQ(q.quantize(0, 5.0), 0u);
  EXPECT_EQ(q.quantize(0, 100.0), 0u);
}

TEST(Quantizer, DequantizeInvertsWithinBucket) {
  const auto q = Quantizer::from_ranges({{0.0, 1000.0}});
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0, 1000);
    const auto bucket = q.quantize(0, v);
    const double back = q.dequantize(0, bucket);
    EXPECT_NEAR(back, v, 1000.0 / 65536.0 + 1e-9);
  }
}

TEST(Quantizer, QuantizedDatasetValuesAreGridPoints) {
  auto data = grid_dataset(100, 4);
  const auto q = Quantizer::fit(data);
  const auto qd = q.quantize_dataset(data);
  for (std::size_t i = 0; i < qd.n_rows(); ++i)
    for (std::size_t f = 0; f < qd.n_features(); ++f) {
      const double v = qd.row(i)[f];
      EXPECT_EQ(v, std::floor(v));
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, static_cast<double>(Quantizer::kMaxQ));
    }
}

// --------------------------------------------------------- RangeToPrefixes

TEST(RangeToPrefixes, FullRangeIsOneWildcard) {
  const auto prefixes = range_to_prefixes(0, 0xFFFF, 16);
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].mask & 0xFFFF, 0u);
}

TEST(RangeToPrefixes, SingleValueIsExact) {
  const auto prefixes = range_to_prefixes(42, 42, 16);
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].value, 42u);
  EXPECT_EQ(prefixes[0].mask, 0xFFFFu);
}

TEST(RangeToPrefixesProperty, ExactCoverAndBound) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int width = 10;  // exhaustive check over 1024 values
    const auto a = static_cast<std::uint32_t>(rng.below(1 << width));
    const auto b = static_cast<std::uint32_t>(rng.below(1 << width));
    const auto lo = std::min(a, b);
    const auto hi = std::max(a, b);
    const auto prefixes = range_to_prefixes(lo, hi, width);
    EXPECT_LE(prefixes.size(), 2u * width - 2);
    for (std::uint32_t v = 0; v < (1u << width); ++v) {
      int matches = 0;
      for (const auto& p : prefixes)
        if ((v & p.mask) == (p.value & p.mask)) ++matches;
      const bool in_range = v >= lo && v <= hi;
      EXPECT_EQ(matches, in_range ? 1 : 0)
          << "v=" << v << " range=[" << lo << "," << hi << "]";
    }
  }
}

// ------------------------------------------------------------------ Tables

TEST(TernaryTable, PriorityWins) {
  TernaryTable table(1);
  table.add(TernaryEntry{{0}, {0}, 0, 111});         // wildcard, low prio
  table.add(TernaryEntry{{5}, {0xFFFF}, 10, 222});   // exact 5, high prio
  const std::uint32_t k5[1] = {5};
  const std::uint32_t k6[1] = {6};
  EXPECT_EQ(table.lookup(k5), 222u);
  EXPECT_EQ(table.lookup(k6), 111u);
}

TEST(TernaryTable, MissReturnsNullopt) {
  TernaryTable table(2);
  table.add(TernaryEntry{{1, 2}, {0xFFFF, 0xFFFF}, 0, 9});
  const std::uint32_t key[2] = {1, 3};
  EXPECT_FALSE(table.lookup(key).has_value());
}

TEST(ExactTable, LookupAfterManyInserts) {
  ExactTable table;
  for (std::uint32_t k = 0; k < 1000; ++k) table.add(k * 3, k);
  EXPECT_EQ(table.lookup(999 * 3), 999u);
  EXPECT_FALSE(table.lookup(1).has_value());
}

TEST(RangeTable, FirstMatchWins) {
  RangeTable table;
  table.add(RangeEntry{0, 50, 1});
  table.add(RangeEntry{40, 100, 2});
  EXPECT_EQ(table.lookup(45), 1u);
  EXPECT_EQ(table.lookup(80), 2u);
  EXPECT_FALSE(table.lookup(200).has_value());
}

// ---------------------------------------------------------------- Verdicts

TEST(Verdict, PackUnpackRoundTrip) {
  for (int cls = 0; cls < 5; ++cls) {
    for (double conf : {0.0, 0.25, 0.5, 0.9, 1.0}) {
      const auto packed = pack_verdict(Verdict{cls, conf});
      const auto v = unpack_verdict(packed);
      EXPECT_EQ(v.cls, cls);
      EXPECT_NEAR(v.confidence, conf, 1.0 / 255.0);
    }
  }
}

// --------------------------------------------------------------- Compilers

class CompilerFixture : public ::testing::Test {
 protected:
  CompilerFixture() {
    auto raw = grid_dataset(4000, 11);
    quantizer_ = Quantizer::fit(raw);
    // Train on quantized features for exact dataplane equivalence.
    data_ = std::make_unique<ml::Dataset>(quantizer_identity().quantize_dataset(raw));
    ml::TreeConfig cfg;
    cfg.max_depth = 6;
    tree_.emplace(cfg);
    tree_->fit(*data_);
  }

  /// The dataset is quantized with the fitted quantizer; the programs
  /// then run with an identity quantizer over [0, kMaxQ].
  Quantizer quantizer_identity() const { return quantizer_; }
  Quantizer identity_over_q() const {
    std::vector<std::pair<double, double>> ranges(
        4, {0.0, static_cast<double>(Quantizer::kMaxQ) + 1.0});
    return Quantizer::from_ranges(std::move(ranges));
  }

  Quantizer quantizer_ = Quantizer::from_ranges({});
  std::unique_ptr<ml::Dataset> data_;
  std::optional<ml::DecisionTree> tree_;
};

TEST_F(CompilerFixture, TreeProgramMatchesTreeExactly) {
  // Identity mapping: q(v) = floor(v) over the quantized grid, so
  // integer-valued features survive exactly.
  const auto program = TreeProgram::compile(*tree_, identity_over_q());
  ASSERT_TRUE(program.ok());
  for (std::size_t i = 0; i < data_->n_rows(); ++i) {
    const auto row = data_->row(i);
    std::vector<std::uint32_t> qx(row.size());
    for (std::size_t f = 0; f < row.size(); ++f)
      qx[f] = static_cast<std::uint32_t>(row[f]);
    const auto verdict = program.value().classify(qx);
    EXPECT_EQ(verdict.cls, tree_->predict(row)) << "row " << i;
    EXPECT_NEAR(verdict.confidence, tree_->confidence(row), 1.0 / 255.0);
  }
}

TEST_F(CompilerFixture, RuleTcamMatchesTreeExactly) {
  const auto rules = xai::RuleList::from_tree(*tree_);
  const auto program = RuleTcamProgram::compile(rules, identity_over_q());
  ASSERT_TRUE(program.ok());
  for (std::size_t i = 0; i < data_->n_rows(); ++i) {
    const auto row = data_->row(i);
    std::vector<std::uint32_t> qx(row.size());
    for (std::size_t f = 0; f < row.size(); ++f)
      qx[f] = static_cast<std::uint32_t>(row[f]);
    const auto verdict = program.value().classify(qx);
    EXPECT_EQ(verdict.cls, tree_->predict(row)) << "row " << i;
  }
}

TEST_F(CompilerFixture, ProgramsAgreeOnRandomInputs) {
  const auto tree_prog = TreeProgram::compile(*tree_, identity_over_q());
  const auto tcam_prog = RuleTcamProgram::compile(
      xai::RuleList::from_tree(*tree_), identity_over_q());
  ASSERT_TRUE(tree_prog.ok());
  ASSERT_TRUE(tcam_prog.ok());
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    std::uint32_t qx[4];
    for (auto& v : qx)
      v = static_cast<std::uint32_t>(rng.below(Quantizer::kMaxQ + 1));
    const auto a = tree_prog.value().classify(qx);
    const auto b = tcam_prog.value().classify(qx);
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_EQ(a.confidence, b.confidence);
  }
}

TEST_F(CompilerFixture, TreeProgramResources) {
  const auto program = TreeProgram::compile(*tree_, identity_over_q());
  ASSERT_TRUE(program.ok());
  const auto r = program.value().resources();
  EXPECT_EQ(r.stages_used, 1 + program.value().levels());
  EXPECT_LE(program.value().levels(), 7);  // depth 6 -> 7 levels
  EXPECT_EQ(r.tcam_entries, 0u);
  EXPECT_GT(r.sram_bits, 0u);
  EXPECT_TRUE(r.fits(ResourceBudget::tofino_like()));
}

TEST_F(CompilerFixture, TcamUsesMoreEntriesThanRules) {
  const auto rules = xai::RuleList::from_tree(*tree_);
  const auto program = RuleTcamProgram::compile(rules, identity_over_q());
  ASSERT_TRUE(program.ok());
  // Range expansion strictly inflates entry count for realistic trees.
  EXPECT_GT(program.value().table().size(), rules.rules().size());
  EXPECT_EQ(program.value().source_rules(), rules.rules().size());
}

TEST_F(CompilerFixture, TcamBudgetEnforced) {
  const auto rules = xai::RuleList::from_tree(*tree_);
  const auto program = RuleTcamProgram::compile(rules, identity_over_q(),
                                                /*max_entries=*/4);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.error().code, "budget");
}

TEST_F(CompilerFixture, RegisterMaskCounted) {
  std::vector<bool> mask(4, false);
  mask[0] = true;  // f0 is register-backed and used by the tree
  const auto program =
      TreeProgram::compile(*tree_, identity_over_q(), mask);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().resources().register_arrays_used, 1);
}

TEST(TreeProgramEdge, SingleLeafTree) {
  ml::Dataset data({"x"}, {"only", "other"});
  const double row[1] = {1.0};
  for (int i = 0; i < 10; ++i) data.add(row, 0);
  ml::DecisionTree tree;
  tree.fit(data);
  const auto q = Quantizer::from_ranges({{0.0, 2.0}});
  const auto program = TreeProgram::compile(tree, q);
  ASSERT_TRUE(program.ok());
  const std::uint32_t qx[1] = {100};
  EXPECT_EQ(program.value().classify(qx).cls, 0);
  EXPECT_EQ(program.value().levels(), 1);
}

// ------------------------------------------------------------------ P4 gen

TEST_F(CompilerFixture, P4SourceForTreeProgram) {
  const auto program = TreeProgram::compile(*tree_, identity_over_q());
  ASSERT_TRUE(program.ok());
  const auto p4 = generate_p4(program.value(), data_->feature_names(),
                              FilterPolicy{1, 0.9});
  EXPECT_NE(p4.find("model_metadata_t"), std::string::npos);
  EXPECT_NE(p4.find("bit<16> f0;"), std::string::npos);
  EXPECT_NE(p4.find("control TreeLevel0"), std::string::npos);
  EXPECT_NE(p4.find("mark_to_drop"), std::string::npos);
  EXPECT_NE(p4.find("const entries"), std::string::npos);
  // 0.9 * 255 = 229 (rounded down): threshold appears in the drop rule.
  EXPECT_NE(p4.find(">= 229"), std::string::npos);
}

TEST_F(CompilerFixture, P4SourceForTcamProgram) {
  const auto program = RuleTcamProgram::compile(
      xai::RuleList::from_tree(*tree_), identity_over_q());
  ASSERT_TRUE(program.ok());
  const auto p4 = generate_p4(program.value(), data_->feature_names(),
                              FilterPolicy{2, 0.95});
  EXPECT_NE(p4.find("ternary"), std::string::npos);
  EXPECT_NE(p4.find("set_verdict"), std::string::npos);
  EXPECT_NE(p4.find("&&&"), std::string::npos);
}

}  // namespace
}  // namespace campuslab::dataplane

// Kill-a-PROCESS chaos for the socket-backed cluster: N real
// shard-server processes (shard_server_proc) on loopback, the PR 7
// failover battery running over actual TCP connections, and a victim
// process SIGKILLed mid-ingest — no flush, no farewell, a crashed
// node. The contract is the same one the in-process battery
// (cluster_failover_test) holds: zero lost acked flows, and queries
// bit-identical to a single-node store with the victim gone.
//
// What only a real process kill exercises: the RST/EOF a dying kernel
// socket delivers to in-flight connections (rpc_io -> transparent
// reconnect -> ECONNREFUSED), the cluster's connect-refused
// classification flipping the node dead without burning the retry
// budget, and the idempotent-replay guard absorbing the resend of any
// batch whose ack died with the victim.
//
// CI runs this under the same CAMPUSLAB_FAULT_SEED matrix as the
// in-process chaos suite; the seed picks the victim, so the matrix
// covers different nodes.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "campuslab/resilience/fault.h"
#include "campuslab/store/cluster.h"
#include "campuslab/store/query_engine.h"
#include "campuslab/store/remote_shard.h"
#include "campuslab/util/rng.h"

namespace campuslab::store {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;
using packet::TrafficLabel;
using resilience::FaultKind;
using resilience::FaultPlan;
using resilience::FaultScope;
using resilience::FaultSpec;

std::vector<FlowRecord> canonical_flows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FlowRecord f;
    const Ipv4Address src(
        static_cast<std::uint32_t>(0x0A020000 + rng.below(48)));
    const Ipv4Address dst(
        static_cast<std::uint32_t>(0xC0A80000 + rng.below(128)));
    f.tuple = packet::FiveTuple{
        src, dst, static_cast<std::uint16_t>(1024 + rng.below(50000)),
        static_cast<std::uint16_t>(rng.chance(0.5) ? 443 : 53),
        static_cast<std::uint8_t>(rng.chance(0.6) ? 6 : 17)};
    f.first_ts = Timestamp::from_seconds(rng.uniform(0, 300));
    f.last_ts = f.first_ts + Duration::from_seconds(rng.uniform(0.001, 10));
    f.packets = 1 + rng.below(500);
    f.bytes = f.packets * (64 + rng.below(1200));
    f.label_packets[static_cast<std::size_t>(TrafficLabel::kBenign)] =
        f.packets;
    flows.push_back(f);
  }
  std::stable_sort(flows.begin(), flows.end(), capture::flow_export_before);
  return flows;
}

FaultPlan rpc_chaos_plan(std::uint64_t seed, double probability) {
  FaultPlan plan;
  plan.seed = seed;
  FaultSpec spec;
  spec.site = "store.shard_rpc";
  spec.kind = FaultKind::kFail;
  spec.probability = probability;
  plan.faults.push_back(spec);
  return plan;
}

/// N shard-server child processes publishing ephemeral ports through
/// port files. Teardown SIGTERMs the survivors and reaps everything —
/// no zombies across test cases.
struct ServerFleet {
  struct Proc {
    pid_t pid = -1;
    std::uint16_t port = 0;
    std::filesystem::path port_file;
  };

  std::filesystem::path dir;
  std::vector<Proc> procs;

  explicit ServerFleet(std::size_t nodes, std::size_t segment_flows = 250) {
    dir = std::filesystem::temp_directory_path() /
          ("campuslab_proc_chaos_" + std::to_string(::getpid()) + "_" +
           std::to_string(next_fleet_id()));
    std::filesystem::create_directories(dir);
    procs.resize(nodes);
    for (std::size_t i = 0; i < nodes; ++i)
      spawn(i, nodes, segment_flows);
    for (std::size_t i = 0; i < nodes; ++i)
      EXPECT_TRUE(wait_for_port(procs[i]))
          << "node " << i << " never published a port";
  }

  ~ServerFleet() {
    for (Proc& proc : procs) terminate_soft(proc);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  static std::size_t next_fleet_id() {
    static std::size_t id = 0;
    return id++;
  }

  void spawn(std::size_t node, std::size_t nodes,
             std::size_t segment_flows) {
    Proc& proc = procs[node];
    proc.port_file = dir / ("node" + std::to_string(node) + ".port");
    const std::string nodes_s = std::to_string(nodes);
    const std::string node_s = std::to_string(node);
    const std::string seg_s = std::to_string(segment_flows);
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(CAMPUSLAB_SHARD_SERVER_BIN, CAMPUSLAB_SHARD_SERVER_BIN,
              "--port-file", proc.port_file.c_str(), "--nodes",
              nodes_s.c_str(), "--node", node_s.c_str(), "--segment-flows",
              seg_s.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    ASSERT_GT(pid, 0) << "fork failed";
    proc.pid = pid;
  }

  static bool wait_for_port(Proc& proc) {
    for (int waited_ms = 0; waited_ms < 10000; waited_ms += 10) {
      std::ifstream in(proc.port_file);
      unsigned port = 0;
      if (in >> port && port != 0) {
        proc.port = static_cast<std::uint16_t>(port);
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  /// The chaos switch: SIGKILL, the process vanishes mid-whatever.
  void kill_hard(std::size_t node) {
    Proc& proc = procs[node];
    if (proc.pid <= 0) return;
    ::kill(proc.pid, SIGKILL);
    int status = 0;
    ::waitpid(proc.pid, &status, 0);
    EXPECT_TRUE(WIFSIGNALED(status));
    proc.pid = -1;
  }

  static void terminate_soft(Proc& proc) {
    if (proc.pid <= 0) return;
    ::kill(proc.pid, SIGTERM);
    ::waitpid(proc.pid, nullptr, 0);
    proc.pid = -1;
  }

  ShardFactory factory() {
    return [this](NodeId via, NodeId owner,
                  DataStoreConfig) -> std::unique_ptr<StoreShard> {
      RemoteShardConfig cfg;
      cfg.port = procs[via].port;
      cfg.shard = owner == via ? 0u : 1u + owner;
      return std::make_unique<RemoteShard>(cfg);
    };
  }
};

/// Sanity gate for the harness itself: a fresh process fleet serves
/// the full query battery bit-identically to a single-node store —
/// every row, aggregate, and cursor step crossing process boundaries.
TEST(ProcessCluster, BitIdenticalOverRealProcessesWhileHealthy) {
  const auto flows = canonical_flows(2000, 0x50C7);
  DataStoreConfig single_cfg;
  single_cfg.segment_flows = 250;
  DataStore single(single_cfg);
  for (const auto& f : flows) single.ingest(f);

  ServerFleet fleet(4);
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.node_store.segment_flows = 250;
  cfg.shard_factory = fleet.factory();
  Cluster cluster(cfg);

  const auto report = cluster.ingest(flows);
  ASSERT_EQ(report.acked, flows.size());
  ASSERT_EQ(report.lost, 0u);
  ASSERT_EQ(report.fully_replicated, flows.size());

  const auto expected = single.query(FlowQuery{});
  const auto rows = cluster.query(FlowQuery{});
  ASSERT_EQ(rows.size(), expected.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].id, expected[i].id) << "row " << i;
    ASSERT_EQ(rows[i].flow.bytes, expected[i].flow.bytes) << "row " << i;
  }

  for (const GroupBy by : {GroupBy::kHost, GroupBy::kPort, GroupBy::kLabel}) {
    const auto sa = single.aggregate(FlowQuery{}, by, 10);
    const auto ca = cluster.aggregate(FlowQuery{}, by, 10);
    ASSERT_EQ(sa.rows.size(), ca.rows.size());
    ASSERT_EQ(sa.matched_flows, ca.matched_flows);
    for (std::size_t i = 0; i < sa.rows.size(); ++i) {
      EXPECT_EQ(sa.rows[i].key, ca.rows[i].key);
      EXPECT_EQ(sa.rows[i].bytes, ca.rows[i].bytes);
    }
  }

  FlowQuery cq;
  cq.top(123);
  const auto single_rows = single.query(cq);
  auto cursor = cluster.open_cursor(cq);
  std::size_t i = 0;
  while (cursor.next()) {
    ASSERT_LT(i, single_rows.size());
    ASSERT_EQ(cursor.current().id, single_rows[i].id);
    ++i;
  }
  ASSERT_EQ(i, single_rows.size());
  EXPECT_EQ(single.catalog().total_bytes, cluster.catalog().total_bytes);
}

/// The headline: SIGKILL a seed-chosen server process mid-ingest,
/// with seeded rpc chaos firing on the shard messages the whole time.
/// Every flow acked before OR after the kill must survive, and the
/// post-kill cluster must answer bit-identically to a single store —
/// the victim's scope served by replicas on the surviving processes.
TEST(ProcessCluster, SigkillAServerMidIngestLosesNoAckedFlows) {
  const std::uint64_t seed = FaultPlan::seed_from_env(1);
  const auto flows = canonical_flows(3000, 0xF00D);

  DataStoreConfig single_cfg;
  single_cfg.segment_flows = 250;
  DataStore single(single_cfg);
  for (const auto& f : flows) single.ingest(f);
  const auto expected = single.query(FlowQuery{});
  const auto expected_agg =
      single.aggregate(FlowQuery{}, GroupBy::kHost, 10);

  ServerFleet fleet(4);
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.node_store.segment_flows = 250;
  cfg.shard_factory = fleet.factory();
  Cluster cluster(cfg);

  // First half of the stream lands with every process alive; ~5% of
  // shard messages fail transiently and the retry policy absorbs them.
  const std::size_t half = flows.size() / 2;
  ClusterIngestReport first;
  {
    FaultScope chaos(rpc_chaos_plan(seed, 0.05));
    first = cluster.ingest(std::span(flows).subspan(0, half));
  }
  ASSERT_EQ(first.acked, half) << "seed=" << seed;
  ASSERT_EQ(first.lost, 0u) << "seed=" << seed;
  ASSERT_EQ(first.fully_replicated, half) << "seed=" << seed;

  // SIGKILL the victim between batches: its kernel sockets RST, its
  // port refuses, and none of its shards ever answer again. The
  // cluster has NOT been told — it must discover the death from the
  // transport and keep acking through replicas.
  const NodeId victim = static_cast<NodeId>(seed % cfg.nodes);
  fleet.kill_hard(victim);

  ClusterIngestReport second;
  {
    FaultScope chaos(rpc_chaos_plan(seed ^ 0x51D, 0.05));
    second = cluster.ingest(std::span(flows).subspan(half));
  }
  ASSERT_EQ(second.acked, flows.size() - half)
      << "every flow has a live copy target, seed=" << seed;
  ASSERT_EQ(second.lost, 0u) << "seed=" << seed;
  EXPECT_FALSE(cluster.alive(victim))
      << "refused connects must have flipped the node dead";
  EXPECT_EQ(cluster.live_nodes(), cfg.nodes - 1);

  // Reads with chaos still firing: complete and bit-identical, the
  // victim's owner scope served by replica stores over the sockets of
  // the surviving processes.
  {
    FaultScope chaos(rpc_chaos_plan(seed ^ 0x9E37, 0.05));
    const auto rows = cluster.query(FlowQuery{});
    ASSERT_EQ(rows.size(), expected.size())
        << "zero lost acked flows with process " << victim
        << " SIGKILLed, seed=" << seed;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i].id, expected[i].id) << "row " << i;
      ASSERT_EQ(rows[i].flow.bytes, expected[i].flow.bytes) << "row " << i;
    }
    EXPECT_GE(rows.stats().replica_scopes, 1u)
        << "the victim's scope must have flipped to replicas";

    const auto agg = cluster.aggregate(FlowQuery{}, GroupBy::kHost, 10);
    ASSERT_EQ(agg.rows.size(), expected_agg.rows.size());
    for (std::size_t i = 0; i < agg.rows.size(); ++i) {
      EXPECT_EQ(agg.rows[i].key, expected_agg.rows[i].key) << "row " << i;
      EXPECT_EQ(agg.rows[i].bytes, expected_agg.rows[i].bytes)
          << "row " << i;
    }
  }

  // Chaos off, process still gone: still bit-identical.
  const auto calm = cluster.query(FlowQuery{});
  ASSERT_EQ(calm.size(), expected.size());
  for (std::size_t i = 0; i < calm.size(); ++i)
    ASSERT_EQ(calm[i].id, expected[i].id);
}

/// A killed process also kills the REPLICA stores it hosted for other
/// owners. Acked flows must survive that too (their primary copy is
/// elsewhere), and catalog totals stay exact.
TEST(ProcessCluster, VictimsReplicaStoresDieWithItToo) {
  const std::uint64_t seed = FaultPlan::seed_from_env(1);
  const auto flows = canonical_flows(1500, 0xD1E);

  DataStoreConfig single_cfg;
  single_cfg.segment_flows = 250;
  DataStore single(single_cfg);
  for (const auto& f : flows) single.ingest(f);

  ServerFleet fleet(3);
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.node_store.segment_flows = 250;
  cfg.shard_factory = fleet.factory();
  Cluster cluster(cfg);

  const auto report = cluster.ingest(flows);
  ASSERT_EQ(report.acked, flows.size());
  ASSERT_EQ(report.fully_replicated, flows.size());

  fleet.kill_hard(static_cast<std::size_t>(seed % cfg.nodes));

  const auto rows = cluster.query(FlowQuery{});
  const auto expected = single.query(FlowQuery{});
  ASSERT_EQ(rows.size(), expected.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    ASSERT_EQ(rows[i].id, expected[i].id);
  EXPECT_EQ(cluster.size(), single.size());
  EXPECT_EQ(cluster.catalog().total_bytes, single.catalog().total_bytes);
}

}  // namespace
}  // namespace campuslab::store

#else  // no sockets / no fork on this platform

TEST(ProcessCluster, SkippedWithoutPosix) {
  GTEST_SKIP() << "process chaos tests need fork/exec and sockets";
}

#endif

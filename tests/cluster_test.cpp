// Distributed store tests: consistent-hash placement, the StoreShard
// chunk protocol, and the headline property — an N-node cluster's
// queries, aggregates and cursor sequences are bit-identical to a
// single DataStore fed the same flows in the same canonical order,
// hot or cold tiers, healthy or with a node down.
//
// ClusterConcurrency.* run under TSAN in CI (router ingest racing
// scatter-gather readers).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <thread>
#include <vector>

#include "campuslab/resilience/fault.h"
#include "campuslab/resilience/health.h"
#include "campuslab/store/cluster.h"
#include "campuslab/store/query_engine.h"
#include "campuslab/store/shard.h"
#include "campuslab/store/sharded_ingest.h"
#include "campuslab/util/rng.h"

namespace campuslab::store {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;
using packet::TrafficLabel;

FlowRecord random_flow(Rng& rng) {
  FlowRecord f;
  const Ipv4Address src(
      static_cast<std::uint32_t>(0x0A010000 + rng.below(64)));
  const Ipv4Address dst(
      static_cast<std::uint32_t>(0x97650000 + rng.below(256)));
  static constexpr std::uint16_t kPorts[] = {53, 80, 443, 22, 25, 8080};
  f.tuple = packet::FiveTuple{
      src, dst, static_cast<std::uint16_t>(1024 + rng.below(60000)),
      kPorts[rng.below(6)],
      static_cast<std::uint8_t>(rng.chance(0.7) ? 6 : 17)};
  f.first_ts = Timestamp::from_seconds(rng.uniform(0, 600));
  f.last_ts = f.first_ts + Duration::from_seconds(rng.uniform(0.001, 30));
  f.packets = 1 + rng.below(1000);
  f.bytes = f.packets * (64 + rng.below(1400));
  const auto label =
      rng.chance(0.9) ? TrafficLabel::kBenign
                      : static_cast<TrafficLabel>(1 + rng.below(4));
  f.label_packets[static_cast<std::size_t>(label)] = f.packets;
  return f;
}

/// Flows in the canonical order every merge path feeds stores in.
std::vector<FlowRecord> canonical_flows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) flows.push_back(random_flow(rng));
  std::stable_sort(flows.begin(), flows.end(), capture::flow_export_before);
  return flows;
}

bool same_flow(const FlowRecord& a, const FlowRecord& b) {
  return a.tuple.src == b.tuple.src && a.tuple.dst == b.tuple.dst &&
         a.tuple.src_port == b.tuple.src_port &&
         a.tuple.dst_port == b.tuple.dst_port &&
         a.tuple.proto == b.tuple.proto && a.first_ts == b.first_ts &&
         a.last_ts == b.last_ts && a.packets == b.packets &&
         a.bytes == b.bytes &&
         a.majority_label() == b.majority_label();
}

void expect_rows_equal(const QueryResult& single,
                       const ClusterQueryResult& cluster,
                       const char* what) {
  ASSERT_EQ(single.size(), cluster.size()) << what;
  for (std::size_t i = 0; i < single.size(); ++i) {
    ASSERT_EQ(single[i].id, cluster[i].id) << what << " row " << i;
    ASSERT_TRUE(same_flow(single[i].flow, cluster[i].flow))
        << what << " row " << i;
  }
}

void expect_aggregates_equal(const AggregateResult& a,
                             const AggregateResult& b, const char* what) {
  ASSERT_EQ(a.matched_flows, b.matched_flows) << what;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_EQ(a.rows[i].key, b.rows[i].key) << what << " row " << i;
    ASSERT_EQ(a.rows[i].flows, b.rows[i].flows) << what << " row " << i;
    ASSERT_EQ(a.rows[i].packets, b.rows[i].packets) << what << " row " << i;
    ASSERT_EQ(a.rows[i].bytes, b.rows[i].bytes) << what << " row " << i;
  }
}

/// The full bit-identical battery: rows, filtered queries, aggregates,
/// cursor sequence, catalog totals.
void expect_bit_identical(const DataStore& single, const Cluster& cluster) {
  expect_rows_equal(single.query(FlowQuery{}), cluster.query(FlowQuery{}),
                    "full scan");

  FlowQuery by_host;
  by_host.about_host(Ipv4Address(static_cast<std::uint32_t>(0x0A010007)));
  expect_rows_equal(single.query(by_host), cluster.query(by_host),
                    "host query");

  FlowQuery by_port;
  by_port.on_port(443);
  expect_rows_equal(single.query(by_port), cluster.query(by_port),
                    "port query");

  FlowQuery by_label;
  by_label.with_label(TrafficLabel::kBenign);
  expect_rows_equal(single.query(by_label), cluster.query(by_label),
                    "label query");

  FlowQuery window;
  window.between(Timestamp::from_seconds(100), Timestamp::from_seconds(200));
  expect_rows_equal(single.query(window), cluster.query(window),
                    "time window");

  FlowQuery limited;
  limited.on_port(80).top(57);
  expect_rows_equal(single.query(limited), cluster.query(limited),
                    "limited query");

  for (const GroupBy by : {GroupBy::kHost, GroupBy::kPort, GroupBy::kLabel}) {
    expect_aggregates_equal(single.aggregate(FlowQuery{}, by, 0),
                            cluster.aggregate(FlowQuery{}, by, 0),
                            "aggregate full");
    expect_aggregates_equal(single.aggregate(by_port, by, 5),
                            cluster.aggregate(by_port, by, 5),
                            "aggregate top-5 filtered");
  }

  // Cursor sequences step identically, including under a limit.
  FlowQuery cq;
  cq.top(123);
  auto single_cur = single.open_cursor(cq);
  auto cluster_cur = cluster.open_cursor(cq);
  while (true) {
    const bool s = single_cur.next();
    const bool c = cluster_cur.next();
    ASSERT_EQ(s, c) << "cursor exhaustion";
    if (!s) break;
    ASSERT_EQ(single_cur.current().id, cluster_cur.current().id);
    ASSERT_TRUE(
        same_flow(single_cur.current().flow, cluster_cur.current().flow));
  }
  ASSERT_EQ(single_cur.produced(), cluster_cur.produced());

  const CatalogInfo sc = single.catalog();
  const CatalogInfo cc = cluster.catalog();
  EXPECT_EQ(sc.total_flows, cc.total_flows);
  EXPECT_EQ(sc.total_packets, cc.total_packets);
  EXPECT_EQ(sc.total_bytes, cc.total_bytes);
  EXPECT_EQ(sc.flows_per_label, cc.flows_per_label);
  EXPECT_EQ(single.size(), cluster.size());
}

// ------------------------------------------------------------ HashRing

TEST(HashRing, BothDirectionsColocate) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto f = random_flow(rng);
    const packet::FiveTuple fwd = f.tuple;
    const packet::FiveTuple rev{fwd.dst, fwd.src, fwd.dst_port,
                                fwd.src_port, fwd.proto};
    EXPECT_EQ(HashRing::key_of(fwd), HashRing::key_of(rev));
  }
}

TEST(HashRing, OwnersAreDistinctAndDeterministic) {
  const HashRing a(4, 64, 0xC1A55);
  const HashRing b(4, 64, 0xC1A55);
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t key = rng.next();
    NodeId oa[2], ob[2];
    a.owners_for_key(key, std::span<NodeId>(oa));
    b.owners_for_key(key, std::span<NodeId>(ob));
    EXPECT_EQ(oa[0], ob[0]);
    EXPECT_EQ(oa[1], ob[1]);
    EXPECT_NE(oa[0], oa[1]);
    EXPECT_EQ(a.primary_for_key(key), oa[0]);
  }
}

TEST(HashRing, VirtualNodesBalanceTheKeyspace) {
  const HashRing ring(4, 64, 0xC1A55);
  std::array<std::size_t, 4> owned{};
  Rng rng(9);
  for (int i = 0; i < 20'000; ++i)
    ++owned[ring.primary_for_key(rng.next())];
  for (const std::size_t count : owned) {
    // Fair share is 25%; 64 vnodes should keep every node within
    // loose bounds of it.
    EXPECT_GT(count, 20'000u * 10 / 100);
    EXPECT_LT(count, 20'000u * 45 / 100);
  }
}

TEST(HashRing, SingleNodeOwnsEverything) {
  const HashRing ring(1, 16, 1);
  Rng rng(10);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(ring.primary_for_key(rng.next()), 0u);
}

// ----------------------------------------------------------- LocalShard

TEST(LocalShard, ChunkedPullsEqualFullQuery) {
  DataStoreConfig cfg;
  cfg.segment_flows = 100;
  LocalShard shard(cfg);
  const auto flows = canonical_flows(1000, 21);
  ShardIngestBatch batch;
  for (const auto& f : flows) batch.rows.push_back(StoredFlow{0, f});
  const auto ack = shard.ingest(batch);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack.value().applied, flows.size());

  FlowQuery q;
  q.on_port(443);
  const auto full = shard.store().query(q);

  std::vector<StoredFlow> streamed;
  ShardQueryPlan plan;
  plan.query = q;
  plan.query.limit = std::numeric_limits<std::size_t>::max();
  plan.max_rows = 7;
  while (true) {
    auto reply = shard.query(plan);
    ASSERT_TRUE(reply.ok());
    for (auto& row : reply.value().rows) streamed.push_back(std::move(row));
    if (reply.value().exhausted) break;
    ASSERT_FALSE(reply.value().rows.empty()) << "no progress";
    plan.after_id = streamed.back().id;
  }
  ASSERT_EQ(streamed.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(streamed[i].id, full[i].id);
    EXPECT_TRUE(same_flow(streamed[i].flow, full[i].flow));
  }
}

TEST(LocalShard, ChunkedPullsSkipDrainedColdSegmentsWithoutIo) {
  const std::string dir = "/tmp/campuslab_cluster_test_shardspill";
  std::filesystem::remove_all(dir);
  DataStoreConfig cfg;
  cfg.segment_flows = 100;
  cfg.spill_directory = dir;
  cfg.hot_bytes_budget = 0;  // spill every sealed segment
  LocalShard shard(cfg);
  const auto flows = canonical_flows(1000, 22);
  ShardIngestBatch batch;
  for (const auto& f : flows) batch.rows.push_back(StoredFlow{0, f});
  ASSERT_TRUE(shard.ingest(batch).ok());
  ASSERT_GT(shard.store().catalog().cold_segments, 5u);

  // Resume deep into the store: segments fully below the token must
  // not be decoded (no cold load, no prune — skipped before open).
  ShardQueryPlan plan;
  plan.after_id = 850;
  plan.max_rows = 1000;
  auto reply = shard.query(plan);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().exhausted);
  EXPECT_EQ(reply.value().rows.size(), 150u);
  EXPECT_LE(reply.value().stats.cold_loaded + reply.value().stats.cold_pruned,
            2u);
  std::filesystem::remove_all(dir);
}

TEST(LocalShard, PartialAckOnIngestFaultHandsBackTail) {
  resilience::FaultPlan plan;
  plan.seed = 1;
  resilience::FaultSpec spec;
  spec.site = "store.ingest";
  spec.kind = resilience::FaultKind::kFail;
  spec.skip_first = 40;
  spec.max_fires = 1000;  // every hit after the first 40 fails
  spec.every_n = 1;
  plan.faults.push_back(spec);
  resilience::FaultScope scope(std::move(plan));

  LocalShard shard;
  const auto flows = canonical_flows(100, 23);
  ShardIngestBatch batch;
  for (const auto& f : flows) batch.rows.push_back(StoredFlow{0, f});
  const auto ack = shard.ingest(batch);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().applied, 40u);
  EXPECT_EQ(shard.flow_count().value_or(0), 40u);
}

// ------------------------------------------------ cluster determinism

ClusterConfig test_config(std::size_t nodes, std::size_t segment_flows) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.node_store.segment_flows = segment_flows;
  return cfg;
}

TEST(ClusterDeterminism, BitIdenticalToSingleNodeAcrossNodeCounts) {
  const auto flows = canonical_flows(5000, 31);
  for (const std::size_t nodes : {1u, 2u, 4u}) {
    SCOPED_TRACE("nodes=" + std::to_string(nodes));
    DataStoreConfig single_cfg;
    single_cfg.segment_flows = 500;
    DataStore single(single_cfg);
    for (const auto& f : flows) single.ingest(f);

    Cluster cluster(test_config(nodes, 500));
    const auto report = cluster.ingest(flows);
    ASSERT_EQ(report.acked, flows.size());
    ASSERT_EQ(report.fully_replicated, flows.size());
    ASSERT_EQ(report.lost, 0u);
    ASSERT_EQ(report.first_id, 1u);
    ASSERT_EQ(report.last_id, flows.size());

    expect_bit_identical(single, cluster);
  }
}

TEST(ClusterDeterminism, BitIdenticalWithColdSegments) {
  const std::string base = "/tmp/campuslab_cluster_test_cold";
  std::filesystem::remove_all(base);
  const auto flows = canonical_flows(4000, 32);

  DataStoreConfig single_cfg;
  single_cfg.segment_flows = 250;
  single_cfg.spill_directory = base + "/single";
  single_cfg.hot_bytes_budget = 0;
  DataStore single(single_cfg);
  for (const auto& f : flows) single.ingest(f);
  ASSERT_GT(single.catalog().cold_segments, 0u);

  for (const std::size_t nodes : {2u, 4u}) {
    SCOPED_TRACE("nodes=" + std::to_string(nodes));
    ClusterConfig cfg = test_config(nodes, 250);
    cfg.node_store.spill_directory =
        base + "/c" + std::to_string(nodes);
    cfg.node_store.hot_bytes_budget = 0;
    Cluster cluster(cfg);
    ASSERT_EQ(cluster.ingest(flows).acked, flows.size());
    ASSERT_GT(cluster.catalog().cold_segments, 0u);
    expect_bit_identical(single, cluster);
  }
  std::filesystem::remove_all(base);
}

TEST(ClusterDeterminism, KilledNodeFlipsQueriesToReplicasBitIdentical) {
  const auto flows = canonical_flows(4000, 33);
  DataStoreConfig single_cfg;
  single_cfg.segment_flows = 400;
  DataStore single(single_cfg);
  for (const auto& f : flows) single.ingest(f);

  Cluster cluster(test_config(4, 400));
  const auto report = cluster.ingest(flows);
  ASSERT_EQ(report.fully_replicated, flows.size());

  cluster.kill_node(1);
  EXPECT_FALSE(cluster.alive(1));
  EXPECT_EQ(cluster.live_nodes(), 3u);

  const auto result = cluster.query(FlowQuery{});
  EXPECT_GE(result.stats().replica_scopes, 1u);
  expect_bit_identical(single, cluster);
}

TEST(ClusterDeterminism, DeadTargetAtIngestLagsButStaysQueryable) {
  const auto flows = canonical_flows(3000, 34);
  DataStoreConfig single_cfg;
  single_cfg.segment_flows = 300;
  DataStore single(single_cfg);
  for (const auto& f : flows) single.ingest(f);

  Cluster cluster(test_config(4, 300));
  cluster.kill_node(2);
  const auto report = cluster.ingest(flows);
  // One node down, replication 2: every flow still reaches at least
  // one live target — acked, with the copies that targeted the dead
  // node showing up as replica lag on their owner.
  EXPECT_EQ(report.acked, flows.size());
  EXPECT_EQ(report.lost, 0u);
  EXPECT_LT(report.fully_replicated, flows.size());
  std::uint64_t lag = 0;
  for (NodeId n = 0; n < 4; ++n) lag += cluster.replica_lag(n);
  EXPECT_EQ(lag, flows.size() - report.fully_replicated);

  // Every acked flow is queryable — including flows whose primary was
  // the dead node (their only copy lives in replica stores).
  expect_bit_identical(single, cluster);
}

TEST(ClusterDeterminism, MergeIntoClusterMatchesMergeIntoStore) {
  Rng rng(35);
  ShardedFlowIngester for_single(4);
  ShardedFlowIngester for_cluster(4);
  for (int i = 0; i < 3000; ++i) {
    const auto f = random_flow(rng);
    const std::size_t shard = rng.below(4);
    for_single.ingest(shard, f);
    for_cluster.ingest(shard, f);
  }
  DataStore single;
  ASSERT_EQ(for_single.merge_into(single), 3000u);

  Cluster cluster(test_config(4, 50'000));
  const auto report = for_cluster.merge_into(cluster);
  EXPECT_EQ(report.acked, 3000u);
  EXPECT_EQ(for_cluster.pending(), 0u);
  EXPECT_EQ(for_cluster.merged_total(), 3000u);

  expect_rows_equal(single.query(FlowQuery{}), cluster.query(FlowQuery{}),
                    "merged full scan");
}

TEST(ClusterDeterminism, MergeIntoShardMatchesMergeIntoStore) {
  Rng rng(36);
  ShardedFlowIngester for_single(2);
  ShardedFlowIngester for_shard(2);
  for (int i = 0; i < 500; ++i) {
    const auto f = random_flow(rng);
    const std::size_t shard = rng.below(2);
    for_single.ingest(shard, f);
    for_shard.ingest(shard, f);
  }
  DataStore single;
  ASSERT_EQ(for_single.merge_into(single), 500u);
  LocalShard shard;
  const auto merged = for_shard.merge_into(
      static_cast<StoreShard&>(shard));
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value(), 500u);

  const auto single_rows = single.query(FlowQuery{});
  const auto shard_rows = shard.store().query(FlowQuery{});
  ASSERT_EQ(single_rows.size(), shard_rows.size());
  for (std::size_t i = 0; i < single_rows.size(); ++i) {
    EXPECT_EQ(single_rows[i].id, shard_rows[i].id);
    EXPECT_TRUE(same_flow(single_rows[i].flow, shard_rows[i].flow));
  }
}

// ------------------------------------------------------ logs & health

TEST(Cluster, LogsRouteWithReplicationAndSurviveNodeDeath) {
  Cluster cluster(test_config(4, 1000));
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    LogEvent ev;
    ev.ts = Timestamp::from_seconds(i);
    ev.source = (i % 2) ? "firewall" : "ids";
    ev.severity = i % 4;
    ev.subject =
        Ipv4Address(static_cast<std::uint32_t>(0x0A010000 + rng.below(32)));
    ev.message = "event-" + std::to_string(i);
    cluster.ingest_log(ev);
  }
  const auto all = cluster.query_logs(LogQuery{});
  ASSERT_EQ(all.size(), 200u);

  LogQuery severe;
  severe.at_least_severity(3);
  EXPECT_EQ(cluster.query_logs(severe).size(), 50u);

  cluster.kill_node(0);
  const auto after = cluster.query_logs(LogQuery{});
  EXPECT_EQ(after.size(), 200u) << "replicated logs survive a node death";
}

TEST(Cluster, FeedHealthReportsDeadNodeFraction) {
  Cluster cluster(test_config(4, 1000));
  resilience::HealthConfig hc;
  hc.degraded_occupancy = 0.2;
  hc.shedding_occupancy = 0.6;
  resilience::HealthMonitor monitor(hc);

  EXPECT_EQ(cluster.feed_health(monitor), resilience::HealthState::kHealthy);
  cluster.kill_node(3);
  EXPECT_EQ(cluster.feed_health(monitor),
            resilience::HealthState::kDegraded);
  cluster.kill_node(0);
  cluster.kill_node(1);
  EXPECT_EQ(cluster.feed_health(monitor),
            resilience::HealthState::kShedding);
  EXPECT_EQ(cluster.live_nodes(), 1u);
}

// --------------------------------------------------------- concurrency

TEST(ClusterConcurrency, ScatterGatherDuringRouterIngest) {
  Cluster cluster(test_config(4, 500));
  std::atomic<bool> stop{false};

  std::thread router([&] {
    Rng rng(51);
    for (int round = 0; round < 40; ++round) {
      std::vector<FlowRecord> batch;
      for (int i = 0; i < 100; ++i) batch.push_back(random_flow(rng));
      std::stable_sort(batch.begin(), batch.end(),
                       capture::flow_export_before);
      cluster.ingest(batch);
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<bool> failed{false};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::size_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto rows = cluster.query(FlowQuery{});
        // Ids ascend and rows only accumulate.
        if (rows.size() < last) failed.store(true);
        for (std::size_t i = 1; i < rows.size(); ++i)
          if (rows[i].id <= rows[i - 1].id) failed.store(true);
        last = rows.size();
        const auto agg =
            cluster.aggregate(FlowQuery{}, GroupBy::kLabel, 0);
        if (agg.matched_flows < last) failed.store(true);
        auto cur = cluster.open_cursor(FlowQuery{}.top(64));
        std::uint64_t seen = 0;
        while (cur.next()) ++seen;
        if (seen > 64) failed.store(true);
        (void)r;
      }
    });
  }
  router.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(cluster.query(FlowQuery{}).size(), 4000u);
}

TEST(ClusterConcurrency, KillNodeUnderLoadKeepsResultsComplete) {
  Cluster cluster(test_config(4, 500));
  Rng rng(52);
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 4000; ++i) flows.push_back(random_flow(rng));
  std::stable_sort(flows.begin(), flows.end(),
                   capture::flow_export_before);
  const auto report = cluster.ingest(flows);
  ASSERT_EQ(report.fully_replicated, flows.size());

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Fully replicated + one node down => always complete.
        if (cluster.query(FlowQuery{}).size() != flows.size())
          failed.store(true);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cluster.kill_node(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(cluster.query(FlowQuery{}).size(), flows.size());
}

}  // namespace
}  // namespace campuslab::store

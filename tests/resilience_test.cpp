// campuslab::resilience tests — deterministic fault injection, retry
// with backoff, the health state machine / degradation tiers, and the
// supervised sharded capture pipeline under chaos:
//   - FaultInjector firing patterns are pure functions of the plan
//   - retry_status backoff/deadline behavior, wall-clock free
//   - HealthMonitor escalates instantly, recovers with hysteresis
//   - worker deaths are caught, counted, restarted; budgets quarantine
//   - bounded stop-drain abandons (and counts) what a wedged sink holds
//   - the golden-trace fixture replayed under every fault class ends
//     Healthy with exact accounting and zero FastLoop verdicts shed
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>
#include <unistd.h>

#include "campuslab/capture/flow.h"
#include "campuslab/capture/sharded_engine.h"
#include "campuslab/control/development_loop.h"
#include "campuslab/control/fast_loop.h"
#include "campuslab/features/packet_dataset.h"
#include "campuslab/features/packet_features.h"
#include "campuslab/obs/registry.h"
#include "campuslab/packet/builder.h"
#include "campuslab/resilience/fault.h"
#include "campuslab/resilience/health.h"
#include "campuslab/resilience/retry.h"
#include "campuslab/store/datastore.h"
#include "campuslab/store/packet_archive.h"
#include "campuslab/store/sharded_ingest.h"
#include "campuslab/util/rng.h"

namespace campuslab {
namespace {

using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;
using packet::PacketBuilder;
using resilience::FaultInjector;
using resilience::FaultKind;
using resilience::FaultPlan;
using resilience::FaultScope;
using resilience::FaultSpec;
using resilience::HealthState;
using resilience::RetryPolicy;
using resilience::ShedClass;

packet::Packet make_udp(std::uint16_t src_port, std::int64_t ts_ns = 1000) {
  return PacketBuilder(Timestamp::from_nanos(ts_ns))
      .udp(Endpoint{MacAddress::from_id(1), Ipv4Address(10, 0, 16, 2),
                    src_port},
           Endpoint{MacAddress::from_id(2), Ipv4Address(8, 8, 8, 8), 53})
      .payload_size(32)
      .build();
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, EveryNFiresOnSchedule) {
  FaultPlan plan;
  plan.faults.push_back({.site = "t.every", .kind = FaultKind::kFail,
                         .every_n = 3});
  FaultInjector injector(plan);
  std::string pattern;
  for (int i = 0; i < 9; ++i)
    pattern.push_back(injector.evaluate("t.every") != nullptr ? '1' : '0');
  EXPECT_EQ(pattern, "001001001");
  EXPECT_EQ(injector.fires("t.every"), 3u);
  EXPECT_EQ(injector.hits("t.every"), 9u);
}

TEST(FaultInjector, SkipFirstAndMaxFiresBound) {
  FaultPlan plan;
  plan.faults.push_back({.site = "t.skip", .kind = FaultKind::kFail,
                         .every_n = 1, .skip_first = 5, .max_fires = 2});
  FaultInjector injector(plan);
  std::string pattern;
  for (int i = 0; i < 10; ++i)
    pattern.push_back(injector.evaluate("t.skip") != nullptr ? '1' : '0');
  // Hits 0-4 skipped, hits 5 and 6 fire, then the budget is spent.
  EXPECT_EQ(pattern, "0000011000");
  EXPECT_EQ(injector.fires("t.skip"), 2u);
}

TEST(FaultInjector, ProbabilityPatternIsSeedDeterministic) {
  auto pattern_for = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.faults.push_back({.site = "t.prob", .kind = FaultKind::kFail,
                           .probability = 0.3});
    FaultInjector injector(plan);
    std::string pattern;
    for (int i = 0; i < 400; ++i)
      pattern.push_back(injector.evaluate("t.prob") != nullptr ? '1' : '0');
    return pattern;
  };
  const auto a1 = pattern_for(7), a2 = pattern_for(7), b = pattern_for(8);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  const auto fires = static_cast<double>(
      std::count(a1.begin(), a1.end(), '1'));
  EXPECT_NEAR(fires / 400.0, 0.3, 0.1);
}

TEST(FaultInjector, UnknownSiteAndDisarmedAreNoOps) {
  FaultPlan plan;
  plan.faults.push_back({.site = "t.known", .kind = FaultKind::kThrow,
                         .every_n = 1});
  {
    FaultScope scope(plan);
    EXPECT_EQ(scope.injector().evaluate("t.unknown"), nullptr);
    EXPECT_NO_THROW(resilience::fault_point("t.unknown"));
    EXPECT_THROW(resilience::fault_point("t.known"),
                 resilience::FaultInjected);
  }
  // Scope exited: the site is live code but completely disarmed.
  EXPECT_NO_THROW(resilience::fault_point("t.known"));
  EXPECT_EQ(FaultInjector::current(), nullptr);
}

TEST(FaultInjector, StatusChannelReportsInsteadOfThrowing) {
  FaultPlan plan;
  plan.faults.push_back({.site = "t.status", .kind = FaultKind::kFail,
                         .every_n = 2});
  FaultScope scope(plan);
  EXPECT_TRUE(resilience::fault_point_status("t.status").ok());
  const auto failed = resilience::fault_point_status("t.status");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, "fault_injected");
}

TEST(FaultInjector, FiresAreMirroredToObsCounters) {
  auto& counter = obs::Registry::global().counter(
      "resilience.faults_injected_total", "site=t.mirror");
  const auto before = counter.value();
  FaultPlan plan;
  plan.faults.push_back({.site = "t.mirror", .kind = FaultKind::kFail,
                         .every_n = 2});
  FaultInjector injector(plan);
  for (int i = 0; i < 10; ++i) (void)injector.evaluate("t.mirror");
  EXPECT_EQ(counter.value() - before, injector.fires("t.mirror"));
  EXPECT_EQ(injector.fires("t.mirror"), 5u);
}

TEST(FaultPlan, SeedComesFromEnvironment) {
  ::setenv("CAMPUSLAB_FAULT_SEED", "42", 1);
  EXPECT_EQ(FaultPlan::seed_from_env(7), 42u);
  ::setenv("CAMPUSLAB_FAULT_SEED", "junk", 1);
  EXPECT_EQ(FaultPlan::seed_from_env(7), 7u);
  ::unsetenv("CAMPUSLAB_FAULT_SEED");
  EXPECT_EQ(FaultPlan::seed_from_env(7), 7u);
}

// ---------------------------------------------------------------------------
// Retry

TEST(Retry, SucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  Rng rng(1);
  int calls = 0;
  std::vector<Duration> sleeps;
  resilience::RetryTelemetry telemetry;
  const auto status = resilience::retry_status(
      policy, rng, "t.transient",
      [&calls]() -> Status {
        return ++calls < 3 ? Status(Error::make("io", "blip"))
                           : Status::success();
      },
      [&sleeps](Duration d) { sleeps.push_back(d); }, &telemetry);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(telemetry.attempts, 3u);
  ASSERT_EQ(sleeps.size(), 2u);  // backoff between attempts only
}

TEST(Retry, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff = Duration::millis(1);
  policy.max_backoff = Duration::millis(8);
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(resilience::backoff_for(policy, 1, rng).count_nanos(),
            Duration::millis(1).count_nanos());
  EXPECT_EQ(resilience::backoff_for(policy, 2, rng).count_nanos(),
            Duration::millis(2).count_nanos());
  EXPECT_EQ(resilience::backoff_for(policy, 4, rng).count_nanos(),
            Duration::millis(8).count_nanos());
  // Past the cap it stays capped.
  EXPECT_EQ(resilience::backoff_for(policy, 10, rng).count_nanos(),
            Duration::millis(8).count_nanos());
}

TEST(Retry, JitterStaysInBounds) {
  RetryPolicy policy;
  policy.initial_backoff = Duration::millis(10);
  policy.max_backoff = Duration::millis(10);
  policy.jitter = 0.2;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const auto b = resilience::backoff_for(policy, 1, rng);
    EXPECT_GE(b.count_nanos(), Duration::millis(8).count_nanos());
    EXPECT_LE(b.count_nanos(), Duration::millis(12).count_nanos());
  }
}

TEST(Retry, ExhaustionKeepsStableCode) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.deadline = Duration::seconds(100);
  Rng rng(1);
  int calls = 0;
  const auto status = resilience::retry_status(
      policy, rng, "t.exhaust",
      [&calls]() -> Status {
        ++calls;
        return Error::make("io", "still down");
      },
      [](Duration) {});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "retry_exhausted");
  EXPECT_EQ(calls, 3);
}

TEST(Retry, DeadlineBoundsTotalBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff = Duration::millis(10);
  policy.max_backoff = Duration::millis(10);
  policy.jitter = 0.0;
  policy.deadline = Duration::millis(25);  // room for 2 sleeps, not 3
  Rng rng(1);
  int calls = 0;
  std::vector<Duration> sleeps;
  const auto status = resilience::retry_status(
      policy, rng, "t.deadline",
      [&calls]() -> Status {
        ++calls;
        return Error::make("io", "down");
      },
      [&sleeps](Duration d) { sleeps.push_back(d); });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "retry_deadline");
  EXPECT_EQ(calls, 3);  // try, sleep 10, try, sleep 10, try, give up
  EXPECT_EQ(sleeps.size(), 2u);
}

// ---------------------------------------------------------------------------
// Health / degradation

TEST(HealthMonitor, EscalatesImmediatelyRecoversWithDebounce) {
  resilience::HealthConfig cfg;  // 0.50 / 0.85, margin 0.15, 3 samples
  resilience::HealthMonitor monitor(cfg);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  // One hot sample jumps straight to Shedding.
  EXPECT_EQ(monitor.update(0.9), HealthState::kShedding);
  // Calm samples step down ONE tier per debounce window.
  EXPECT_EQ(monitor.update(0.1), HealthState::kShedding);
  EXPECT_EQ(monitor.update(0.1), HealthState::kShedding);
  EXPECT_EQ(monitor.update(0.1), HealthState::kDegraded);
  EXPECT_EQ(monitor.update(0.1), HealthState::kDegraded);
  EXPECT_EQ(monitor.update(0.1), HealthState::kDegraded);
  EXPECT_EQ(monitor.update(0.1), HealthState::kHealthy);
  EXPECT_GE(monitor.transitions(), 3u);
}

TEST(HealthMonitor, HysteresisMarginPreventsFlapping) {
  resilience::HealthMonitor monitor{resilience::HealthConfig{}};
  EXPECT_EQ(monitor.update(0.6), HealthState::kDegraded);
  // 0.45 is below the 0.50 entry threshold but above 0.50 - 0.15: not
  // calm enough to start recovering — the boundary cannot flap.
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(monitor.update(0.45), HealthState::kDegraded);
  // A dip under the margin for the debounce window does recover.
  monitor.update(0.30);
  monitor.update(0.30);
  EXPECT_EQ(monitor.update(0.30), HealthState::kHealthy);
}

TEST(HealthMonitor, LatencySignalEscalatesToo) {
  resilience::HealthConfig cfg;
  cfg.degraded_p99_ns = 1000;
  cfg.shedding_p99_ns = 10000;
  resilience::HealthMonitor monitor(cfg);
  EXPECT_EQ(monitor.update(0.0, 500), HealthState::kHealthy);
  EXPECT_EQ(monitor.update(0.0, 2000), HealthState::kDegraded);
  EXPECT_EQ(monitor.update(0.0, 20000), HealthState::kShedding);
}

TEST(DegradationController, ShedMatrixFollowsTiers) {
  resilience::DegradationController controller;
  // Healthy: nothing sheds.
  EXPECT_FALSE(controller.should_shed(ShedClass::kDatasetRow));
  EXPECT_FALSE(controller.should_shed(ShedClass::kArchiveWrite));
  // Degraded: dataset rows only.
  controller.update(0.6);
  EXPECT_TRUE(controller.should_shed(ShedClass::kDatasetRow));
  EXPECT_FALSE(controller.should_shed(ShedClass::kArchiveWrite));
  // Shedding: archive writes go too.
  controller.update(0.95);
  EXPECT_TRUE(controller.should_shed(ShedClass::kDatasetRow));
  EXPECT_TRUE(controller.should_shed(ShedClass::kArchiveWrite));
  EXPECT_EQ(controller.shed_count(ShedClass::kDatasetRow), 2u);
  EXPECT_EQ(controller.shed_count(ShedClass::kArchiveWrite), 1u);
}

TEST(DegradationController, FastLoopVerdictsStructurallyNeverShed) {
  resilience::DegradationController controller;
  controller.update(0.99);  // deepest tier
  ASSERT_EQ(controller.state(), HealthState::kShedding);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(controller.should_shed(ShedClass::kFastLoopVerdict));
  EXPECT_EQ(controller.shed_count(ShedClass::kFastLoopVerdict), 0u);
  EXPECT_EQ(controller.fastloop_protected(), 100u);
}

TEST(DegradationController, DatasetRowsShedUnderDegraded) {
  resilience::DegradationController controller;
  controller.update(0.6);
  features::PacketDatasetCollector collector;
  collector.set_degradation(&controller);
  for (int i = 0; i < 20; ++i)
    collector.offer(make_udp(static_cast<std::uint16_t>(1000 + i)),
                    sim::Direction::kInbound);
  // Extractor state advanced for every packet, but no rows were kept.
  EXPECT_EQ(collector.packets_seen(), 20u);
  EXPECT_EQ(collector.rows_collected(), 0u);
  EXPECT_EQ(controller.shed_count(ShedClass::kDatasetRow), 20u);
}

TEST(DegradationController, ArchiveWritesShedUnderShedding) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("campuslab_shed_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto archive = store::PacketArchive::open({.directory = dir.string()});
  ASSERT_TRUE(archive.ok());
  resilience::DegradationController controller;
  archive.value().set_degradation(&controller);

  EXPECT_TRUE(archive.value().write(make_udp(1)).ok());
  controller.update(0.95);
  EXPECT_TRUE(archive.value().write(make_udp(2)).ok());  // shed == success
  EXPECT_EQ(archive.value().records_written(), 1u);
  EXPECT_EQ(controller.shed_count(ShedClass::kArchiveWrite), 1u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Supervised sharded engine

TEST(Supervisor, WorkerDeathsAreCaughtCountedAndRestarted) {
  FaultPlan plan;
  plan.faults.push_back({.site = "capture.sink_dispatch",
                         .kind = FaultKind::kThrow, .every_n = 100,
                         .max_fires = 5});
  FaultScope scope(plan);

  capture::ShardedCaptureEngine engine({.shards = 2});
  std::atomic<std::uint64_t> seen{0};
  engine.add_sink_factory([&seen](std::size_t) {
    return [&seen](const capture::TaggedPacket&) { ++seen; };
  });
  engine.start();
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    auto pkt = make_udp(static_cast<std::uint16_t>(rng.below(60000)),
                        1000 + i);
    while (!engine.offer(std::move(pkt), sim::Direction::kInbound)) {
      std::this_thread::yield();  // lossless offer: retry ring-full
      pkt = make_udp(static_cast<std::uint16_t>(rng.below(60000)), 1000 + i);
    }
  }
  engine.stop();

  const auto fires = scope.injector().fires("capture.sink_dispatch");
  EXPECT_EQ(fires, 5u);
  // Every injected death was supervised: restarts match fires exactly,
  // no shard hit its budget, and accounting is exact — the only frames
  // the sinks missed are the ones whose dispatch threw.
  EXPECT_EQ(engine.worker_restarts(), fires);
  EXPECT_EQ(engine.quarantined_shards(), 0u);
  const auto s = engine.stats();
  EXPECT_EQ(s.offered, 2000u);
  EXPECT_EQ(s.accepted + s.dropped, s.offered);
  EXPECT_EQ(s.consumed + s.abandoned, s.accepted);
  EXPECT_EQ(s.abandoned, 0u);
  EXPECT_EQ(seen.load(), s.consumed - fires);
}

TEST(Supervisor, RestartBudgetQuarantinesAndReroutes) {
  capture::ShardedCaptureEngine engine(
      {.shards = 2, .max_worker_restarts = 1});
  // Shard 1's sink always throws — a persistent failure, not transient.
  std::atomic<std::uint64_t> shard0_seen{0};
  engine.add_sink_factory([&shard0_seen](std::size_t shard) {
    return [&shard0_seen, shard](const capture::TaggedPacket&) {
      if (shard == 1) throw std::runtime_error("persistently broken sink");
      ++shard0_seen;
    };
  });
  // Find a packet that hashes to each shard.
  std::uint16_t port_for[2] = {0, 0};
  for (std::uint16_t p = 1; port_for[0] == 0 || port_for[1] == 0; ++p)
    port_for[engine.shard_of(make_udp(p))] = p;

  engine.start();
  // Feed shard 1 until its two worker deaths exhaust the budget of 1.
  for (int i = 0; i < 1000 && !engine.shard_quarantined(1); ++i) {
    (void)engine.offer(make_udp(port_for[1], 1000 + i),
                       sim::Direction::kInbound);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ASSERT_TRUE(engine.shard_quarantined(1));
  EXPECT_EQ(engine.worker_restarts(1), 2u);  // budget 1 + the fatal death

  // Shard 1's slice now reroutes to the survivor and is processed there.
  const auto seen_before = shard0_seen.load();
  const auto rerouted_before = engine.rerouted_packets();
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(engine.offer(make_udp(port_for[1], 500000 + i),
                             sim::Direction::kInbound));
  engine.stop();
  EXPECT_EQ(engine.rerouted_packets() - rerouted_before, 50u);
  EXPECT_EQ(shard0_seen.load() - seen_before, 50u);

  // Quarantine abandons, it does not lose: global identity still exact.
  const auto s = engine.stats();
  EXPECT_EQ(s.accepted + s.dropped, s.offered);
  EXPECT_EQ(s.consumed + s.abandoned, s.accepted);
}

TEST(Supervisor, BoundedStopDrainAbandonsWedgedSink) {
  capture::ShardedCaptureEngine engine({.shards = 1,
                                        .poll_batch = 4,
                                        .stop_drain_deadline =
                                            Duration::millis(20)});
  engine.add_sink_factory([](std::size_t) {
    return [](const capture::TaggedPacket&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));  // wedged
    };
  });
  for (int i = 0; i < 400; ++i)
    ASSERT_TRUE(engine.offer(make_udp(static_cast<std::uint16_t>(1 + i)),
                             sim::Direction::kInbound));
  engine.start();
  const auto t0 = std::chrono::steady_clock::now();
  engine.stop();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  // 400 frames * 2ms each would be 800ms of drain; the deadline cut it.
  EXPECT_LT(stop_ms, 500);
  const auto s = engine.stats();
  EXPECT_GT(s.abandoned, 0u);
  EXPECT_GT(s.drained_on_stop, 0u);
  EXPECT_LE(s.drained_on_stop, s.consumed);
  EXPECT_EQ(s.consumed + s.abandoned, s.accepted);
  EXPECT_EQ(s.accepted + s.dropped, s.offered);
}

TEST(Supervisor, UnboundedDrainStillRunsToEmpty) {
  capture::ShardedCaptureEngine engine(
      {.shards = 1, .stop_drain_deadline = Duration::nanos(0)});
  std::atomic<std::uint64_t> seen{0};
  engine.add_sink_factory([&seen](std::size_t) {
    return [&seen](const capture::TaggedPacket&) { ++seen; };
  });
  for (int i = 0; i < 500; ++i)
    ASSERT_TRUE(engine.offer(make_udp(static_cast<std::uint16_t>(1 + i)),
                             sim::Direction::kInbound));
  engine.start();
  engine.stop();
  const auto s = engine.stats();
  EXPECT_EQ(s.abandoned, 0u);
  EXPECT_EQ(s.consumed, s.accepted);
  EXPECT_EQ(seen.load(), s.consumed);
}

// The chaos-CI gate: with no faults armed, a 1-shard pipeline must
// never restart, quarantine, or abandon anything.
TEST(Supervisor, OneShardBaselineIsQuiet) {
  capture::ShardedCaptureEngine engine({.shards = 1});
  std::atomic<std::uint64_t> seen{0};
  engine.add_sink_factory([&seen](std::size_t) {
    return [&seen](const capture::TaggedPacket&) { ++seen; };
  });
  engine.start();
  for (int i = 0; i < 5000; ++i) {
    auto pkt = make_udp(static_cast<std::uint16_t>(1 + (i % 60000)), i);
    while (!engine.offer(std::move(pkt), sim::Direction::kInbound)) {
      std::this_thread::yield();
      pkt = make_udp(static_cast<std::uint16_t>(1 + (i % 60000)), i);
    }
  }
  engine.stop();
  EXPECT_EQ(engine.worker_restarts(), 0u);
  EXPECT_EQ(engine.quarantined_shards(), 0u);
  const auto s = engine.stats();
  EXPECT_EQ(s.offered, 5000u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.abandoned, 0u);
  EXPECT_EQ(s.consumed, s.accepted);
  EXPECT_EQ(seen.load(), 5000u);
}

// ---------------------------------------------------------------------------
// Store retry paths

capture::FlowRecord make_flow(std::uint16_t port, std::int64_t ts_ns) {
  capture::FlowRecord f;
  f.tuple = packet::FiveTuple{Ipv4Address(10, 0, 16, 2),
                              Ipv4Address(8, 8, 8, 8), port, 53, 17};
  f.first_ts = Timestamp::from_nanos(ts_ns);
  f.last_ts = f.first_ts;
  f.packets = 1;
  f.bytes = 100;
  return f;
}

TEST(StoreRetry, TransientIngestFailuresAreRetriedThrough) {
  // Every 3rd ingest attempt fails; a 2-attempt retry always clears it.
  FaultPlan plan;
  plan.faults.push_back({.site = "store.ingest", .kind = FaultKind::kFail,
                         .every_n = 3});
  FaultScope scope(plan);

  store::ShardedFlowIngester ingester(2);
  for (int i = 0; i < 20; ++i)
    ingester.ingest(static_cast<std::size_t>(i % 2),
                    make_flow(static_cast<std::uint16_t>(1000 + i), i));
  store::DataStore store;
  RetryPolicy policy;
  const auto result = ingester.merge_into(store, policy, [](Duration) {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 20u);
  EXPECT_EQ(ingester.pending(), 0u);
  EXPECT_EQ(store.catalog().total_flows, 20u);
  EXPECT_GT(scope.injector().fires("store.ingest"), 0u);
}

TEST(StoreRetry, ExhaustionRebuffersTailAndRecoversNextMerge) {
  store::ShardedFlowIngester ingester(2);
  for (int i = 0; i < 10; ++i)
    ingester.ingest(static_cast<std::size_t>(i % 2),
                    make_flow(static_cast<std::uint16_t>(2000 + i), i));
  store::DataStore store;
  RetryPolicy policy;
  policy.max_attempts = 2;
  {
    // Hard outage: every attempt fails, retries exhaust mid-merge.
    FaultPlan plan;
    plan.faults.push_back({.site = "store.ingest", .kind = FaultKind::kFail,
                           .every_n = 1});
    FaultScope scope(plan);
    const auto result = ingester.merge_into(store, policy, [](Duration) {});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, "retry_exhausted");
  }
  // Nothing ingested, nothing lost: all 10 flows still pending.
  EXPECT_EQ(store.catalog().total_flows, 0u);
  EXPECT_EQ(ingester.pending(), 10u);
  // Outage over: the re-buffered flows merge completely.
  const auto result = ingester.merge_into(store, policy, [](Duration) {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 10u);
  EXPECT_EQ(ingester.pending(), 0u);
  EXPECT_EQ(store.catalog().total_flows, 10u);
}

TEST(StoreRetry, PartialExhaustionKeepsIngestedPrefix) {
  store::ShardedFlowIngester ingester(1);
  for (int i = 0; i < 10; ++i)
    ingester.ingest(0, make_flow(static_cast<std::uint16_t>(3000 + i), i));
  store::DataStore store;
  RetryPolicy policy;
  policy.max_attempts = 2;
  {
    // First 4 ingest attempts succeed, everything after fails: the
    // merge lands a prefix, then exhausts.
    FaultPlan plan;
    plan.faults.push_back({.site = "store.ingest", .kind = FaultKind::kFail,
                           .every_n = 1, .skip_first = 4});
    FaultScope scope(plan);
    const auto result = ingester.merge_into(store, policy, [](Duration) {});
    ASSERT_FALSE(result.ok());
  }
  EXPECT_EQ(store.catalog().total_flows, 4u);
  EXPECT_EQ(ingester.pending(), 6u);
  const auto result = ingester.merge_into(store, policy, [](Duration) {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 6u);
  EXPECT_EQ(store.catalog().total_flows, 10u);
  EXPECT_EQ(ingester.merged_total(), 10u);
}

// ---------------------------------------------------------------------------
// Chaos suite: the golden-trace fixture replayed through the full
// supervised pipeline — engine workers, flow meters, dataset collector,
// store ingest, FastLoop — once per fault class. Regardless of what is
// injected, the run must end with exact accounting, every fault
// recorded in obs, zero FastLoop verdicts shed, and a pipeline that
// reports Healthy once the pressure is gone.

struct ChaosFrame {
  std::int64_t ts_ns = 0;
  sim::Direction dir = sim::Direction::kInbound;
  packet::TrafficLabel label = packet::TrafficLabel::kBenign;
  std::vector<std::uint8_t> bytes;
};

std::vector<ChaosFrame> read_golden_fixture() {
  std::ifstream in(CAMPUSLAB_TEST_DATA_DIR "/golden_trace_frames.txt");
  std::vector<ChaosFrame> trace;
  std::string line;
  auto nibble = [](char c) -> std::uint8_t {
    return static_cast<std::uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    int dir = 0, label = 0;
    std::string hex;
    ChaosFrame f;
    fields >> f.ts_ns >> dir >> label >> hex;
    f.dir = static_cast<sim::Direction>(dir);
    f.label = static_cast<packet::TrafficLabel>(label);
    f.bytes.reserve(hex.size() / 2);
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
      f.bytes.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) |
                                                  nibble(hex[i + 1])));
    trace.push_back(std::move(f));
  }
  return trace;
}

/// Stump over quantized frame size — attack-sized DNS responses land
/// above the split with confidence 1.0 (same package as obs_test).
control::DeploymentPackage make_chaos_package() {
  ml::Dataset data(features::packet_feature_names(), {"benign", "attack"});
  std::vector<double> row(features::kPacketFeatureCount, 0.0);
  for (int i = 0; i < 20; ++i) {
    row[static_cast<std::size_t>(features::PacketFeature::kFrameBytes)] =
        500.0;
    data.add(row, 0);
    row[static_cast<std::size_t>(features::PacketFeature::kFrameBytes)] =
        900.0;
    data.add(row, 1);
  }
  ml::TreeConfig cfg;
  cfg.max_depth = 2;
  control::DeploymentPackage package;
  package.student = ml::DecisionTree(cfg);
  package.student.fit(data);
  package.task = control::AutomationTask::dns_amplification_drop();
  std::vector<std::pair<double, double>> ranges(
      features::kPacketFeatureCount,
      {0.0, static_cast<double>(dataplane::Quantizer::kMaxQ) + 1.0});
  package.quantizer = dataplane::Quantizer::from_ranges(std::move(ranges));
  package.strategy = "tree_walk";
  return package;
}

void run_chaos_class(const char* name, FaultSpec spec) {
  SCOPED_TRACE(name);
  const auto trace = read_golden_fixture();
  ASSERT_GT(trace.size(), 100u) << "golden fixture missing";

  FaultPlan plan;
  plan.seed = FaultPlan::seed_from_env(1);
  plan.faults.push_back(std::move(spec));
  const std::string site = plan.faults[0].site;
  auto& fault_counter = obs::Registry::global().counter(
      "resilience.faults_injected_total", "site=" + site);
  const auto counter_before = fault_counter.value();
  FaultScope scope(plan);

  constexpr std::size_t kShards = 2;
  // Budget must absorb every injected worker death without quarantine:
  // the chaos contract is "survives and recovers", not "reroutes".
  capture::ShardedCaptureEngine engine({.shards = kShards,
                                        .ring_capacity = 1 << 9,
                                        .max_worker_restarts = 64});
  resilience::DegradationController controller;
  store::ShardedFlowIngester ingester(kShards);
  std::vector<std::unique_ptr<capture::FlowMeter>> meters;
  std::vector<std::unique_ptr<features::PacketDatasetCollector>> collectors;
  for (std::size_t s = 0; s < kShards; ++s) {
    meters.push_back(std::make_unique<capture::FlowMeter>());
    meters.back()->set_sink(
        [&ingester, s](const capture::FlowRecord& flow) {
          ingester.ingest(s, flow);
        });
    collectors.push_back(
        std::make_unique<features::PacketDatasetCollector>());
    collectors.back()->set_degradation(&controller);
  }
  engine.add_sink_factory([&meters, &collectors](std::size_t s) {
    return [meter = meters[s].get(), collector = collectors[s].get()](
               const capture::TaggedPacket& t) {
      meter->offer(t.pkt, t.view, t.dir);
      collector->offer(t.pkt, t.view, t.dir);
    };
  });

  auto loop = control::FastLoop::deploy(make_chaos_package());
  ASSERT_TRUE(loop.ok());
  loop.value()->set_degradation(&controller);

  engine.start();
  std::uint64_t inspected = 0;
  std::size_t i = 0;
  for (const auto& f : trace) {
    packet::Packet pkt;
    pkt.ts = Timestamp::from_nanos(f.ts_ns);
    pkt.label = f.label;
    pkt.assign(f.bytes);
    if (f.dir == sim::Direction::kInbound) {
      (void)loop.value()->inspect(pkt);
      ++inspected;
    }
    (void)engine.offer(std::move(pkt), f.dir);
    if (++i % 16 == 0) {
      double occ = 0.0;
      for (std::size_t s = 0; s < kShards; ++s)
        occ = std::max(occ, static_cast<double>(engine.ring_occupancy(s)) /
                                static_cast<double>(1 << 9));
      controller.update(occ);
    }
  }
  engine.stop();

  // Store merge rides the retry path (store.ingest faults land here).
  store::DataStore store;
  RetryPolicy policy;
  policy.max_attempts = 4;
  const auto merged = ingester.merge_into(store, policy, [](Duration) {});
  EXPECT_TRUE(merged.ok());

  // 1. Every injected fault is recorded in obs, and something fired.
  const auto fires = scope.injector().fires(site);
  EXPECT_GT(fires, 0u) << "fault class never fired — spec too sparse";
  EXPECT_EQ(fault_counter.value() - counter_before, fires);

  // 2. Worker deaths (if this class causes any) were all supervised.
  EXPECT_EQ(engine.quarantined_shards(), 0u);

  // 3. Accounting identity is exact despite the chaos.
  const auto s = engine.stats();
  EXPECT_EQ(s.accepted + s.dropped, s.offered);
  EXPECT_EQ(s.consumed + s.abandoned, s.accepted);

  // 4. FastLoop verdicts were never shed; the protected path saw every
  // inbound frame.
  EXPECT_EQ(controller.shed_count(ShedClass::kFastLoopVerdict), 0u);
  EXPECT_GE(controller.fastloop_protected(), inspected);
  EXPECT_EQ(loop.value()->stats().inspected, inspected);

  // 5. Pressure gone, the pipeline reports Healthy again.
  for (int calm = 0; calm < 8; ++calm) controller.update(0.0);
  EXPECT_EQ(controller.state(), HealthState::kHealthy);
}

TEST(ChaosGoldenTrace, SinkExceptionWorkerDeaths) {
  run_chaos_class("sink_throw",
                  {.site = "capture.sink_dispatch",
                   .kind = FaultKind::kThrow, .every_n = 40,
                   .max_fires = 6});
}

TEST(ChaosGoldenTrace, SlowConsumerDelays) {
  run_chaos_class("sink_delay",
                  {.site = "capture.sink_dispatch",
                   .kind = FaultKind::kDelay, .every_n = 25,
                   .delay = Duration::micros(200)});
}

TEST(ChaosGoldenTrace, FlowUpdateWorkerDeaths) {
  run_chaos_class("flow_throw",
                  {.site = "flow.update", .kind = FaultKind::kThrow,
                   .every_n = 60, .max_fires = 4});
}

TEST(ChaosGoldenTrace, DatasetAppendStalls) {
  run_chaos_class("dataset_delay",
                  {.site = "dataset.append", .kind = FaultKind::kDelay,
                   .every_n = 30, .delay = Duration::micros(150)});
}

TEST(ChaosGoldenTrace, StoreIngestFailuresRetried) {
  run_chaos_class("store_fail",
                  {.site = "store.ingest", .kind = FaultKind::kFail,
                   .every_n = 5});
}

TEST(StoreRetry, ArchiveWriteRetriesThroughInjectedFailures) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("campuslab_arch_retry_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto archive = store::PacketArchive::open({.directory = dir.string()});
  ASSERT_TRUE(archive.ok());
  FaultPlan plan;
  plan.faults.push_back({.site = "archive.write", .kind = FaultKind::kFail,
                         .every_n = 1, .max_fires = 2});
  FaultScope scope(plan);
  RetryPolicy policy;
  Rng rng(5);
  // First two attempts fail (injected), third lands.
  EXPECT_TRUE(archive.value().write(make_udp(9), policy, rng,
                                    [](Duration) {}).ok());
  EXPECT_EQ(archive.value().records_written(), 1u);
  EXPECT_EQ(scope.injector().fires("archive.write"), 2u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace campuslab

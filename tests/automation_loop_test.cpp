// AutomationLoop — the supervised retrain/canary/hot-swap stage machine.
//
// Covers the robustness contract end to end on the simulated campus:
// initial bootstrap, crash-restart recovery from the durable registry,
// drift-triggered retraining that actually promotes, canary gate and
// budget rollbacks that keep the incumbent, retry exhaustion degrading
// to "keep serving the last good model", the five seeded control.*
// fault sites ending Healthy with a model deployed, and the lock-free
// ModelHandle under concurrent swap/acquire (TSAN job).
#include "campuslab/testbed/automation_loop.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "campuslab/resilience/fault.h"

namespace campuslab::control {
namespace {

namespace fs = std::filesystem;
using packet::TrafficLabel;

/// Two-phase drift scenario (mirrors continual_test): a heavy
/// large-packet flood early, then a small-packet many-reflector flood
/// late — the regime the phase-1 model decays on. `phase2_pps` sets
/// how loud the drifted regime is: the drift-trigger test needs it to
/// dominate the verdict stream; the rollback tests keep it quiet and
/// trigger cycles explicitly.
testbed::TestbedConfig drift_scenario(std::uint64_t seed,
                                      double phase2_pps = 60) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 2400})
          .rate(1200)
          .starting_at(Timestamp::from_seconds(4))
          .lasting(Duration::seconds(14)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .with(sim::DnsAmplificationShape{.response_bytes = 300,
                                           .reflectors = 20})
          .rate(phase2_pps)
          .starting_at(Timestamp::from_seconds(45))
          .lasting(Duration::seconds(35)));

  cfg.collector.labeling.binary_target = TrafficLabel::kDnsAmplification;
  cfg.collector.attack_sample_rate = 0.5;
  cfg.collector.seed = seed + 5;
  return cfg;
}

AutomationConfig small_automation(std::uint64_t seed) {
  AutomationConfig cfg;
  cfg.development.teacher.n_trees = 12;
  cfg.development.teacher.seed = seed;
  cfg.development.extraction.student_max_depth = 5;
  cfg.development.extraction.synthetic_samples = 3000;
  cfg.development.extraction.seed = seed + 1;
  cfg.development.seed = seed + 2;

  cfg.drift.window = 1500;
  cfg.drift.bins = 8;
  cfg.drift.min_samples = 300;
  cfg.drift.trigger_threshold = 0.2;
  cfg.drift.clear_threshold = 0.1;
  cfg.drift.trigger_windows = 2;

  cfg.drift_check_interval = Duration::seconds(5);
  cfg.canary_duration = Duration::seconds(5);
  cfg.gate.min_precision = 0.6;
  cfg.gate.min_block_rate = 0.3;
  cfg.gate.max_benign_loss = 0.2;
  cfg.gate.min_observed = 500;
  cfg.min_window_rows = 200;
  cfg.retry.initial_backoff = Duration::micros(10);
  cfg.retry.max_backoff = Duration::micros(100);
  cfg.seed = seed + 3;
  return cfg;
}

bool audit_has(const ModelRegistry& reg, AuditKind kind) {
  for (const auto& event : reg.audit_trail())
    if (event.kind == kind) return true;
  return false;
}

TEST(AutomationLoop, BootstrapTrainsAndPromotesVersionOne) {
  auto cfg = drift_scenario(51001);
  cfg.scenario.scenarios.pop_back();  // phase 1 only
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(20));

  AutomationLoop loop(small_automation(51001), bed);
  ASSERT_TRUE(loop.start().ok());

  EXPECT_EQ(loop.handle().version(), 1u);
  EXPECT_NE(loop.handle().acquire(), nullptr);
  EXPECT_EQ(loop.registry().active_version(), 1u);
  EXPECT_EQ(loop.stage(), LoopStage::kIdle);
  EXPECT_EQ(loop.health(), LoopHealth::kHealthy);
  EXPECT_TRUE(loop.cycles().empty());
  EXPECT_TRUE(audit_has(loop.registry(), AuditKind::kPublished));
  EXPECT_TRUE(audit_has(loop.registry(), AuditKind::kPromoted));
}

TEST(AutomationLoop, StartWithoutAttackDataFailsCleanly) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 51002;
  cfg.collector.labeling.binary_target = TrafficLabel::kDnsAmplification;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(10));  // benign only

  AutomationLoop loop(small_automation(51002), bed);
  const auto s = loop.start();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.error().code == "window_single_class" ||
              s.error().code == "window_too_small")
      << s.error().code;
}

TEST(AutomationLoop, RestartRecoversLastPromotedVersionWithoutRetraining) {
  const auto dir = fs::path(::testing::TempDir()) / "automation_recovery";
  fs::remove_all(dir);
  fs::create_directories(dir);

  {
    auto cfg = drift_scenario(51003);
    cfg.scenario.scenarios.pop_back();
    testbed::Testbed bed(cfg);
    bed.run(Duration::seconds(20));
    auto auto_cfg = small_automation(51003);
    auto_cfg.registry_directory = dir.string();
    AutomationLoop loop(auto_cfg, bed);
    ASSERT_TRUE(loop.start().ok());
    ASSERT_EQ(loop.registry().active_version(), 1u);
  }

  // "Process restart": a fresh testbed with NO gathered data — recovery
  // must come entirely from the persisted registry.
  testbed::TestbedConfig fresh;
  fresh.scenario.campus.seed = 51004;
  fresh.collector.labeling.binary_target = TrafficLabel::kDnsAmplification;
  testbed::Testbed bed(fresh);
  auto auto_cfg = small_automation(51004);
  auto_cfg.registry_directory = dir.string();
  AutomationLoop loop(auto_cfg, bed);
  ASSERT_TRUE(loop.start().ok());

  EXPECT_EQ(loop.handle().version(), 1u);
  EXPECT_NE(loop.handle().acquire(), nullptr);
  EXPECT_EQ(loop.registry().entries().size(), 1u);
  EXPECT_TRUE(audit_has(loop.registry(), AuditKind::kRecovered));
  fs::remove_all(dir);
}

TEST(AutomationLoop, DriftTriggersRetrainAndPromotesWithoutDroppingPackets) {
  testbed::Testbed bed(drift_scenario(51005, 1200));
  bed.run(Duration::seconds(20));
  AutomationLoop loop(small_automation(51005), bed);
  ASSERT_TRUE(loop.start().ok());
  bed.run(Duration::seconds(70));  // through phase 2 (45s-80s)

  ASSERT_FALSE(loop.cycles().empty())
      << "phase-2 drift never armed the detector: judged="
      << loop.drift().windows_judged()
      << " score=" << loop.drift().last_score_distance()
      << " rate_delta=" << loop.drift().last_rate_delta()
      << " triggers=" << loop.drift().triggers();
  bool promoted = false;
  for (const auto& cycle : loop.cycles())
    promoted |= cycle.outcome == CycleOutcome::kPromoted;
  EXPECT_TRUE(promoted) << "no retrained model was promoted";
  EXPECT_GE(loop.registry().active_version(), 2u);
  EXPECT_EQ(loop.handle().version(), loop.registry().active_version());
  EXPECT_EQ(loop.health(), LoopHealth::kHealthy);
  EXPECT_TRUE(audit_has(loop.registry(), AuditKind::kDriftTrigger));

  // Zero acked-flow loss: retraining and hot swaps never backpressured
  // the capture path into dropping.
  EXPECT_EQ(bed.capture_engine().stats().dropped, 0u);
}

TEST(AutomationLoop, CanaryGateFailureRollsBackAndKeepsIncumbent) {
  testbed::Testbed bed(drift_scenario(51006));
  bed.run(Duration::seconds(20));
  auto cfg = small_automation(51006);
  cfg.gate.min_block_rate = 1.1;  // unsatisfiable: every candidate fails
  cfg.gate.min_observed = 100;
  AutomationLoop loop(cfg, bed);
  ASSERT_TRUE(loop.start().ok());
  bed.run(Duration::seconds(30));  // fresh phase-2 data in the reservoir

  ASSERT_TRUE(loop.trigger_cycle().ok());
  ASSERT_TRUE(loop.cycle_in_progress());
  bed.run(Duration::seconds(6));  // let the canary window elapse

  ASSERT_FALSE(loop.cycle_in_progress());
  ASSERT_FALSE(loop.cycles().empty());
  const auto& cycle = loop.cycles().back();
  EXPECT_EQ(cycle.outcome, CycleOutcome::kRolledBack);
  EXPECT_EQ(cycle.error_code, "canary_block_rate");
  // The incumbent kept serving; the candidate is published but never
  // promoted; a rollback is the guardrail working, not a degradation.
  EXPECT_EQ(loop.handle().version(), 1u);
  EXPECT_EQ(loop.registry().active_version(), 1u);
  EXPECT_GE(loop.registry().entries().size(), 2u);
  EXPECT_EQ(loop.health(), LoopHealth::kHealthy);
  EXPECT_TRUE(audit_has(loop.registry(), AuditKind::kRolledBack));
}

TEST(AutomationLoop, BudgetOverrunRollsBack) {
  testbed::Testbed bed(drift_scenario(51007));
  bed.run(Duration::seconds(20));
  auto cfg = small_automation(51007);
  // A gate every candidate passes, then an unsatisfiable budget cap.
  cfg.gate.min_precision = 0.0;
  cfg.gate.min_block_rate = 0.0;
  cfg.gate.max_benign_loss = 1.0;
  cfg.gate.min_observed = 1;
  cfg.max_budget_utilization = 1e-6;
  AutomationLoop loop(cfg, bed);
  ASSERT_TRUE(loop.start().ok());
  bed.run(Duration::seconds(30));

  ASSERT_TRUE(loop.trigger_cycle().ok());
  bed.run(Duration::seconds(6));

  ASSERT_FALSE(loop.cycles().empty());
  EXPECT_EQ(loop.cycles().back().outcome, CycleOutcome::kRolledBack);
  EXPECT_EQ(loop.cycles().back().error_code, "budget_utilization");
  EXPECT_EQ(loop.handle().version(), 1u);
  EXPECT_EQ(loop.registry().active_version(), 1u);
}

TEST(AutomationLoop, RetryExhaustionAbortsCycleButKeepsServing) {
  testbed::Testbed bed(drift_scenario(51008));
  bed.run(Duration::seconds(20));
  auto cfg = small_automation(51008);
  cfg.retry.max_attempts = 2;
  AutomationLoop loop(cfg, bed);
  ASSERT_TRUE(loop.start().ok());
  bed.run(Duration::seconds(30));

  resilience::FaultPlan plan;
  plan.seed = 7;
  plan.faults.push_back(
      {.site = "control.train", .kind = resilience::FaultKind::kFail,
       .every_n = 1});
  resilience::FaultScope scope(std::move(plan));

  const auto s = loop.trigger_cycle();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "retry_exhausted");
  ASSERT_FALSE(loop.cycles().empty());
  EXPECT_EQ(loop.cycles().back().outcome, CycleOutcome::kAborted);
  EXPECT_EQ(loop.health(), LoopHealth::kDegraded);
  // Degraded, not dark: the incumbent still serves the dataplane.
  EXPECT_EQ(loop.handle().version(), 1u);
  EXPECT_NE(loop.handle().acquire(), nullptr);
  EXPECT_TRUE(audit_has(loop.registry(), AuditKind::kAborted));
}

// Acceptance: seeded transient faults at ALL FIVE control.* sites —
// throws and failures alike — are absorbed by the per-stage retry
// machinery; the loop ends Healthy with a model deployed. The seed
// comes from CAMPUSLAB_FAULT_SEED (chaos-CI matrix).
TEST(AutomationLoop, SeededFaultsAtAllFiveSitesEndHealthy) {
  const std::uint64_t seed = resilience::FaultPlan::seed_from_env(1);
  resilience::FaultPlan plan;
  plan.seed = seed;
  const char* sites[] = {"control.train", "control.extract",
                         "control.compile", "control.swap",
                         "control.registry"};
  for (std::size_t i = 0; i < 5; ++i) {
    resilience::FaultSpec spec;
    spec.site = sites[i];
    // Alternate hard failures and thrown faults across the sites; at
    // most two fires each so a 6-attempt retry budget always clears.
    spec.kind = (i + seed) % 2 == 0 ? resilience::FaultKind::kFail
                                    : resilience::FaultKind::kThrow;
    spec.probability = 0.5;
    spec.max_fires = 2;
    plan.faults.push_back(std::move(spec));
  }
  resilience::FaultScope scope(std::move(plan));

  testbed::Testbed bed(drift_scenario(51009 + seed));
  bed.run(Duration::seconds(20));
  auto cfg = small_automation(51009 + seed);
  cfg.retry.max_attempts = 6;
  AutomationLoop loop(cfg, bed);
  ASSERT_TRUE(loop.start().ok());
  bed.run(Duration::seconds(30));
  ASSERT_TRUE(loop.trigger_cycle().ok());
  bed.run(Duration::seconds(20));  // canary (+ possible extensions)

  EXPECT_FALSE(loop.cycle_in_progress());
  EXPECT_EQ(loop.health(), LoopHealth::kHealthy)
      << "seed " << seed << ": a transient fault was not absorbed";
  EXPECT_NE(loop.handle().acquire(), nullptr)
      << "the loop left the dataplane without a model";
  EXPECT_GE(loop.handle().version(), 1u);
  EXPECT_EQ(loop.handle().version(), loop.registry().active_version());
  // Audit consistency: every promoted version exists in the registry.
  for (const auto& event : loop.registry().audit_trail()) {
    if (event.kind == AuditKind::kPromoted) {
      EXPECT_NE(loop.registry().find(event.version), nullptr)
          << "phantom promotion of v" << event.version;
    }
  }
  EXPECT_EQ(bed.capture_engine().stats().dropped, 0u);
}

// TSAN target (CI runs -R AutomationConcurrency under ThreadSanitizer):
// the RCU-style ModelHandle must allow concurrent swap and acquire with
// no locks and no races — this is the "ingest never stops" property at
// the memory-model level.
TEST(AutomationConcurrency, ModelHandleSwapVersusAcquire) {
  ModelHandle handle;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::uint32_t last_seen = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = handle.acquire();
        if (snap) {
          // Versions only move forward in this test; a torn or stale
          // pointer would show up as a regression (or as a TSAN race).
          EXPECT_GE(snap->version, last_seen);
          last_seen = snap->version;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint32_t v = 1; v <= 2000; ++v) handle.swap(v, nullptr);
  // Keep the final version live until every reader has demonstrably
  // raced against the swaps (under a loaded machine the writer can
  // otherwise finish before a reader is even scheduled).
  while (reads.load(std::memory_order_relaxed) < 1000)
    std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(handle.version(), 2000u);
  EXPECT_GE(reads.load(), 1000u);
}

}  // namespace
}  // namespace campuslab::control

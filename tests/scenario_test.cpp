// Scenario DSL suite: the ref-qualified builder, the composition
// algebra (then / alongside / triggered), intensity envelopes, strict
// victim-set resolution, per-frame label + scenario-id stamping,
// per-scenario delivery accounting, seed determinism, and the legacy
// shim pins — the six frame-stream hashes recorded from the retired
// per-attack classes, which the shims must reproduce byte-identically.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "campuslab/sim/attacks.h"
#include "campuslab/sim/simulator.h"

namespace campuslab::sim {
namespace {

using packet::TrafficLabel;

// ------------------------------------------------------------ builder

TEST(ScenarioBuilderTest, TemporaryChainMovesWithoutCopies) {
  const Scenario s =
      Scenario::attack(BehaviorKind::kSynFlood)
          .with(SynFloodShape{.target_port = 8443, .spoof_pool = 64})
          .intensity(IntensityEnvelope::ramp(100, 5000))
          .during(Timestamp::from_seconds(10), Timestamp::from_seconds(70))
          .against(victims().role(HostRole::kWebServer))
          .with_seed(7)
          .named("ramped flood");

  ASSERT_EQ(s.phases().size(), 1u);
  const auto& p = s.phases()[0];
  EXPECT_EQ(p.kind, BehaviorKind::kSynFlood);
  EXPECT_EQ(std::get<SynFloodShape>(p.shape).target_port, 8443);
  EXPECT_EQ(p.intensity.kind(), IntensityEnvelope::Kind::kRamp);
  EXPECT_DOUBLE_EQ(p.intensity.peak(), 5000.0);
  EXPECT_EQ(p.start, Timestamp::from_seconds(10));
  EXPECT_EQ(p.duration, Duration::seconds(60));
  ASSERT_TRUE(p.seed.has_value());
  EXPECT_EQ(*p.seed, 7u);
  EXPECT_EQ(p.name, "ramped flood");
}

TEST(ScenarioBuilderTest, LvalueChainingWorksToo) {
  ScenarioBuilder b(BehaviorKind::kPortScan);
  b.rate(250).starting_at(Timestamp::from_seconds(3));
  b.lasting(Duration::seconds(9));
  const Scenario s = b.build();
  ASSERT_EQ(s.phases().size(), 1u);
  EXPECT_EQ(s.phases()[0].start, Timestamp::from_seconds(3));
  EXPECT_EQ(s.phases()[0].duration, Duration::seconds(9));
  EXPECT_DOUBLE_EQ(s.phases()[0].intensity.peak(), 250.0);
}

TEST(ScenarioBuilderTest, UnsetFieldsFallBackToTheSpecDefaults) {
  for (const auto& spec : scenario_specs()) {
    const Scenario s = Scenario::attack(spec.kind);
    ASSERT_EQ(s.phases().size(), 1u) << spec.name;
    const auto& p = s.phases()[0];
    EXPECT_DOUBLE_EQ(p.intensity.peak(), spec.default_rate_pps)
        << spec.name;
    EXPECT_EQ(p.duration, spec.default_duration) << spec.name;
    EXPECT_EQ(p.name, std::string(spec.name));
    EXPECT_FALSE(p.seed.has_value()) << spec.name;
  }
}

// -------------------------------------------------------- composition

Scenario window(double start_s, double len_s) {
  return Scenario::attack(BehaviorKind::kSynFlood)
      .rate(100)
      .starting_at(Timestamp::from_seconds(start_s))
      .lasting(Duration::seconds(len_s));
}

TEST(ScenarioComposition, ThenStartsTheContinuationAtTheEnd) {
  const auto s = window(5, 10).then(window(2, 3));
  ASSERT_EQ(s.phases().size(), 2u);
  EXPECT_EQ(s.phases()[0].start, Timestamp::from_seconds(5));
  EXPECT_EQ(s.phases()[1].start, Timestamp::from_seconds(15));
  EXPECT_EQ(s.phases()[1].duration, Duration::seconds(3));
  EXPECT_EQ(s.end(), Timestamp::from_seconds(18));
}

TEST(ScenarioComposition, AlongsideKeepsBothTimelines) {
  const auto s = window(5, 10).alongside(window(2, 3));
  ASSERT_EQ(s.phases().size(), 2u);
  EXPECT_EQ(s.begin(), Timestamp::from_seconds(2));
  EXPECT_EQ(s.end(), Timestamp::from_seconds(15));
}

TEST(ScenarioComposition, TriggeredOffsetsFromTheBeginning) {
  const auto s =
      window(5, 40).triggered(window(0, 10), Duration::seconds(30));
  ASSERT_EQ(s.phases().size(), 2u);
  // Trigger fires 30 s after the scenario begins at t=5.
  EXPECT_EQ(s.phases()[1].start, Timestamp::from_seconds(35));
}

// ---------------------------------------------------------- intensity

TEST(IntensityEnvelopeTest, ValidationRejectsMalformedCurves) {
  EXPECT_TRUE(IntensityEnvelope::constant(100).validate().ok());
  const auto bad = IntensityEnvelope::constant(-5).validate();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "scenario_bad_intensity");
  EXPECT_FALSE(IntensityEnvelope::square_wave(100, Duration::seconds(0))
                   .validate()
                   .ok());
}

TEST(IntensityEnvelopeTest, CurveShapesEvaluateAsDocumented) {
  const CampusConfig campus;
  const auto t0 = Timestamp::from_seconds(100);
  const auto win = Duration::seconds(10);

  const auto ramp = IntensityEnvelope::ramp(100, 300);
  EXPECT_NEAR(ramp.rate_at(t0, t0, win, campus), 100, 1e-6);
  EXPECT_NEAR(ramp.rate_at(t0 + Duration::seconds(5), t0, win, campus),
              200, 1e-6);
  EXPECT_DOUBLE_EQ(ramp.peak(), 300);

  const auto wave =
      IntensityEnvelope::square_wave(1000, Duration::seconds(2), 0.5);
  EXPECT_NEAR(wave.rate_at(t0 + Duration::millis(500), t0, win, campus),
              1000, 1e-6);
  EXPECT_NEAR(wave.rate_at(t0 + Duration::millis(1500), t0, win, campus),
              0, 1e-6);
  // The off half reports when the envelope turns back on.
  const auto next = wave.next_active(Duration::millis(1500));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, Duration::seconds(2));

  // Diurnal modulation never exceeds the declared peak, and applies
  // even though campus.diurnal defaults on/off independently.
  const auto day = IntensityEnvelope::diurnal(2000);
  for (int h = 0; h < 24; ++h) {
    const auto t = t0 + Duration::seconds(3600 * h);
    EXPECT_LE(day.rate_at(t, t0, Duration::seconds(86'400 * 2), campus),
              day.peak() + 1e-9);
  }
}

// ------------------------------------------------------- victim sets

TEST(VictimSelectorTest, ResolutionIsStrictAndDeterministic) {
  const Topology topo{CampusConfig{}};

  Rng r1(42), r2(42);
  const auto a = victims().role(HostRole::kWiredClient).pick(5);
  const auto h1 = a.resolve(topo, r1);
  const auto h2 = a.resolve(topo, r2);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  ASSERT_EQ(h1.value().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(h1.value()[i].id, h2.value()[i].id);

  // pick() beyond the set is an error, not a clamp.
  Rng r3(42);
  const auto too_many =
      victims().role(HostRole::kSshGateway).pick(1000).resolve(topo, r3);
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.error().code, "scenario_bad_victim");
}

TEST(VictimSelectorTest, ClientIndexOutOfRangeIsAnErrorNotAClamp) {
  ScenarioConfig cfg;
  cfg.campus.seed = 21;
  CampusSimulator sim(cfg);
  const auto armed = sim.add_scenario(
      Scenario::attack(BehaviorKind::kFlashCrowd)
          .against(victims().client_index(1'000'000))
          .rate(500)
          .starting_at(Timestamp::from_seconds(1))
          .lasting(Duration::seconds(4)));
  ASSERT_FALSE(armed.ok());
  EXPECT_EQ(armed.error().code, "scenario_bad_victim");
}

// Regression for the legacy FlashCrowdConfig::client_index footgun: the
// old injector silently clamped an out-of-range index onto the last
// client; the shim now surfaces a scenario_bad_victim arming error.
TEST(VictimSelectorTest, LegacyFlashCrowdFootgunSurfacesAsError) {
  ScenarioConfig cfg;
  cfg.campus.seed = 22;
  FlashCrowdConfig crowd;
  crowd.start = Timestamp::from_seconds(1);
  crowd.duration = Duration::seconds(4);
  crowd.client_index = 999'999;
  cfg.scenarios.push_back(legacy_scenario(crowd));
  CampusSimulator sim(cfg);
  ASSERT_EQ(sim.scenario_errors().size(), 1u);
  EXPECT_EQ(sim.scenario_errors()[0].code, "scenario_bad_victim");
  EXPECT_TRUE(sim.scenario_instances().empty());
}

// -------------------------------------------------------- error codes

TEST(ScenarioErrors, StableCodesForEveryRejection) {
  ScenarioConfig cfg;
  cfg.campus.seed = 23;
  CampusSimulator sim(cfg);

  const auto empty = sim.add_scenario(Scenario{});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code, "scenario_empty");

  const auto no_window = sim.add_scenario(
      Scenario::attack(BehaviorKind::kSynFlood).lasting(
          Duration::seconds(0)));
  ASSERT_FALSE(no_window.ok());
  EXPECT_EQ(no_window.error().code, "scenario_empty_window");

  const auto bad_rate =
      sim.add_scenario(Scenario::attack(BehaviorKind::kSynFlood).rate(-10));
  ASSERT_FALSE(bad_rate.ok());
  EXPECT_EQ(bad_rate.error().code, "scenario_bad_intensity");

  const auto mismatch = sim.add_scenario(
      Scenario::attack(BehaviorKind::kSynFlood).with(
          DnsAmplificationShape{}));
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.error().code, "scenario_shape_mismatch");

  EXPECT_TRUE(sim.scenario_instances().empty());
}

// ------------------------------------------- labels and scenario ids

TEST(ScenarioLabels, EveryFrameCarriesItsProvenance) {
  ScenarioConfig cfg;
  cfg.campus.seed = 24;
  cfg.campus.diurnal = false;
  cfg.scenarios.push_back(
      Scenario::attack(BehaviorKind::kDnsAmplification)
          .with(DnsAmplificationShape{.response_bytes = 1500})
          .rate(600)
          .starting_at(Timestamp::from_seconds(1))
          .lasting(Duration::seconds(5)));
  cfg.scenarios.push_back(Scenario::attack(BehaviorKind::kFlashCrowd)
                              .rate(400)
                              .starting_at(Timestamp::from_seconds(2))
                              .lasting(Duration::seconds(4)));
  CampusSimulator sim(cfg);
  ASSERT_TRUE(sim.scenario_errors().empty());
  ASSERT_EQ(sim.scenario_instances().size(), 2u);

  std::map<std::uint32_t, TrafficLabel> id_label;
  for (const auto& inst : sim.scenario_instances())
    id_label[inst.id] = inst.label;

  std::map<std::uint32_t, std::uint64_t> frames_by_id;
  std::uint64_t mislabeled = 0;
  sim.network().set_tap([&](const packet::Packet& p, Direction) {
    if (p.label != TrafficLabel::kBenign && p.scenario_id == 0)
      ++mislabeled;  // attack frame with no provenance
    if (p.scenario_id != 0) {
      ++frames_by_id[p.scenario_id];
      const auto it = id_label.find(p.scenario_id);
      ASSERT_NE(it, id_label.end()) << "unknown scenario id";
      // Frames from an instance carry its label; its un-labeled
      // response frames stay benign but keep the id.
      if (p.label != it->second && p.label != TrafficLabel::kBenign)
        ++mislabeled;
    }
  });
  sim.run_for(Duration::seconds(8));

  EXPECT_EQ(mislabeled, 0u);
  for (const auto& inst : sim.scenario_instances())
    EXPECT_GT(frames_by_id[inst.id], 100u) << inst.phase;
  // The flash crowd is benign-but-attributed: dominated by kBenign
  // frames yet still accounted to its instance.
  const auto crowd_id = sim.scenario_instances()[1].id;
  EXPECT_EQ(id_label[crowd_id], TrafficLabel::kBenign);
}

TEST(ScenarioAccounting, PerScenarioCountersTrackFrameFates) {
  ScenarioConfig cfg;
  cfg.campus.seed = 25;
  cfg.campus.diurnal = false;
  cfg.scenarios.push_back(Scenario::attack(BehaviorKind::kSynFlood)
                              .rate(900)
                              .starting_at(Timestamp::from_seconds(1))
                              .lasting(Duration::seconds(4)));
  cfg.scenarios.push_back(Scenario::attack(BehaviorKind::kSshBruteForce)
                              .rate(12)
                              .starting_at(Timestamp::from_seconds(1))
                              .lasting(Duration::seconds(4)));
  CampusSimulator sim(cfg);
  ASSERT_TRUE(sim.scenario_errors().empty());
  sim.run_for(Duration::seconds(7));

  const auto& per = sim.network().scenario_accounting();
  ASSERT_EQ(per.size(), 2u);
  for (const auto& inst : sim.scenario_instances()) {
    const auto it = per.find(inst.id);
    ASSERT_NE(it, per.end()) << inst.phase;
    const auto& c = it->second;
    EXPECT_GT(c.offered, 0u) << inst.phase;
    EXPECT_GT(c.bytes_offered, 0u) << inst.phase;
    EXPECT_GT(c.tapped, 0u) << inst.phase;
    EXPECT_LE(c.delivered + c.filtered + c.lost, c.offered) << inst.phase;
    EXPECT_GT(c.delivered, 0u) << inst.phase;
  }
  // The flood dwarfs the brute force in both frames and bytes.
  const auto flood = per.at(sim.scenario_instances()[0].id);
  const auto brute = per.at(sim.scenario_instances()[1].id);
  EXPECT_GT(flood.offered, brute.offered);
}

// ------------------------------------------------------ determinism

struct StreamHash {
  std::uint64_t h = 1469598103934665603ULL;
  std::uint64_t frames = 0;

  void byte(std::uint8_t b) noexcept {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i)
      byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void frame(const packet::Packet& p, Direction d) {
    ++frames;
    u64(static_cast<std::uint64_t>(p.ts.nanos()));
    byte(static_cast<std::uint8_t>(d));
    byte(static_cast<std::uint8_t>(p.label));
    u64(p.size());
    for (const auto b : p.bytes()) byte(b);
  }
};

StreamHash run_hashed(const ScenarioConfig& cfg, double seconds) {
  CampusSimulator sim(cfg);
  EXPECT_TRUE(sim.scenario_errors().empty());
  StreamHash hash;
  sim.network().set_tap(
      [&hash](const packet::Packet& p, Direction d) { hash.frame(p, d); });
  sim.run_for(Duration::from_seconds(seconds));
  return hash;
}

ScenarioConfig composed_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.campus.seed = seed;
  cfg.campus.diurnal = false;
  cfg.campus.wired_clients = 30;
  cfg.campus.wifi_clients = 40;
  const Scenario outbreak =
      Scenario::attack(BehaviorKind::kWorm)
          .with(WormShape{.infect_probability = 0.5,
                          .incubation = Duration::seconds(1),
                          .initial_bots = 6})
          .rate(300)
          .starting_at(Timestamp::from_seconds(1))
          .lasting(Duration::seconds(12))
          .named("outbreak");
  const Scenario exfil =
      Scenario::attack(BehaviorKind::kExfiltration)
          .rate(4)
          .starting_at(Timestamp::from_seconds(0))
          .lasting(Duration::seconds(8))
          .named("exfil");
  const Scenario flood =
      Scenario::attack(BehaviorKind::kSynFlood)
          .intensity(IntensityEnvelope::square_wave(
              800, Duration::seconds(2), 0.5))
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(8));
  cfg.scenarios.push_back(
      outbreak.triggered(exfil, Duration::seconds(5)).alongside(flood));
  return cfg;
}

TEST(ScenarioDeterminism, SameSeedReproducesTheExactByteStream) {
  const auto a = run_hashed(composed_config(31), 14);
  const auto b = run_hashed(composed_config(31), 14);
  EXPECT_GT(a.frames, 1000u);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.h, b.h);

  const auto c = run_hashed(composed_config(32), 14);
  EXPECT_NE(a.h, c.h);
}

TEST(ScenarioDeterminism, ExplicitPhaseSeedOverridesTheDerivedOne) {
  auto base = composed_config(33);
  auto reseeded = composed_config(33);
  reseeded.scenarios.clear();
  reseeded.scenarios.push_back(Scenario::attack(BehaviorKind::kSynFlood)
                                   .rate(800)
                                   .starting_at(Timestamp::from_seconds(2))
                                   .lasting(Duration::seconds(8))
                                   .with_seed(777));
  base.scenarios.clear();
  base.scenarios.push_back(Scenario::attack(BehaviorKind::kSynFlood)
                               .rate(800)
                               .starting_at(Timestamp::from_seconds(2))
                               .lasting(Duration::seconds(8))
                               .with_seed(778));
  EXPECT_NE(run_hashed(base, 12).h, run_hashed(reseeded, 12).h);
}

// --------------------------------------------------------------- worm

TEST(WormBehavior, InfectionChainStaysOnTheReachableSurface) {
  ScenarioConfig cfg;
  cfg.campus.seed = 34;
  cfg.campus.diurnal = false;
  cfg.campus.wired_clients = 40;
  cfg.campus.wifi_clients = 40;
  // One patient-zero bot and a modest exploit rate: the outbreak has to
  // grow through campus-to-campus spread, not external saturation.
  cfg.scenarios.push_back(
      Scenario::attack(BehaviorKind::kWorm)
          .with(WormShape{.infect_probability = 0.3,
                          .incubation = Duration::millis(500),
                          .initial_bots = 1})
          .rate(300)
          .starting_at(Timestamp::from_seconds(1))
          .lasting(Duration::seconds(15)));
  CampusSimulator sim(cfg);
  ASSERT_TRUE(sim.scenario_errors().empty());
  sim.run_for(Duration::seconds(18));

  // The susceptible surface the selector promises: clients + storage.
  std::set<std::uint32_t> surface;
  for (const auto& h : sim.network().topology().clients())
    surface.insert(h.id);
  surface.insert(sim.network().topology().storage_server().id);

  const auto& inst = sim.scenario_instances()[0];
  const auto chain = inst.emitter->infections();
  ASSERT_GT(chain.size(), 3u) << "worm never took hold";
  std::set<std::uint32_t> infected;
  bool campus_to_campus = false;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_TRUE(surface.count(chain[i].host_id))
        << "infected host off the susceptible surface";
    EXPECT_TRUE(infected.insert(chain[i].host_id).second)
        << "host infected twice";
    if (i > 0) EXPECT_GE(chain[i].at, chain[i - 1].at);
    if (chain[i].source_host_id != 0) {
      campus_to_campus = true;
      EXPECT_TRUE(infected.count(chain[i].source_host_id))
          << "infector was not itself infected first";
    }
  }
  // Propagation, not just the initial external seeding.
  EXPECT_TRUE(campus_to_campus);
  EXPECT_GT(inst.emitter->packets_emitted(), 500u);
}

TEST(WormBehavior, TriggeredExfilStartsAfterTheDelay) {
  ScenarioConfig cfg;
  cfg.campus.seed = 35;
  cfg.campus.diurnal = false;
  cfg.campus.wired_clients = 20;
  cfg.campus.wifi_clients = 20;
  const Scenario outbreak =
      Scenario::attack(BehaviorKind::kWorm)
          .rate(300)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(10));
  const Scenario exfil = Scenario::attack(BehaviorKind::kExfiltration)
                             .rate(6)
                             .starting_at(Timestamp::from_seconds(0))
                             .lasting(Duration::seconds(6));
  cfg.scenarios.push_back(
      outbreak.triggered(exfil, Duration::seconds(6)));
  CampusSimulator sim(cfg);
  ASSERT_TRUE(sim.scenario_errors().empty());

  Timestamp first_exfil = Timestamp::from_seconds(1e9);
  std::uint64_t exfil_frames = 0;
  sim.network().set_tap([&](const packet::Packet& p, Direction) {
    if (p.label == TrafficLabel::kExfiltration) {
      ++exfil_frames;
      if (p.ts < first_exfil) first_exfil = p.ts;
    }
  });
  sim.run_for(Duration::seconds(16));

  ASSERT_GT(exfil_frames, 0u);
  // Worm begins at t=2, trigger delay 6 s: nothing exfiltrates before 8.
  EXPECT_GE(first_exfil, Timestamp::from_seconds(8));
  // Low and slow: orders of magnitude below the worm's probe volume.
  EXPECT_LT(exfil_frames, 400u);
}

// --------------------------------------------------- legacy shim pins

// Frame-stream hashes recorded from the pre-refactor per-attack
// classes. The shims must reproduce them byte-for-byte; a mismatch
// means the migration changed emitted traffic.
void expect_pin(const char* what, const ScenarioConfig& cfg,
                double seconds, std::uint64_t want_frames,
                std::uint64_t want_hash) {
  const auto got = run_hashed(cfg, seconds);
  EXPECT_EQ(got.frames, want_frames) << what;
  EXPECT_EQ(got.h, want_hash) << what;
}

TEST(LegacyPins, DnsAmplificationIsByteIdentical) {
  ScenarioConfig s;
  s.campus.seed = 11;
  s.campus.diurnal = false;
  DnsAmplificationConfig amp;
  amp.start = Timestamp::from_seconds(2);
  amp.duration = Duration::seconds(6);
  amp.response_rate_pps = 500;
  amp.response_bytes = 1200;
  s.scenarios.push_back(legacy_scenario(amp));
  expect_pin("dns_amplification", s, 10, 16291, 0xe71d29319b57249eULL);
}

TEST(LegacyPins, SynFloodIsByteIdentical) {
  ScenarioConfig s;
  s.campus.seed = 12;
  s.campus.diurnal = false;
  SynFloodConfig flood;
  flood.start = Timestamp::from_seconds(2);
  flood.duration = Duration::seconds(6);
  flood.syn_rate_pps = 800;
  s.scenarios.push_back(legacy_scenario(flood));
  expect_pin("syn_flood", s, 10, 15787, 0xae60df386bfa12bcULL);
}

TEST(LegacyPins, PortScanIsByteIdentical) {
  ScenarioConfig s;
  s.campus.seed = 13;
  s.campus.diurnal = false;
  PortScanConfig scan;
  scan.start = Timestamp::from_seconds(1);
  scan.duration = Duration::seconds(8);
  scan.probe_rate_pps = 200;
  scan.ports_per_host = 5;
  s.scenarios.push_back(legacy_scenario(scan));
  expect_pin("port_scan", s, 10, 13115, 0x29b05ee54e3ed1aaULL);
}

TEST(LegacyPins, SshBruteForceIsByteIdentical) {
  ScenarioConfig s;
  s.campus.seed = 14;
  s.campus.diurnal = false;
  SshBruteForceConfig brute;
  brute.start = Timestamp::from_seconds(1);
  brute.duration = Duration::seconds(8);
  brute.attempts_per_second = 10;
  s.scenarios.push_back(legacy_scenario(brute));
  expect_pin("ssh_brute_force", s, 10, 8908, 0xe8c410bae1b439beULL);
}

TEST(LegacyPins, FlashCrowdIsByteIdentical) {
  ScenarioConfig s;
  s.campus.seed = 15;
  s.campus.diurnal = false;
  FlashCrowdConfig crowd;
  crowd.start = Timestamp::from_seconds(1);
  crowd.duration = Duration::seconds(5);
  crowd.rate_pps = 600;
  crowd.payload_bytes = 700;
  crowd.client_index = 3;
  crowd.sources = 12;
  s.scenarios.push_back(legacy_scenario(crowd));
  expect_pin("flash_crowd", s, 8, 17850, 0x6c81650ddd09054dULL);
}

TEST(LegacyPins, CombinedArmingOrderIsByteIdentical) {
  ScenarioConfig s;
  s.campus.seed = 16;
  s.campus.diurnal = false;
  DnsAmplificationConfig amp;
  amp.start = Timestamp::from_seconds(2);
  amp.duration = Duration::seconds(4);
  amp.response_rate_pps = 300;
  s.scenarios.push_back(legacy_scenario(amp));
  SynFloodConfig flood;
  flood.start = Timestamp::from_seconds(3);
  flood.duration = Duration::seconds(4);
  flood.syn_rate_pps = 400;
  s.scenarios.push_back(legacy_scenario(flood));
  PortScanConfig scan;
  scan.start = Timestamp::from_seconds(1);
  scan.duration = Duration::seconds(6);
  scan.probe_rate_pps = 150;
  s.scenarios.push_back(legacy_scenario(scan));
  SshBruteForceConfig brute;
  brute.start = Timestamp::from_seconds(1);
  brute.duration = Duration::seconds(6);
  brute.attempts_per_second = 6;
  s.scenarios.push_back(legacy_scenario(brute));
  FlashCrowdConfig crowd;
  crowd.start = Timestamp::from_seconds(4);
  crowd.duration = Duration::seconds(3);
  crowd.rate_pps = 350;
  crowd.client_index = 2;
  s.scenarios.push_back(legacy_scenario(crowd));
  expect_pin("combined", s, 9, 12261, 0xd3d632ca0a947d69ULL);
}

}  // namespace
}  // namespace campuslab::sim

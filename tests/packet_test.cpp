// Unit + property tests for campuslab::packet — addresses, checksums,
// header encode/decode round-trips, DNS (including compression pointers
// and malformed-input rejection), PacketBuilder frames, and PacketView
// layered decoding.
#include <gtest/gtest.h>

#include "campuslab/packet/addr.h"
#include "campuslab/packet/builder.h"
#include "campuslab/packet/checksum.h"
#include "campuslab/packet/dns.h"
#include "campuslab/packet/headers.h"
#include "campuslab/packet/view.h"
#include "campuslab/util/rng.h"

namespace campuslab::packet {
namespace {

Endpoint make_ep(std::uint32_t id, Ipv4Address ip, std::uint16_t port) {
  return Endpoint{MacAddress::from_id(id), ip, port};
}

// ------------------------------------------------------------- Addresses

TEST(Ipv4Address, ParseAndFormatRoundTrip) {
  const auto a = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.1.2.3");
  EXPECT_EQ(a->value(), 0x0A010203u);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("10..2.3").has_value());
}

TEST(Ipv4Address, PrefixMembership) {
  const Ipv4Address net(10, 2, 0, 0);
  EXPECT_TRUE(Ipv4Address(10, 2, 3, 4).in_prefix(net, 16));
  EXPECT_FALSE(Ipv4Address(10, 3, 0, 1).in_prefix(net, 16));
  EXPECT_TRUE(Ipv4Address(192, 168, 1, 1).in_prefix(net, 0));
  const Ipv4Address host(10, 2, 3, 4);
  EXPECT_TRUE(host.in_prefix(host, 32));
  EXPECT_FALSE(Ipv4Address(10, 2, 3, 5).in_prefix(host, 32));
}

TEST(MacAddress, FromIdStableAndLocal) {
  const auto m = MacAddress::from_id(0x01020304);
  EXPECT_EQ(m, MacAddress::from_id(0x01020304));
  EXPECT_EQ(m.octets()[0] & 0x02, 0x02);  // locally administered
  EXPECT_EQ(m.octets()[0] & 0x01, 0x00);  // unicast
  EXPECT_EQ(m.to_string(), "02:c1:01:02:03:04");
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const FiveTuple t{Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1000,
                    53, 17};
  const auto r = t.reversed();
  EXPECT_EQ(r.src, t.dst);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, BidirectionalCanonical) {
  const FiveTuple t{Ipv4Address(9, 9, 9, 9), Ipv4Address(2, 2, 2, 2), 1000,
                    53, 17};
  EXPECT_EQ(t.bidirectional(), t.reversed().bidirectional());
}

TEST(FiveTuple, HashSpreads) {
  // Property: nearby tuples hash to distinct values.
  std::set<std::uint64_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    FiveTuple t{Ipv4Address(0x0A000000 + i), Ipv4Address(2, 2, 2, 2),
                static_cast<std::uint16_t>(1024 + i), 80, 6};
    hashes.insert(t.hash());
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

// -------------------------------------------------------------- Checksum

TEST(Checksum, Rfc1071Example) {
  // Classic example from RFC 1071 §3.
  const std::array<std::uint8_t, 8> data{0x00, 0x01, 0xf2, 0x03,
                                         0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, OddLength) {
  const std::array<std::uint8_t, 3> data{0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xFBFD
  EXPECT_EQ(internet_checksum(data), 0xFBFD);
}

TEST(Checksum, ChunkedEqualsWhole) {
  Rng rng(5);
  std::vector<std::uint8_t> data(257);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  ChecksumAccumulator chunked;
  chunked.add(std::span(data).first(101));
  chunked.add(std::span(data).subspan(101, 55));
  chunked.add(std::span(data).subspan(156));
  EXPECT_EQ(chunked.finish(), internet_checksum(data));
}

TEST(Checksum, VerifyingCorrectPacketYieldsZero) {
  // A buffer with its own checksum embedded sums to 0xFFFF -> finish 0.
  Ipv4Header ip;
  ip.total_length = 40;
  ip.protocol = 6;
  ip.src = Ipv4Address(10, 0, 0, 1);
  ip.dst = Ipv4Address(10, 0, 0, 2);
  ByteWriter w;
  ip.encode(w);
  EXPECT_EQ(internet_checksum(w.view()), 0);
}

// ---------------------------------------------------------------- Headers

TEST(Headers, EthernetRoundTrip) {
  EthernetHeader h;
  h.dst = MacAddress::from_id(7);
  h.src = MacAddress::from_id(9);
  h.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  ByteWriter w;
  h.encode(w);
  EXPECT_EQ(w.size(), EthernetHeader::kSize);
  ByteReader r(w.view());
  const auto d = EthernetHeader::decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(d.dst, h.dst);
  EXPECT_EQ(d.src, h.src);
  EXPECT_EQ(d.ether_type, h.ether_type);
}

TEST(Headers, Ipv4RoundTrip) {
  Ipv4Header h;
  h.dscp_ecn = 0x2E;
  h.total_length = 1500;
  h.identification = 0xBEEF;
  h.flags = 0x2;
  h.ttl = 17;
  h.protocol = 17;
  h.src = Ipv4Address(172, 16, 5, 9);
  h.dst = Ipv4Address(8, 8, 8, 8);
  ByteWriter w;
  h.encode(w);
  ByteReader r(w.view());
  const auto d = Ipv4Header::decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(d.version, 4);
  EXPECT_EQ(d.ihl, 5);
  EXPECT_EQ(d.dscp_ecn, h.dscp_ecn);
  EXPECT_EQ(d.total_length, h.total_length);
  EXPECT_EQ(d.identification, h.identification);
  EXPECT_EQ(d.flags, h.flags);
  EXPECT_EQ(d.ttl, h.ttl);
  EXPECT_EQ(d.protocol, h.protocol);
  EXPECT_EQ(d.src, h.src);
  EXPECT_EQ(d.dst, h.dst);
  EXPECT_EQ(d.header_checksum, d.compute_checksum());
}

TEST(Headers, Ipv6RoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0xAB;
  h.flow_label = 0x12345;
  h.payload_length = 333;
  h.next_header = 6;
  h.hop_limit = 55;
  std::array<std::uint8_t, 16> src{};
  src[0] = 0x20;
  src[15] = 0x01;
  h.src = Ipv6Address(src);
  ByteWriter w;
  h.encode(w);
  EXPECT_EQ(w.size(), Ipv6Header::kSize);
  ByteReader r(w.view());
  const auto d = Ipv6Header::decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(d.traffic_class, h.traffic_class);
  EXPECT_EQ(d.flow_label, h.flow_label);
  EXPECT_EQ(d.payload_length, h.payload_length);
  EXPECT_EQ(d.next_header, h.next_header);
  EXPECT_EQ(d.hop_limit, h.hop_limit);
  EXPECT_EQ(d.src, h.src);
}

TEST(Headers, TcpRoundTripAndFlags) {
  TcpHeader h;
  h.src_port = 443;
  h.dst_port = 51515;
  h.seq = 0xCAFEBABE;
  h.ack = 0x10203040;
  h.flags = TcpFlags::kSyn | TcpFlags::kAck;
  h.window = 29200;
  ByteWriter w;
  h.encode(w);
  ByteReader r(w.view());
  const auto d = TcpHeader::decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(d.src_port, h.src_port);
  EXPECT_EQ(d.seq, h.seq);
  EXPECT_EQ(d.ack, h.ack);
  EXPECT_TRUE(d.syn());
  EXPECT_TRUE(d.ack_flag());
  EXPECT_FALSE(d.fin());
  EXPECT_FALSE(d.rst());
  EXPECT_EQ(d.window, h.window);
}

TEST(Headers, UdpIcmpRoundTrip) {
  UdpHeader u;
  u.src_port = 5353;
  u.dst_port = 53;
  u.length = 128;
  ByteWriter wu;
  u.encode(wu);
  ByteReader ru(wu.view());
  const auto du = UdpHeader::decode(ru);
  EXPECT_EQ(du.src_port, 5353);
  EXPECT_EQ(du.length, 128);

  IcmpHeader ic;
  ic.type = IcmpHeader::kEchoRequest;
  ic.rest = 0x00010002;
  ByteWriter wi;
  ic.encode(wi);
  ByteReader ri(wi.view());
  const auto di = IcmpHeader::decode(ri);
  EXPECT_EQ(di.type, IcmpHeader::kEchoRequest);
  EXPECT_EQ(di.rest, 0x00010002u);
}

TEST(Headers, DecodeTruncatedFails) {
  const std::array<std::uint8_t, 10> tiny{};
  ByteReader r(tiny);
  (void)Ipv4Header::decode(r);
  EXPECT_FALSE(r.ok());
}

// -------------------------------------------------------------------- DNS

TEST(Dns, QueryRoundTrip) {
  const auto q = make_dns_query(0x1234, "www.example.edu", DnsType::kAny);
  const auto bytes = q.serialize();
  const auto parsed = DnsMessage::parse(bytes);
  ASSERT_TRUE(parsed.ok());
  const auto& m = parsed.value();
  EXPECT_EQ(m.id, 0x1234);
  EXPECT_FALSE(m.is_response);
  EXPECT_TRUE(m.recursion_desired);
  ASSERT_EQ(m.questions.size(), 1u);
  EXPECT_EQ(m.questions[0].name, "www.example.edu");
  EXPECT_EQ(m.questions[0].qtype, static_cast<std::uint16_t>(DnsType::kAny));
}

TEST(Dns, ResponseRoundTripPreservesAnswers) {
  const auto q = make_dns_query(7, "big.example.edu", DnsType::kTxt);
  const auto resp = make_dns_response(q, 4, 1200);
  const auto bytes = resp.serialize();
  const auto parsed = DnsMessage::parse(bytes);
  ASSERT_TRUE(parsed.ok());
  const auto& m = parsed.value();
  EXPECT_TRUE(m.is_response);
  EXPECT_EQ(m.id, 7);
  EXPECT_EQ(m.answers.size(), 4u);
  for (const auto& a : m.answers)
    EXPECT_EQ(a.name, "big.example.edu");
}

TEST(Dns, ResponseApproachesTargetSize) {
  const auto q = make_dns_query(7, "amp.example.edu", DnsType::kAny);
  for (std::size_t target : {300u, 1200u, 3000u}) {
    const auto resp = make_dns_response(q, 3, target);
    const auto size = resp.serialize().size();
    EXPECT_NEAR(static_cast<double>(size), static_cast<double>(target),
                static_cast<double>(target) * 0.05 + 16.0);
  }
}

TEST(Dns, AmplificationFactorIsLarge) {
  const auto q = make_dns_query(1, "amp.example.edu", DnsType::kAny);
  const auto query_size = q.serialize().size();
  const auto resp = make_dns_response(q, 8, 3000);
  const auto resp_size = resp.serialize().size();
  EXPECT_GT(resp_size, query_size * 20);  // the attack's raison d'etre
}

TEST(Dns, CompressionPointerDecoded) {
  // Hand-built message: one question "ab.cd", one answer whose name is a
  // pointer back to the question name at offset 12.
  ByteWriter w;
  w.u16(0x99);   // id
  w.u16(0x8180); // response flags
  w.u16(1);      // qdcount
  w.u16(1);      // ancount
  w.u16(0);
  w.u16(0);
  // question name "ab.cd" at offset 12
  w.u8(2); w.u8('a'); w.u8('b');
  w.u8(2); w.u8('c'); w.u8('d');
  w.u8(0);
  w.u16(1);  // qtype A
  w.u16(1);  // qclass IN
  // answer with compressed name -> pointer to offset 12
  w.u8(0xC0); w.u8(12);
  w.u16(1);   // type A
  w.u16(1);   // class
  w.u32(60);  // ttl
  w.u16(4);   // rdlength
  w.u32(0x01020304);
  const auto parsed = DnsMessage::parse(w.view());
  ASSERT_TRUE(parsed.ok());
  const auto& m = parsed.value();
  ASSERT_EQ(m.answers.size(), 1u);
  EXPECT_EQ(m.answers[0].name, "ab.cd");
  EXPECT_EQ(m.answers[0].ttl, 60u);
  ASSERT_EQ(m.answers[0].rdata.size(), 4u);
  EXPECT_EQ(m.answers[0].rdata[0], 1);
}

TEST(Dns, PointerLoopRejected) {
  ByteWriter w;
  w.u16(0x99);
  w.u16(0x0100);
  w.u16(1);
  w.u16(0);
  w.u16(0);
  w.u16(0);
  // name is a pointer to itself
  w.u8(0xC0); w.u8(12);
  w.u16(1);
  w.u16(1);
  const auto parsed = DnsMessage::parse(w.view());
  EXPECT_FALSE(parsed.ok());
}

TEST(Dns, TruncatedHeaderRejected) {
  const std::array<std::uint8_t, 5> tiny{};
  EXPECT_FALSE(DnsMessage::parse(tiny).ok());
}

TEST(Dns, TruncatedRecordRejected) {
  const auto q = make_dns_query(7, "x.example.edu", DnsType::kA);
  auto bytes = make_dns_response(q, 2, 400).serialize();
  bytes.resize(bytes.size() - 10);  // cut into the last record
  EXPECT_FALSE(DnsMessage::parse(bytes).ok());
}

TEST(Dns, NamesAreCaseFolded) {
  auto q = make_dns_query(7, "MiXeD.Example.EDU", DnsType::kA);
  const auto bytes = q.serialize();
  const auto parsed = DnsMessage::parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().questions[0].name, "mixed.example.edu");
}

// ----------------------------------------------------- Builder + View

TEST(Builder, TcpFrameDecodesCleanly) {
  const auto src = make_ep(1, Ipv4Address(10, 0, 1, 5), 50123);
  const auto dst = make_ep(2, Ipv4Address(93, 184, 216, 34), 443);
  const auto pkt = PacketBuilder(Timestamp::from_seconds(1.5))
                       .tcp(src, dst, TcpFlags::kSyn, 1000, 0)
                       .build();
  PacketView v(pkt);
  ASSERT_TRUE(v.valid());
  ASSERT_TRUE(v.is_ipv4());
  ASSERT_TRUE(v.is_tcp());
  EXPECT_EQ(v.ipv4().src, src.ip);
  EXPECT_EQ(v.ipv4().dst, dst.ip);
  EXPECT_TRUE(v.tcp().syn());
  EXPECT_FALSE(v.tcp().ack_flag());
  EXPECT_EQ(v.tcp().seq, 1000u);
  const auto t = v.five_tuple();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->src_port, 50123);
  EXPECT_EQ(t->dst_port, 443);
  EXPECT_EQ(t->proto, 6);
  EXPECT_TRUE(v.payload().empty());
}

TEST(Builder, Ipv4ChecksumValidOnWire) {
  const auto src = make_ep(1, Ipv4Address(10, 0, 1, 5), 1234);
  const auto dst = make_ep(2, Ipv4Address(10, 0, 2, 6), 80);
  const auto pkt = PacketBuilder(Timestamp{})
                       .tcp(src, dst, TcpFlags::kAck)
                       .payload_size(100)
                       .build();
  // IPv4 header starts after Ethernet; checksum over it must verify to 0.
  const auto ip_header =
      pkt.bytes().subspan(EthernetHeader::kSize, 20);
  EXPECT_EQ(internet_checksum(ip_header), 0);
}

TEST(Builder, TransportChecksumValidOnWire) {
  const auto src = make_ep(1, Ipv4Address(10, 0, 1, 5), 1234);
  const auto dst = make_ep(2, Ipv4Address(10, 0, 2, 6), 80);
  const auto pkt = PacketBuilder(Timestamp{})
                       .udp(src, dst)
                       .payload_size(37)
                       .build();
  const auto segment =
      pkt.bytes().subspan(EthernetHeader::kSize + 20);
  EXPECT_EQ(transport_checksum(src.ip, dst.ip, IpProto::kUdp, segment), 0);
}

TEST(Builder, TotalLengthConsistent) {
  const auto src = make_ep(1, Ipv4Address(10, 0, 1, 5), 999);
  const auto dst = make_ep(2, Ipv4Address(10, 0, 2, 6), 53);
  const auto pkt = PacketBuilder(Timestamp{})
                       .udp(src, dst)
                       .payload_size(64)
                       .build();
  PacketView v(pkt);
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(pkt.size(), EthernetHeader::kSize + v.ipv4().total_length);
  EXPECT_EQ(v.udp().length, UdpHeader::kSize + 64);
  EXPECT_EQ(v.payload().size(), 64u);
}

TEST(Builder, IcmpEcho) {
  const auto src = make_ep(1, Ipv4Address(10, 0, 1, 5), 0);
  const auto dst = make_ep(2, Ipv4Address(10, 0, 2, 6), 0);
  const auto pkt =
      PacketBuilder(Timestamp{})
          .icmp(src, dst, IcmpHeader::kEchoRequest, 0, 0x00070001)
          .payload_size(48)
          .build();
  PacketView v(pkt);
  ASSERT_TRUE(v.valid());
  ASSERT_TRUE(v.is_icmp());
  EXPECT_EQ(v.icmp().type, IcmpHeader::kEchoRequest);
  EXPECT_EQ(v.icmp().rest, 0x00070001u);
  EXPECT_EQ(v.payload().size(), 48u);
}

TEST(Builder, LabelTravelsWithPacket) {
  const auto src = make_ep(1, Ipv4Address(10, 0, 1, 5), 1);
  const auto dst = make_ep(2, Ipv4Address(10, 0, 2, 6), 2);
  const auto pkt = PacketBuilder(Timestamp{})
                       .udp(src, dst)
                       .label(TrafficLabel::kDnsAmplification)
                       .build();
  EXPECT_EQ(pkt.label, TrafficLabel::kDnsAmplification);
  EXPECT_TRUE(is_attack(pkt.label));
  EXPECT_EQ(to_string(pkt.label), "dns_amplification");
}

TEST(Builder, DnsPacketEndToEnd) {
  const auto src = make_ep(1, Ipv4Address(10, 0, 1, 5), 50555);
  const auto dst = make_ep(2, Ipv4Address(130, 14, 1, 9), 53);
  const auto query = make_dns_query(0xABCD, "lib.campus.edu", DnsType::kAny);
  const auto pkt = build_dns_packet(Timestamp::from_seconds(2.0), src, dst,
                                    query);
  PacketView v(pkt);
  ASSERT_TRUE(v.valid());
  ASSERT_TRUE(v.is_udp());
  EXPECT_TRUE(v.is_dns());
  const auto parsed = v.dns();
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 0xABCD);
  EXPECT_EQ(parsed.value().questions[0].name, "lib.campus.edu");
}

TEST(View, GarbageFrameInvalidButSized) {
  std::vector<std::uint8_t> junk(40, 0xEE);
  PacketView v{std::span<const std::uint8_t>(junk)};
  EXPECT_FALSE(v.valid());
  EXPECT_EQ(v.frame_size(), 40u);
  EXPECT_FALSE(v.five_tuple().has_value());
}

TEST(View, ShortFrameInvalid) {
  std::vector<std::uint8_t> tiny(6, 0);
  PacketView v{std::span<const std::uint8_t>(tiny)};
  EXPECT_FALSE(v.valid());
}

// Property: random TCP/UDP frames built by PacketBuilder always decode
// back to the same five-tuple, sizes, and payload.
TEST(BuilderProperty, RandomFramesRoundTrip) {
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    const auto src = make_ep(
        static_cast<std::uint32_t>(i), Ipv4Address(static_cast<std::uint32_t>(
                                           0x0A000000 + rng.below(1 << 16))),
        static_cast<std::uint16_t>(1024 + rng.below(60000)));
    const auto dst = make_ep(
        static_cast<std::uint32_t>(i + 1),
        Ipv4Address(static_cast<std::uint32_t>(0xC0A80000 + rng.below(1 << 8))),
        static_cast<std::uint16_t>(rng.below(1024)));
    const auto payload_len = rng.below(1200);
    const bool use_tcp = rng.chance(0.5);
    PacketBuilder b(Timestamp::from_nanos(
        static_cast<std::int64_t>(rng.below(1'000'000'000))));
    if (use_tcp) {
      b.tcp(src, dst,
            static_cast<std::uint8_t>(rng.below(64)),
            static_cast<std::uint32_t>(rng.next()),
            static_cast<std::uint32_t>(rng.next()));
    } else {
      b.udp(src, dst);
    }
    const auto pkt = b.payload_size(payload_len).build();
    PacketView v(pkt);
    ASSERT_TRUE(v.valid());
    const auto t = v.five_tuple();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->src, src.ip);
    EXPECT_EQ(t->dst, dst.ip);
    EXPECT_EQ(t->src_port, src.port);
    EXPECT_EQ(t->dst_port, dst.port);
    EXPECT_EQ(v.payload().size(), payload_len);
    // Wire checksums must verify.
    const auto ip_header =
        pkt.bytes().subspan(EthernetHeader::kSize, 20);
    EXPECT_EQ(internet_checksum(ip_header), 0);
  }
}

}  // namespace
}  // namespace campuslab::packet

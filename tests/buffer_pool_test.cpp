// BufferPool / BufferRef / Packet-handle semantics: slab reuse and the
// hit/miss/outstanding/high-water accounting, graceful heap fallback on
// exhaustion and oversize frames, copy-on-write isolation between
// Packet handles, and refcount correctness under concurrent
// clone/move/release from many threads (the suite the CI sanitizer
// jobs exist for — it must stay TSAN- and ASAN-clean).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "campuslab/packet/buffer.h"
#include "campuslab/packet/view.h"
#include "campuslab/util/rng.h"

namespace campuslab::packet {
namespace {

TEST(BufferPool, AcquireReusesReleasedSlabs) {
  BufferPool pool;
  {
    auto a = pool.acquire(100);
    ASSERT_TRUE(a);
    EXPECT_EQ(a->size(), 100u);
    EXPECT_EQ(a->capacity(), pool.config().buffer_capacity);
  }  // released -> freelist
  auto s = pool.stats();
  EXPECT_EQ(s.pool_misses, 1u);
  EXPECT_EQ(s.pool_hits, 0u);
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.freelist_size, 1u);

  auto b = pool.acquire(2000);  // different size, same slab class
  s = pool.stats();
  EXPECT_EQ(s.pool_hits, 1u);
  EXPECT_EQ(s.pool_misses, 1u);
  EXPECT_EQ(s.heap_allocations, 1u);
  EXPECT_EQ(s.outstanding, 1u);
  EXPECT_EQ(s.high_water, 1u);
  EXPECT_EQ(b->size(), 2000u);
}

TEST(BufferPool, ExhaustionFallsBackToHeapGracefully) {
  BufferPool pool;
  // 64 buffers live at once: the freelist starts empty, so every
  // acquire is a miss — but none may fail or block.
  std::vector<BufferRef> live;
  for (int i = 0; i < 64; ++i) live.push_back(pool.acquire(64));
  auto s = pool.stats();
  EXPECT_EQ(s.pool_misses, 64u);
  EXPECT_EQ(s.outstanding, 64u);
  EXPECT_EQ(s.high_water, 64u);

  live.clear();  // all 64 slabs go back to the pool...
  for (int i = 0; i < 64; ++i) live.push_back(pool.acquire(64));
  s = pool.stats();
  EXPECT_EQ(s.pool_hits, 64u);  // ...and the rerun is all hits
  EXPECT_EQ(s.pool_misses, 64u);
  live.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);  // no leak at shutdown
}

TEST(BufferPool, OversizeFramesAreHeapOneOffs) {
  BufferPoolConfig cfg;
  cfg.buffer_capacity = 256;
  BufferPool pool(cfg);
  {
    auto big = pool.acquire(10'000);
    ASSERT_TRUE(big);
    EXPECT_EQ(big->size(), 10'000u);
    EXPECT_GE(big->capacity(), 10'000u);
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.oversize_allocations, 1u);
  EXPECT_EQ(s.heap_allocations, 1u);
  EXPECT_EQ(s.freelist_size, 0u);  // not recycled into the slab class
  EXPECT_EQ(s.outstanding, 0u);
}

TEST(BufferPool, FreelistIsCapped) {
  BufferPoolConfig cfg;
  cfg.max_pooled = 4;
  BufferPool pool(cfg);
  {
    std::vector<BufferRef> live;
    for (int i = 0; i < 16; ++i) live.push_back(pool.acquire(32));
  }
  // Only max_pooled slabs survive as idle; the rest were freed (ASAN
  // would flag them if they leaked).
  EXPECT_EQ(pool.stats().freelist_size, 4u);
}

TEST(BufferRef, CopyBumpsAndMoveSteals) {
  BufferPool pool;
  auto a = pool.acquire(10);
  EXPECT_TRUE(a.unique());
  BufferRef b = a;  // copy: shared now
  EXPECT_FALSE(a.unique());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->ref_count(), 2u);
  BufferRef c = std::move(b);  // move: no count change
  EXPECT_EQ(a->ref_count(), 2u);
  EXPECT_EQ(b.get(), nullptr);
  c.reset();
  EXPECT_TRUE(a.unique());
  EXPECT_EQ(pool.stats().outstanding, 1u);
}

// ------------------------------------------------- Packet handle + COW

TEST(PacketHandle, CopyIsARefcountBumpNotADeepCopy) {
  Packet a;
  a.assign(500, 0xAB);
  const Packet b = a;  // the whole point of the refactor
  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_EQ(a.bytes().data(), b.bytes().data());  // same slab bytes
  EXPECT_EQ(b.size(), 500u);
}

TEST(PacketHandle, MutatingACopyLeavesTheOriginalUntouched) {
  Packet a;
  a.assign(64, 0x11);
  Packet b = a;
  b.mutable_bytes()[0] = 0x99;  // copy-on-write unshares first
  EXPECT_FALSE(a.shares_buffer_with(b));
  EXPECT_EQ(a.bytes()[0], 0x11);
  EXPECT_EQ(b.bytes()[0], 0x99);
}

TEST(PacketHandle, ResizeIsCowToo) {
  Packet a;
  a.assign(64, 0x22);
  Packet b = a;
  b.resize(32);  // truncation must not shrink a's frame
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(b.size(), 32u);
  EXPECT_FALSE(a.shares_buffer_with(b));
  b.resize(48);  // growth zero-fills
  for (std::size_t i = 32; i < 48; ++i) EXPECT_EQ(b.bytes()[i], 0u);
}

TEST(PacketHandle, UniqueMutationIsInPlace) {
  Packet a;
  a.assign(64, 0x33);
  const auto* before = a.bytes().data();
  a.mutable_bytes()[5] = 0x44;
  a.resize(32);
  EXPECT_EQ(a.bytes().data(), before);  // sole owner: no re-seat
}

TEST(PacketHandle, ViewSurvivesHandleCopyAndMove) {
  // The parse-once contract: buffer bytes are address-stable under
  // handle copy/move, so a PacketView taken once stays valid.
  Packet a;
  a.assign(64, 0x55);
  const PacketView view(a);
  const Packet b = a;                 // copy
  const Packet c = std::move(a);      // move
  EXPECT_EQ(view.frame().data(), c.bytes().data());
  EXPECT_EQ(view.frame().data(), b.bytes().data());
}

// ----------------------------------------------------- concurrency

// Concurrent clone/move/release of handles onto the same set of pool
// buffers, from many threads. The refcount is the only shared state;
// TSAN must see no race and the pool must balance to zero outstanding.
TEST(BufferPoolConcurrency, CloneMoveReleaseStress) {
  BufferPool pool;
  constexpr int kBases = 16;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;

  std::vector<BufferRef> bases;
  for (int i = 0; i < kBases; ++i) bases.push_back(pool.acquire(256));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bases, t] {
      Rng rng(0x5EED + static_cast<std::uint64_t>(t));
      std::vector<BufferRef> local;
      for (int i = 0; i < kIters; ++i) {
        switch (rng.below(4)) {
          case 0:  // clone a shared base (concurrent add_ref)
            local.push_back(bases[rng.below(kBases)]);
            break;
          case 1:  // clone one of ours
            if (!local.empty()) local.push_back(local[rng.below(local.size())]);
            break;
          case 2:  // move within the thread (no count change)
            if (!local.empty()) {
              BufferRef moved = std::move(local.back());
              local.back() = std::move(moved);
            }
            break;
          default:  // release (concurrent fetch_sub)
            if (!local.empty()) {
              std::swap(local[rng.below(local.size())], local.back());
              local.pop_back();
            }
        }
      }
      // local handles all released on scope exit
    });
  }
  for (auto& th : threads) th.join();

  // Every thread-local clone is gone; only the bases remain.
  for (const auto& base : bases) {
    ASSERT_TRUE(base);
    EXPECT_EQ(base->ref_count(), 1u);
  }
  EXPECT_EQ(pool.stats().outstanding, static_cast<std::uint64_t>(kBases));
  bases.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);  // no leak at shutdown
}

// Packets cloned and dropped across threads while a producer keeps
// offering the same const packet — the pattern the capture engines use
// (offer(const&) bumps the refcount from the tap thread while workers
// release theirs).
TEST(BufferPoolConcurrency, SharedPacketCloneAcrossThreads) {
  Packet base;
  base.assign(1200, 0x77);
  constexpr int kThreads = 6;
  constexpr int kIters = 50'000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&base] {
      for (int i = 0; i < kIters; ++i) {
        Packet clone = base;          // add_ref on the shared buffer
        Packet moved = std::move(clone);
        ASSERT_EQ(moved.size(), 1200u);
        ASSERT_EQ(moved.bytes()[0], 0x77);
      }  // release
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(base.buffer().unique());
  EXPECT_EQ(base.bytes()[7], 0x77);
}

}  // namespace
}  // namespace campuslab::packet

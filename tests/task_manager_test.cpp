// Tests for campuslab::control::TaskManager — concurrent automation
// tasks on one pipeline: per-attack packages (amplification, SYN flood,
// SSH brute force) trained independently, deployed together, each
// catching its own event; budget enforcement; undeploy semantics; and
// resource composition.
#include <gtest/gtest.h>

#include "campuslab/control/task_manager.h"
#include "campuslab/testbed/testbed.h"

namespace campuslab::control {
namespace {

using packet::TrafficLabel;

/// One campus run with all three attacks active, collected with the
/// given binary target.
ml::Dataset collect(TrafficLabel target, std::uint64_t seed) {
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = seed;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(1200)
          .starting_at(Timestamp::from_seconds(4))
          .lasting(Duration::seconds(18)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSynFlood)
          .rate(1200)
          .starting_at(Timestamp::from_seconds(6))
          .lasting(Duration::seconds(16)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSshBruteForce)
          .rate(20)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(22)));

  cfg.collector.labeling.binary_target = target;
  cfg.collector.attack_sample_rate = 0.5;
  cfg.collector.seed = seed * 7;
  testbed::Testbed bed(cfg);
  bed.run(Duration::seconds(26));
  return bed.harvest_dataset();
}

DeploymentPackage make_package(TrafficLabel target, const char* name,
                               std::uint64_t seed) {
  DevelopmentConfig dev;
  dev.task.name = name;
  dev.task.event = target;
  dev.teacher.n_trees = 15;
  dev.teacher.seed = seed;
  dev.extraction.student_max_depth = 5;
  dev.extraction.synthetic_samples = 4000;
  dev.extraction.seed = seed + 1;
  dev.seed = seed + 2;
  auto result = DevelopmentLoop(dev).run(collect(target, seed));
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return std::move(result).value();
}

class TaskManagerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    amp_ = new DeploymentPackage(make_package(
        TrafficLabel::kDnsAmplification, "amp-drop", 1111));
    syn_ = new DeploymentPackage(
        make_package(TrafficLabel::kSynFlood, "synflood-drop", 2222));
    brute_ = new DeploymentPackage(make_package(
        TrafficLabel::kSshBruteForce, "brute-drop", 3333));
  }
  static void TearDownTestSuite() {
    delete amp_;
    delete syn_;
    delete brute_;
    amp_ = syn_ = brute_ = nullptr;
  }

  static DeploymentPackage* amp_;
  static DeploymentPackage* syn_;
  static DeploymentPackage* brute_;
};

DeploymentPackage* TaskManagerFixture::amp_ = nullptr;
DeploymentPackage* TaskManagerFixture::syn_ = nullptr;
DeploymentPackage* TaskManagerFixture::brute_ = nullptr;

TEST_F(TaskManagerFixture, EachTaskLearnsItsEvent) {
  EXPECT_GT(amp_->student_holdout_accuracy, 0.95);
  EXPECT_GT(syn_->student_holdout_accuracy, 0.95);
  EXPECT_GT(brute_->student_holdout_accuracy, 0.93);
}

TEST_F(TaskManagerFixture, ThreeConcurrentTasksEachCatchTheirAttack) {
  TaskManager manager(dataplane::ResourceBudget::tofino_like());
  const auto amp_slot = manager.deploy(*amp_);
  const auto syn_slot = manager.deploy(*syn_);
  const auto brute_slot = manager.deploy(*brute_);
  ASSERT_TRUE(amp_slot.ok());
  ASSERT_TRUE(syn_slot.ok());
  ASSERT_TRUE(brute_slot.ok());
  EXPECT_EQ(manager.active_tasks(), 3u);

  // Fresh campus with all three attacks.
  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 4444;
  cfg.scenario.campus.diurnal = false;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(1500)
          .starting_at(Timestamp::from_seconds(3))
          .lasting(Duration::seconds(15)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSynFlood)
          .rate(1500)
          .starting_at(Timestamp::from_seconds(3))
          .lasting(Duration::seconds(15)));
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kSshBruteForce)
          .rate(25)
          .starting_at(Timestamp::from_seconds(3))
          .lasting(Duration::seconds(15)));
  cfg.collector.benign_sample_rate = 0.01;
  cfg.collector.attack_sample_rate = 0.01;
  testbed::Testbed bed(cfg);
  manager.install(bed.network());
  bed.run(Duration::seconds(22));

  // Each task blocks most of its own event.
  EXPECT_GT(manager.task_stats(amp_slot.value()).attack_block_rate(),
            0.0);  // scored against ALL attacks; use dropped counts:
  const auto& amp_stats = manager.task_stats(amp_slot.value());
  const auto& syn_stats = manager.task_stats(syn_slot.value());
  const auto& brute_stats = manager.task_stats(brute_slot.value());
  EXPECT_GT(amp_stats.dropped, 10000u);
  EXPECT_GT(syn_stats.dropped, 10000u);
  EXPECT_GT(brute_stats.dropped, 200u);

  // Network-wide: the overwhelming majority of attack frames of every
  // family were filtered, with minimal benign collateral.
  const auto& acc = bed.network().accounting();
  const auto amp_i =
      static_cast<std::size_t>(TrafficLabel::kDnsAmplification);
  const auto syn_i = static_cast<std::size_t>(TrafficLabel::kSynFlood);
  const auto brute_i =
      static_cast<std::size_t>(TrafficLabel::kSshBruteForce);
  for (const auto idx : {amp_i, syn_i, brute_i}) {
    const auto tapped = acc.tapped_in.frames[idx];
    const auto delivered = acc.delivered.frames[idx];
    ASSERT_GT(tapped, 0u);
    EXPECT_LT(static_cast<double>(delivered) /
                  static_cast<double>(tapped),
              0.12)
        << "attack family " << idx;
  }
  const double benign_filtered_rate =
      static_cast<double>(acc.filtered.benign_frames()) /
      static_cast<double>(acc.tapped_in.benign_frames());
  EXPECT_LT(benign_filtered_rate, 0.03);
}

TEST_F(TaskManagerFixture, CombinedResourcesShareFeatureStage) {
  TaskManager manager(dataplane::ResourceBudget::tofino_like());
  ASSERT_TRUE(manager.deploy(*amp_).ok());
  const auto one = manager.combined_resources();
  ASSERT_TRUE(manager.deploy(*syn_).ok());
  const auto two = manager.combined_resources();
  // RMT composition: stage depth is the max over tasks (tables sit in
  // parallel), registers are shared (max), memory is additive.
  EXPECT_EQ(two.stages_used, std::max(amp_->resources.stages_used,
                                      syn_->resources.stages_used));
  EXPECT_LE(two.register_arrays_used,
            std::max(amp_->resources.register_arrays_used,
                     syn_->resources.register_arrays_used));
  EXPECT_EQ(two.sram_bits, one.sram_bits + syn_->resources.sram_bits);
}

/// A budget whose SRAM pool admits either package alone but not both.
dataplane::ResourceBudget one_task_budget(
    const DeploymentPackage& a, const DeploymentPackage& b) {
  dataplane::ResourceBudget tiny;
  tiny.sram_bits_per_stage =
      std::max(a.resources.sram_bits, b.resources.sram_bits) /
          static_cast<std::size_t>(tiny.stages) +
      1;
  return tiny;
}

TEST_F(TaskManagerFixture, BudgetRefusesOverflow) {
  TaskManager manager(one_task_budget(*amp_, *syn_));
  ASSERT_TRUE(manager.deploy(*amp_).ok());
  const auto second = manager.deploy(*syn_);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, "budget");
  EXPECT_EQ(manager.active_tasks(), 1u);
}

TEST_F(TaskManagerFixture, UndeployDisarmsAndFreesBudget) {
  TaskManager manager(one_task_budget(*amp_, *syn_));
  const auto first = manager.deploy(*amp_);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(manager.undeploy(first.value()).ok());
  EXPECT_EQ(manager.active_tasks(), 0u);
  // Freed budget admits the next task.
  EXPECT_TRUE(manager.deploy(*syn_).ok());
  EXPECT_FALSE(manager.undeploy(99).ok());
}

TEST_F(TaskManagerFixture, DisarmedTaskDoesNotDrop) {
  TaskManager manager(dataplane::ResourceBudget::tofino_like());
  const auto slot = manager.deploy(*amp_);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(manager.undeploy(slot.value()).ok());

  testbed::TestbedConfig cfg;
  cfg.scenario.campus.seed = 5555;
  cfg.scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(500)
          .starting_at(Timestamp::from_seconds(1))
          .lasting(Duration::seconds(5)));
  cfg.collector.benign_sample_rate = 0.01;
  cfg.collector.attack_sample_rate = 0.01;
  testbed::Testbed bed(cfg);
  manager.install(bed.network());
  bed.run(Duration::seconds(8));
  EXPECT_EQ(bed.network().accounting().filtered.total_frames(), 0u);
}

}  // namespace
}  // namespace campuslab::control

// Tests for the BPF-style FilterExpr — predicate semantics,
// precedence, direction qualifiers, error reporting, and a property
// test checking equivalence with hand-built predicates over random
// frames. Plus PacketArchive::read_filtered integration.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "campuslab/capture/filter.h"
#include "campuslab/packet/builder.h"
#include "campuslab/store/packet_archive.h"
#include "campuslab/util/rng.h"

namespace campuslab::capture {
namespace {

using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;
using packet::PacketBuilder;
using packet::TcpFlags;

Endpoint ep(Ipv4Address ip, std::uint16_t port) {
  return Endpoint{MacAddress::from_id(ip.value()), ip, port};
}

packet::Packet udp_frame(Ipv4Address src, std::uint16_t sport,
                         Ipv4Address dst, std::uint16_t dport,
                         std::size_t payload = 64) {
  return PacketBuilder(Timestamp::from_seconds(1))
      .udp(ep(src, sport), ep(dst, dport))
      .payload_size(payload)
      .build();
}

packet::Packet tcp_frame(Ipv4Address src, std::uint16_t sport,
                         Ipv4Address dst, std::uint16_t dport,
                         std::uint8_t flags) {
  return PacketBuilder(Timestamp::from_seconds(1))
      .tcp(ep(src, sport), ep(dst, dport), flags)
      .build();
}

const Ipv4Address kResolver(8, 8, 8, 8);
const Ipv4Address kClient(10, 43, 16, 2);
const Ipv4Address kOther(93, 184, 216, 34);

FilterExpr must_parse(const std::string& text) {
  auto f = FilterExpr::parse(text);
  EXPECT_TRUE(f.ok()) << (f.ok() ? "" : f.error().message);
  return std::move(f).value();
}

TEST(Filter, ProtocolPredicates) {
  const auto dns_pkt = udp_frame(kResolver, 53, kClient, 9999);
  const auto syn_pkt = tcp_frame(kOther, 443, kClient, 5000,
                                 TcpFlags::kSyn);
  EXPECT_TRUE(must_parse("udp").matches(dns_pkt));
  EXPECT_FALSE(must_parse("udp").matches(syn_pkt));
  EXPECT_TRUE(must_parse("tcp").matches(syn_pkt));
  EXPECT_TRUE(must_parse("ip").matches(dns_pkt));
  EXPECT_TRUE(must_parse("dns").matches(dns_pkt));
  EXPECT_FALSE(must_parse("dns").matches(syn_pkt));
  EXPECT_TRUE(must_parse("syn").matches(syn_pkt));
  EXPECT_FALSE(must_parse("syn").matches(dns_pkt));
}

TEST(Filter, PortWithDirections) {
  const auto pkt = udp_frame(kResolver, 53, kClient, 9999);
  EXPECT_TRUE(must_parse("port 53").matches(pkt));
  EXPECT_TRUE(must_parse("src port 53").matches(pkt));
  EXPECT_FALSE(must_parse("dst port 53").matches(pkt));
  EXPECT_TRUE(must_parse("dst port 9999").matches(pkt));
  EXPECT_FALSE(must_parse("port 80").matches(pkt));
}

TEST(Filter, HostAndNet) {
  const auto pkt = udp_frame(kResolver, 53, kClient, 9999);
  EXPECT_TRUE(must_parse("host 8.8.8.8").matches(pkt));
  EXPECT_TRUE(must_parse("dst host 10.43.16.2").matches(pkt));
  EXPECT_FALSE(must_parse("src host 10.43.16.2").matches(pkt));
  EXPECT_TRUE(must_parse("net 10.43.0.0/16").matches(pkt));
  EXPECT_TRUE(must_parse("dst net 10.43.16.0/24").matches(pkt));
  EXPECT_FALSE(must_parse("src net 10.0.0.0/8").matches(pkt));
  EXPECT_FALSE(must_parse("net 192.168.0.0/16").matches(pkt));
}

TEST(Filter, SizePredicatesWorkOnAnyFrame) {
  const auto big = udp_frame(kResolver, 53, kClient, 9999, 1200);
  const auto small = udp_frame(kResolver, 53, kClient, 9999, 10);
  EXPECT_TRUE(must_parse("greater 1000").matches(big));
  EXPECT_FALSE(must_parse("greater 1000").matches(small));
  EXPECT_TRUE(must_parse("less 100").matches(small));
  // Non-IP garbage still answers size predicates.
  packet::Packet junk;
  junk.assign(200, 0xEE);
  EXPECT_TRUE(must_parse("greater 100").matches(junk));
  EXPECT_FALSE(must_parse("udp").matches(junk));
}

TEST(Filter, BooleanPrecedenceAndParens) {
  const auto dns_pkt = udp_frame(kResolver, 53, kClient, 9999);
  // "tcp or udp and port 53": and binds tighter -> matches.
  EXPECT_TRUE(must_parse("tcp or udp and port 53").matches(dns_pkt));
  // "(tcp or udp) and port 80" -> false for this packet.
  EXPECT_FALSE(must_parse("(tcp or udp) and port 80").matches(dns_pkt));
  EXPECT_TRUE(must_parse("not tcp").matches(dns_pkt));
  EXPECT_FALSE(must_parse("not not tcp").matches(dns_pkt));
  EXPECT_TRUE(
      must_parse("udp and (src port 53 or src port 5353) and "
                 "dst net 10.43.0.0/16")
          .matches(dns_pkt));
}

TEST(Filter, AmplificationSignature) {
  const auto amp =
      udp_frame(kResolver, 53, kClient, 7777, 2800);
  const auto benign_dns = udp_frame(kResolver, 53, kClient, 7777, 180);
  const auto filter =
      must_parse("udp and src port 53 and greater 1000 and "
                 "dst net 10.43.0.0/16");
  EXPECT_TRUE(filter.matches(amp));
  EXPECT_FALSE(filter.matches(benign_dns));
}

TEST(Filter, SyntaxErrorsAreSpecific) {
  for (const auto* bad :
       {"", "and", "port", "port abc", "host 999.1.2.3", "net 10.0.0.0",
        "net 10.0.0.0/99", "udp and", "(udp", "udp)", "src udp",
        "port 70000", "frobnicate"}) {
    const auto f = FilterExpr::parse(bad);
    EXPECT_FALSE(f.ok()) << "accepted: " << bad;
    if (!f.ok()) {
      EXPECT_EQ(f.error().code, "filter_syntax");
    }
  }
}

// Property: compiled filter agrees with a hand-coded predicate across
// random frames.
TEST(FilterProperty, MatchesHandPredicate) {
  const auto filter = must_parse(
      "udp and src port 53 and greater 500 or tcp and syn");
  Rng rng(0xF117);
  for (int i = 0; i < 4000; ++i) {
    const Ipv4Address src(static_cast<std::uint32_t>(rng.next()));
    const Ipv4Address dst(static_cast<std::uint32_t>(rng.next()));
    const auto sport =
        static_cast<std::uint16_t>(rng.chance(0.3) ? 53 : rng.below(65536));
    const auto dport = static_cast<std::uint16_t>(rng.below(65536));
    const bool is_udp = rng.chance(0.5);
    const auto payload = static_cast<std::size_t>(rng.below(1400));
    packet::Packet pkt;
    std::uint8_t flags = 0;
    if (is_udp) {
      pkt = udp_frame(src, sport, dst, dport, payload);
    } else {
      flags = static_cast<std::uint8_t>(rng.below(64));
      pkt = PacketBuilder(Timestamp::from_seconds(1))
                .tcp(ep(src, sport), ep(dst, dport), flags)
                .payload_size(payload)
                .build();
    }
    packet::PacketView view(pkt);
    const bool expected =
        (is_udp && sport == 53 && pkt.size() >= 500) ||
        (!is_udp && (flags & TcpFlags::kSyn) &&
         !(flags & TcpFlags::kAck));
    EXPECT_EQ(filter.matches(view), expected)
        << "udp=" << is_udp << " sport=" << sport << " size="
        << pkt.size() << " flags=" << int(flags);
  }
}

TEST(FilterArchive, ReadFilteredSelects) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("campuslab_filter_archive_" +
                    std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  store::PacketArchiveConfig cfg;
  cfg.directory = dir.string();
  auto archive = store::PacketArchive::open(cfg);
  ASSERT_TRUE(archive.ok());
  for (int i = 0; i < 50; ++i) {
    auto pkt = udp_frame(kResolver, 53, kClient, 9999,
                         i % 2 ? 1500 : 100);
    pkt.ts = Timestamp::from_seconds(i);
    ASSERT_TRUE(archive.value().write(pkt).ok());
  }
  const auto filter = must_parse("udp and greater 1000");
  auto result = archive.value().read_filtered(
      Timestamp::from_seconds(0), Timestamp::from_seconds(50), filter);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 25u);
  for (const auto& pkt : result.value()) EXPECT_GT(pkt.size(), 1000u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace campuslab::capture

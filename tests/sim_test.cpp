// Tests for campuslab::sim — event queue semantics, link queueing and
// tail-drop, topology/address-plan determinism, border accounting
// conservation, benign traffic realism, and attack scenario behaviour.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "campuslab/packet/view.h"
#include "campuslab/sim/simulator.h"

namespace campuslab::sim {
namespace {

using packet::PacketView;
using packet::TrafficLabel;

// ------------------------------------------------------------ EventQueue

TEST(EventQueue, RunsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(Timestamp::from_seconds(3.0), [&] { order.push_back(3); });
  q.schedule_at(Timestamp::from_seconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(Timestamp::from_seconds(2.0), [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Timestamp::from_seconds(3.0));
}

TEST(EventQueue, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  const auto t = Timestamp::from_seconds(1.0);
  for (int i = 0; i < 5; ++i)
    q.schedule_at(t, [&order, i] { order.push_back(i); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(Timestamp::from_seconds(1.0), [&] { ++fired; });
  q.schedule_at(Timestamp::from_seconds(2.0), [&] { ++fired; });
  q.schedule_at(Timestamp::from_seconds(2.5), [&] { ++fired; });
  const auto n = q.run_until(Timestamp::from_seconds(2.0));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), Timestamp::from_seconds(2.0));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockPastDrainedQueue) {
  EventQueue q;
  q.run_until(Timestamp::from_seconds(9.0));
  EXPECT_EQ(q.now(), Timestamp::from_seconds(9.0));
}

TEST(EventQueue, PastEventsFireAtCurrentTime) {
  EventQueue q;
  q.schedule_at(Timestamp::from_seconds(5.0), [] {});
  q.run_all();
  Timestamp when;
  q.schedule_at(Timestamp::from_seconds(1.0), [&] { when = q.now(); });
  q.run_all();
  EXPECT_EQ(when, Timestamp::from_seconds(5.0));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 10) q.schedule_in(Duration::millis(1), recur);
  };
  q.schedule_in(Duration::millis(1), recur);
  q.run_until(Timestamp::from_seconds(1.0));
  EXPECT_EQ(depth, 10);
}

// ------------------------------------------------------------------ Link

TEST(Link, SerializationDelayMatchesRate) {
  // 1000 bytes at 8 Mbps = 1 ms serialization; +2 ms propagation.
  Link link(8e6, Duration::millis(2), 1'000'000);
  const auto d = link.transmit(1000, Timestamp::epoch());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->nanos(), Duration::millis(3).count_nanos());
}

TEST(Link, BackToBackFramesQueueBehindEachOther) {
  Link link(8e6, Duration{}, 1'000'000);
  const auto d1 = link.transmit(1000, Timestamp::epoch());
  const auto d2 = link.transmit(1000, Timestamp::epoch());
  ASSERT_TRUE(d1 && d2);
  EXPECT_EQ((*d2 - *d1).count_nanos(), Duration::millis(1).count_nanos());
}

TEST(Link, TailDropWhenQueueFull) {
  // Queue of 1500 bytes; the first frame goes straight to serialization,
  // the second waits (backlog 1000 <= 1500), the third arrives with a
  // 2000-byte waiting backlog and is tail-dropped.
  Link link(8e6, Duration{}, 1500);
  EXPECT_TRUE(link.transmit(1000, Timestamp::epoch()).has_value());
  EXPECT_TRUE(link.transmit(1000, Timestamp::epoch()).has_value());
  EXPECT_FALSE(link.transmit(1000, Timestamp::epoch()).has_value());
  EXPECT_EQ(link.stats().frames_dropped, 1u);
  EXPECT_EQ(link.stats().frames_forwarded, 2u);
  EXPECT_NEAR(link.stats().drop_rate(), 1.0 / 3.0, 1e-12);
}

TEST(Link, QueueDrainsOverTime) {
  Link link(8e6, Duration{}, 1500);
  (void)link.transmit(1000, Timestamp::epoch());
  (void)link.transmit(1000, Timestamp::epoch());
  // After 2ms both frames have serialized; the queue is empty again.
  const auto later = Timestamp::epoch() + Duration::millis(2);
  EXPECT_EQ(link.backlog_bytes(later), 0u);
  EXPECT_TRUE(link.transmit(1000, later).has_value());
}

TEST(Link, ExtraDelayShiftsDelivery) {
  Link link(8e9, Duration::millis(1), 1'000'000);
  const auto base = link.transmit(1000, Timestamp::epoch());
  link.set_extra_delay(Duration::millis(40));
  const auto slow = link.transmit(1000, *base);
  ASSERT_TRUE(base && slow);
  EXPECT_GT(*slow - *base, Duration::millis(40));
}

// -------------------------------------------------------------- Topology

TEST(Topology, DeterministicForSameConfig) {
  CampusConfig cfg;
  cfg.seed = 7;
  Topology a(cfg), b(cfg);
  ASSERT_EQ(a.hosts().size(), b.hosts().size());
  for (std::size_t i = 0; i < a.hosts().size(); ++i) {
    EXPECT_EQ(a.hosts()[i].endpoint.ip, b.hosts()[i].endpoint.ip);
    EXPECT_EQ(a.hosts()[i].endpoint.mac, b.hosts()[i].endpoint.mac);
  }
}

TEST(Topology, DistinctSeedsGetDistinctPrefixes) {
  CampusConfig a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(Topology(a).campus_prefix(), Topology(b).campus_prefix());
}

TEST(Topology, AllHostsInsideCampusPrefix) {
  CampusConfig cfg;
  cfg.wired_clients = 50;
  cfg.wifi_clients = 80;
  Topology topo(cfg);
  EXPECT_EQ(topo.clients().size(), 130u);
  EXPECT_EQ(topo.servers().size(), 5u);
  for (const auto& h : topo.hosts())
    EXPECT_TRUE(topo.is_campus(h.endpoint.ip)) << h.endpoint.ip.to_string();
}

TEST(Topology, UniqueAddressesAndMacs) {
  CampusConfig cfg;
  Topology topo(cfg);
  std::set<std::uint32_t> ips;
  std::set<std::string> macs;
  for (const auto& h : topo.hosts()) {
    ips.insert(h.endpoint.ip.value());
    macs.insert(h.endpoint.mac.to_string());
  }
  EXPECT_EQ(ips.size(), topo.hosts().size());
  EXPECT_EQ(macs.size(), topo.hosts().size());
}

TEST(Topology, ExternalAddressesAreOutsideCampus) {
  CampusConfig cfg;
  Topology topo(cfg);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i)
    EXPECT_FALSE(topo.is_campus(Topology::random_external_address(rng)));
  for (std::uint32_t kind = 0; kind < 6; ++kind)
    for (std::uint32_t idx = 0; idx < 10; ++idx)
      EXPECT_FALSE(
          topo.is_campus(Topology::external_host(kind, idx, 80).ip));
}

TEST(Topology, ServerRolesResolved) {
  CampusConfig cfg;
  Topology topo(cfg);
  EXPECT_EQ(topo.web_server().role, HostRole::kWebServer);
  EXPECT_EQ(topo.dns_server().role, HostRole::kDnsServer);
  EXPECT_EQ(topo.mail_server().role, HostRole::kMailServer);
  EXPECT_EQ(topo.ssh_gateway().role, HostRole::kSshGateway);
  EXPECT_EQ(topo.storage_server().role, HostRole::kStorageServer);
}

// --------------------------------------------------------- CampusNetwork

packet::Packet make_inbound_udp(CampusNetwork& net,
                                packet::Ipv4Address dst_ip,
                                TrafficLabel label,
                                std::size_t payload = 100) {
  packet::Endpoint src{packet::MacAddress::from_id(1),
                       packet::Ipv4Address(8, 8, 8, 8), 53};
  packet::Endpoint dst{packet::MacAddress::from_id(2), dst_ip, 9999};
  return packet::PacketBuilder(net.events().now())
      .udp(src, dst)
      .payload_size(payload)
      .label(label)
      .build();
}

TEST(CampusNetwork, TapSeesBothDirections) {
  EventQueue q;
  CampusConfig cfg;
  CampusNetwork net(q, cfg);
  int in = 0, out = 0;
  net.set_tap([&](const packet::Packet&, Direction d) {
    (d == Direction::kInbound ? in : out)++;
  });
  const auto client_ip = net.topology().clients().front().endpoint.ip;
  net.inject(Direction::kInbound,
             make_inbound_udp(net, client_ip, TrafficLabel::kBenign));
  packet::Endpoint a{packet::MacAddress::from_id(3), client_ip, 1234};
  packet::Endpoint b{packet::MacAddress::from_id(4),
                     packet::Ipv4Address(1, 1, 1, 1), 80};
  net.inject(Direction::kOutbound,
             packet::PacketBuilder(q.now()).udp(a, b).build());
  q.run_all();
  EXPECT_EQ(in, 1);
  EXPECT_EQ(out, 1);
}

TEST(CampusNetwork, IngressFilterDropsAndCounts) {
  EventQueue q;
  CampusConfig cfg;
  CampusNetwork net(q, cfg);
  net.set_ingress_filter([](const packet::Packet& p) {
    return p.label == TrafficLabel::kDnsAmplification;
  });
  const auto client_ip = net.topology().clients().front().endpoint.ip;
  net.inject(Direction::kInbound,
             make_inbound_udp(net, client_ip,
                              TrafficLabel::kDnsAmplification));
  net.inject(Direction::kInbound,
             make_inbound_udp(net, client_ip, TrafficLabel::kBenign));
  q.run_all();
  const auto& acc = net.accounting();
  EXPECT_EQ(acc.filtered.attack_frames(), 1u);
  EXPECT_EQ(acc.filtered.benign_frames(), 0u);
  EXPECT_EQ(acc.delivered.benign_frames(), 1u);
  EXPECT_EQ(acc.delivered.attack_frames(), 0u);
  // The tap still saw both (capture is pre-filter).
  EXPECT_EQ(acc.tapped_in.total_frames(), 2u);
}

TEST(CampusNetwork, AccountingConservation) {
  EventQueue q;
  CampusConfig cfg;
  cfg.upstream_gbps = 0.001;  // 1 Mbps: force upstream drops
  cfg.upstream_queue_bytes = 5000;
  CampusNetwork net(q, cfg);
  const auto client_ip = net.topology().clients().front().endpoint.ip;
  for (int i = 0; i < 200; ++i) {
    net.inject(Direction::kInbound,
               make_inbound_udp(net, client_ip, TrafficLabel::kBenign,
                                1000));
  }
  q.run_all();
  const auto& acc = net.accounting();
  EXPECT_GT(acc.lost_upstream.total_frames(), 0u);
  EXPECT_EQ(acc.offered_in.total_frames(),
            acc.lost_upstream.total_frames() +
                acc.filtered.total_frames() +
                acc.lost_access.total_frames() +
                acc.delivered.total_frames());
}

TEST(CampusNetwork, ServerTrafficSkipsAccessLink) {
  EventQueue q;
  CampusConfig cfg;
  CampusNetwork net(q, cfg);
  const auto server_ip = net.topology().web_server().endpoint.ip;
  net.inject(Direction::kInbound,
             make_inbound_udp(net, server_ip, TrafficLabel::kBenign));
  q.run_all();
  EXPECT_EQ(net.client_access().stats().frames_forwarded, 0u);
  EXPECT_EQ(net.accounting().delivered.total_frames(), 1u);
}

TEST(CampusNetwork, DiurnalFactorBoundedAndPeaksAfternoon) {
  EventQueue q;
  CampusConfig cfg;
  cfg.day_phase_hours = 0.0;  // sim t=0 is midnight
  CampusNetwork net(q, cfg);
  double peak = 0, trough = 2;
  double peak_hour = -1;
  for (int h = 0; h < 24; ++h) {
    const double f = net.diurnal_factor(
        Timestamp::from_seconds(h * 3600.0));
    EXPECT_GT(f, 0.15);
    EXPECT_LE(f, 1.0);
    if (f > peak) {
      peak = f;
      peak_hour = h;
    }
    trough = std::min(trough, f);
  }
  EXPECT_EQ(peak_hour, 14);
  EXPECT_LT(trough, 0.3);
  EXPECT_GT(peak, 0.9);
}

TEST(CampusNetwork, DiurnalDisabledIsFlat) {
  EventQueue q;
  CampusConfig cfg;
  cfg.diurnal = false;
  CampusNetwork net(q, cfg);
  EXPECT_EQ(net.diurnal_factor(Timestamp::from_seconds(3 * 3600.0)), 1.0);
}

// --------------------------------------------------------------- Traffic

class TrafficFixture : public ::testing::Test {
 protected:
  void run_scenario(ScenarioConfig scenario, Duration for_time) {
    simulator_ = std::make_unique<CampusSimulator>(scenario);
    simulator_->network().set_tap(
        [this](const packet::Packet& p, Direction d) {
          tapped_.push_back(p);
          directions_.push_back(d);
        });
    simulator_->run_for(for_time);
  }

  std::unique_ptr<CampusSimulator> simulator_;
  std::vector<packet::Packet> tapped_;
  std::vector<Direction> directions_;
};

TEST_F(TrafficFixture, BenignMixProducesParseableLabeledTraffic) {
  ScenarioConfig scenario;
  scenario.campus.seed = 11;
  scenario.campus.diurnal = false;
  run_scenario(scenario, Duration::seconds(20));

  ASSERT_GT(tapped_.size(), 500u);
  std::size_t dns_seen = 0, tcp_seen = 0;
  for (std::size_t i = 0; i < tapped_.size(); ++i) {
    const auto& p = tapped_[i];
    EXPECT_EQ(p.label, TrafficLabel::kBenign);
    PacketView v(p);
    ASSERT_TRUE(v.valid());
    ASSERT_TRUE(v.is_ipv4());
    const auto t = v.five_tuple();
    ASSERT_TRUE(t.has_value());
    // Direction consistency: inbound packets target campus space,
    // outbound packets originate there.
    const auto& topo = simulator_->network().topology();
    if (directions_[i] == Direction::kInbound) {
      EXPECT_TRUE(topo.is_campus(t->dst));
      EXPECT_FALSE(topo.is_campus(t->src));
    } else {
      EXPECT_TRUE(topo.is_campus(t->src));
      EXPECT_FALSE(topo.is_campus(t->dst));
    }
    if (v.is_dns()) ++dns_seen;
    if (v.is_tcp()) ++tcp_seen;
  }
  EXPECT_GT(dns_seen, 20u);
  EXPECT_GT(tcp_seen, 200u);
}

TEST_F(TrafficFixture, PerAppStatsTrackEmission) {
  ScenarioConfig scenario;
  scenario.campus.seed = 14;
  scenario.campus.diurnal = false;
  run_scenario(scenario, Duration::seconds(30));
  auto& traffic = simulator_->traffic();
  // Every default-rate app produced sessions and packets.
  for (const char* app : {"web", "web_in", "dns", "dns_in", "mail"}) {
    const auto& stats = traffic.stats(app);
    EXPECT_GT(stats.sessions, 0u) << app;
    EXPECT_GT(stats.packets, 0u) << app;
    EXPECT_GT(stats.bytes, stats.packets * 50) << app;
  }
  // DNS sessions are light (couple of packets); web is heavier.
  const auto& dns = traffic.stats("dns");
  const auto& web = traffic.stats("web");
  EXPECT_LT(dns.packets / std::max<std::uint64_t>(dns.sessions, 1),
            web.packets / std::max<std::uint64_t>(web.sessions, 1));
  // Totals add up across apps.
  std::uint64_t total = 0;
  for (const char* app : {"web", "web_in", "video", "dns", "dns_in",
                          "ssh", "mail", "bulk"})
    total += traffic.stats(app).packets;
  EXPECT_EQ(total, traffic.total_packets());
}

TEST_F(TrafficFixture, StopHaltsNewSessions) {
  ScenarioConfig scenario;
  scenario.campus.seed = 15;
  scenario.campus.diurnal = false;
  simulator_ = std::make_unique<CampusSimulator>(scenario);
  simulator_->run_for(Duration::seconds(5));
  simulator_->traffic().stop();
  const auto sessions_at_stop = [&] {
    std::uint64_t s = 0;
    for (const char* app : {"web", "web_in", "video", "dns", "dns_in",
                            "ssh", "mail", "bulk"})
      s += simulator_->traffic().stats(app).sessions;
    return s;
  }();
  simulator_->run_for(Duration::seconds(10));
  std::uint64_t sessions_later = 0;
  for (const char* app : {"web", "web_in", "video", "dns", "dns_in",
                          "ssh", "mail", "bulk"})
    sessions_later += simulator_->traffic().stats(app).sessions;
  EXPECT_EQ(sessions_later, sessions_at_stop);
}

TEST_F(TrafficFixture, DeterministicAcrossRuns) {
  ScenarioConfig scenario;
  scenario.campus.seed = 99;
  run_scenario(scenario, Duration::seconds(5));
  const auto first_count = tapped_.size();
  const auto first_bytes = [&] {
    std::size_t b = 0;
    for (const auto& p : tapped_) b += p.size();
    return b;
  }();

  tapped_.clear();
  directions_.clear();
  run_scenario(scenario, Duration::seconds(5));
  std::size_t second_bytes = 0;
  for (const auto& p : tapped_) second_bytes += p.size();
  EXPECT_EQ(tapped_.size(), first_count);
  EXPECT_EQ(second_bytes, first_bytes);
}

TEST_F(TrafficFixture, LoadScaleIncreasesTraffic) {
  ScenarioConfig light, heavy;
  light.campus.seed = heavy.campus.seed = 3;
  light.campus.diurnal = heavy.campus.diurnal = false;
  light.campus.load_scale = 0.3;
  heavy.campus.load_scale = 2.0;
  run_scenario(light, Duration::seconds(10));
  const auto light_count = tapped_.size();
  tapped_.clear();
  directions_.clear();
  run_scenario(heavy, Duration::seconds(10));
  EXPECT_GT(tapped_.size(), light_count * 2);
}

// ---------------------------------------------------------------- Attacks

TEST_F(TrafficFixture, DnsAmplificationShape) {
  ScenarioConfig scenario;
  scenario.campus.seed = 5;
  scenario.campus.diurnal = false;
  scenario.scenarios.push_back(
      Scenario::attack(BehaviorKind::kDnsAmplification)
          .with(DnsAmplificationShape{.response_bytes = 2500,
                                      .reflectors = 50})
          .rate(2000)
          .starting_at(Timestamp::from_seconds(2))
          .lasting(Duration::seconds(6)));
  run_scenario(scenario, Duration::seconds(10));

  std::set<std::uint32_t> reflector_ips;
  std::size_t attack_packets = 0;
  double payload_sum = 0;
  for (const auto& p : tapped_) {
    if (p.label != TrafficLabel::kDnsAmplification) continue;
    ++attack_packets;
    PacketView v(p);
    ASSERT_TRUE(v.valid());
    ASSERT_TRUE(v.is_udp());
    EXPECT_EQ(v.udp().src_port, 53);  // reflected from resolvers
    EXPECT_GT(v.payload().size(), 1000u);  // sizes jitter ~0.55-1.45x
    payload_sum += static_cast<double>(v.payload().size());
    const auto t = *v.five_tuple();
    reflector_ips.insert(t.src.value());
    // All aimed at the single victim.
    EXPECT_EQ(t.dst,
              simulator_->network().topology().clients().front().endpoint.ip);
    // Payload is genuine DNS: parseable, response bit set, fat answers.
    const auto dns = v.dns();
    ASSERT_TRUE(dns.ok());
    EXPECT_TRUE(dns.value().is_response);
    EXPECT_GT(dns.value().answer_bytes(), 800u);
  }
  // Mean near the configured response size despite jitter.
  EXPECT_NEAR(payload_sum / static_cast<double>(attack_packets), 2500.0,
              500.0);
  // ~2000 pps for 6s, minus upstream losses.
  EXPECT_GT(attack_packets, 8000u);
  EXPECT_GT(reflector_ips.size(), 30u);
}

TEST_F(TrafficFixture, SynFloodShape) {
  ScenarioConfig scenario;
  scenario.campus.seed = 6;
  scenario.scenarios.push_back(Scenario::attack(BehaviorKind::kSynFlood)
                                   .rate(1500)
                                   .starting_at(Timestamp::from_seconds(1))
                                   .lasting(Duration::seconds(4)));
  run_scenario(scenario, Duration::seconds(6));

  std::set<std::uint32_t> sources;
  std::size_t syn_count = 0;
  for (const auto& p : tapped_) {
    if (p.label != TrafficLabel::kSynFlood) continue;
    PacketView v(p);
    ASSERT_TRUE(v.valid());
    ASSERT_TRUE(v.is_tcp());
    EXPECT_TRUE(v.tcp().syn());
    EXPECT_FALSE(v.tcp().ack_flag());
    EXPECT_EQ(v.five_tuple()->dst_port, 443);
    sources.insert(v.five_tuple()->src.value());
    ++syn_count;
  }
  EXPECT_GT(syn_count, 4000u);
  // Spoofed sources: nearly every packet from a distinct address.
  EXPECT_GT(sources.size(), syn_count * 9 / 10);
}

TEST_F(TrafficFixture, PortScanTouchesManyHostsAndPorts) {
  ScenarioConfig scenario;
  scenario.campus.seed = 8;
  scenario.scenarios.push_back(Scenario::attack(BehaviorKind::kPortScan)
                                   .rate(400)
                                   .starting_at(Timestamp::from_seconds(0))
                                   .lasting(Duration::seconds(10)));
  run_scenario(scenario, Duration::seconds(10));

  std::set<std::uint32_t> scanned_hosts;
  std::set<std::uint16_t> scanned_ports;
  std::set<std::uint32_t> scanner_ips;
  for (const auto& p : tapped_) {
    if (p.label != TrafficLabel::kPortScan) continue;
    PacketView v(p);
    const auto t = *v.five_tuple();
    scanned_hosts.insert(t.dst.value());
    scanned_ports.insert(t.dst_port);
    scanner_ips.insert(t.src.value());
  }
  EXPECT_EQ(scanner_ips.size(), 1u);  // one scanner
  EXPECT_GT(scanned_hosts.size(), 100u);
  EXPECT_GE(scanned_ports.size(), 10u);
}

TEST_F(TrafficFixture, SshBruteForceHammersGateway) {
  ScenarioConfig scenario;
  scenario.campus.seed = 9;
  scenario.scenarios.push_back(
      Scenario::attack(BehaviorKind::kSshBruteForce)
          .rate(10)
          .starting_at(Timestamp::from_seconds(0))
          .lasting(Duration::seconds(10)));
  run_scenario(scenario, Duration::seconds(10));

  std::size_t attempts = 0;
  for (const auto& p : tapped_) {
    if (p.label != TrafficLabel::kSshBruteForce) continue;
    PacketView v(p);
    const auto t = *v.five_tuple();
    EXPECT_EQ(t.dst_port, 22);
    EXPECT_EQ(t.dst,
              simulator_->network().topology().ssh_gateway().endpoint.ip);
    if (v.is_tcp() && v.tcp().syn() && !v.tcp().ack_flag()) ++attempts;
  }
  EXPECT_GT(attempts, 50u);
}

TEST_F(TrafficFixture, AttackCongestionCausesBenignAccessLoss) {
  // A heavy amplification flood exceeds the 2 Gbps client access link;
  // benign packets to client subnets get caught in the overflow — the
  // collateral damage the mitigation loop exists to remove.
  ScenarioConfig scenario;
  scenario.campus.seed = 12;
  scenario.campus.diurnal = false;
  scenario.scenarios.push_back(
      Scenario::attack(BehaviorKind::kDnsAmplification)
          .with(DnsAmplificationShape{.response_bytes = 2800})
          .rate(120'000)
          .starting_at(Timestamp::from_seconds(1))
          .lasting(Duration::seconds(3)));
  // ~400k attack packets: count at the tap instead of storing them.
  CampusSimulator simulator(scenario);
  std::uint64_t tapped = 0;
  simulator.network().set_tap(
      [&](const packet::Packet&, Direction) { ++tapped; });
  simulator.run_for(Duration::seconds(5));

  EXPECT_GT(tapped, 100'000u);
  const auto& acc = simulator.network().accounting();
  EXPECT_GT(acc.lost_access.attack_frames(), 0u);
  EXPECT_GT(acc.lost_access.benign_frames(), 0u);
}

}  // namespace
}  // namespace campuslab::sim

// Tests for campuslab::features — sketches (EWMA rate, linear-counting
// distinct), flow feature semantics, stateful per-packet features on
// real attack traffic, and dataset building from the store.
#include <gtest/gtest.h>

#include "campuslab/features/dataset_builder.h"
#include "campuslab/features/packet_features.h"
#include "campuslab/features/sketch.h"
#include "campuslab/sim/simulator.h"

namespace campuslab::features {
namespace {

using packet::Ipv4Address;
using packet::TrafficLabel;
using sim::Direction;

// ---------------------------------------------------------------- EwmaRate

TEST(EwmaRate, ConvergesToSteadyRate) {
  EwmaRate rate(Duration::seconds(1));
  // 100 events/second for 5 seconds.
  for (int i = 0; i < 500; ++i)
    rate.update(Timestamp::from_seconds(i * 0.01), 1.0);
  EXPECT_NEAR(rate.rate_at(Timestamp::from_seconds(5.0)), 100.0, 15.0);
}

TEST(EwmaRate, DecaysWhenIdle) {
  EwmaRate rate(Duration::seconds(1));
  for (int i = 0; i < 200; ++i)
    rate.update(Timestamp::from_seconds(i * 0.01), 1.0);
  const double busy = rate.rate_at(Timestamp::from_seconds(2.0));
  const double later = rate.rate_at(Timestamp::from_seconds(6.0));
  EXPECT_GT(busy, 50.0);
  EXPECT_LT(later, busy * 0.05);  // 4 tau of decay
}

TEST(EwmaRate, ScalesWithWeight) {
  EwmaRate pps(Duration::seconds(1)), bps(Duration::seconds(1));
  for (int i = 0; i < 300; ++i) {
    const auto t = Timestamp::from_seconds(i * 0.01);
    pps.update(t, 1.0);
    bps.update(t, 1500.0);
  }
  const auto t = Timestamp::from_seconds(3.0);
  EXPECT_NEAR(bps.rate_at(t) / pps.rate_at(t), 1500.0, 1.0);
}

// ----------------------------------------------------------- BitmapDistinct

TEST(BitmapDistinct, SmallCountsNearExact) {
  BitmapDistinct sketch;
  for (std::uint64_t k = 0; k < 20; ++k) sketch.add(k * 7919);
  EXPECT_NEAR(sketch.estimate(), 20.0, 3.0);
}

TEST(BitmapDistinct, DuplicatesDontInflate) {
  BitmapDistinct sketch;
  for (int rep = 0; rep < 100; ++rep)
    for (std::uint64_t k = 0; k < 10; ++k) sketch.add(k);
  EXPECT_NEAR(sketch.estimate(), 10.0, 2.0);
}

TEST(BitmapDistinct, LargeCountsSaturateGracefully) {
  BitmapDistinct small_set, large_set;
  for (std::uint64_t k = 0; k < 30; ++k) small_set.add(k);
  for (std::uint64_t k = 0; k < 5000; ++k) large_set.add(k);
  EXPECT_GT(large_set.estimate(), small_set.estimate() * 5);
}

TEST(BitmapDistinct, ResetClears) {
  BitmapDistinct sketch;
  for (std::uint64_t k = 0; k < 100; ++k) sketch.add(k);
  sketch.reset();
  EXPECT_EQ(sketch.bits_set(), 0u);
  EXPECT_EQ(sketch.estimate(), 0.0);
}

// ------------------------------------------------------------ FlowFeatures

capture::FlowRecord amp_flow() {
  capture::FlowRecord f;
  f.tuple = packet::FiveTuple{Ipv4Address(8, 8, 8, 8),
                              Ipv4Address(10, 1, 16, 2), 53, 7777, 17};
  f.initial_direction = Direction::kInbound;
  f.first_ts = Timestamp::from_seconds(10);
  f.last_ts = Timestamp::from_seconds(12);
  f.packets = 2000;
  f.bytes = 6'000'000;
  f.payload_bytes = 5'800'000;
  f.fwd_packets = 2000;
  f.saw_dns = true;
  f.label_packets[static_cast<std::size_t>(
      TrafficLabel::kDnsAmplification)] = 2000;
  return f;
}

TEST(FlowFeatures, NamesMatchCount) {
  EXPECT_EQ(flow_feature_names().size(), kFlowFeatureCount);
  const auto x = extract_flow_features(amp_flow());
  EXPECT_EQ(x.size(), kFlowFeatureCount);
}

TEST(FlowFeatures, AmplificationFlowShape) {
  const auto x = extract_flow_features(amp_flow());
  auto get = [&](FlowFeature f) {
    return x[static_cast<std::size_t>(f)];
  };
  EXPECT_DOUBLE_EQ(get(FlowFeature::kDurationSeconds), 2.0);
  EXPECT_DOUBLE_EQ(get(FlowFeature::kPacketsPerSecond), 1000.0);
  EXPECT_DOUBLE_EQ(get(FlowFeature::kBytesPerSecond), 3e6);
  EXPECT_DOUBLE_EQ(get(FlowFeature::kMeanPacketBytes), 3000.0);
  EXPECT_DOUBLE_EQ(get(FlowFeature::kIsUdp), 1.0);
  EXPECT_DOUBLE_EQ(get(FlowFeature::kIsTcp), 0.0);
  EXPECT_DOUBLE_EQ(get(FlowFeature::kSrcPortIsDns), 1.0);
  EXPECT_DOUBLE_EQ(get(FlowFeature::kIsInbound), 1.0);
  EXPECT_DOUBLE_EQ(get(FlowFeature::kSawDns), 1.0);
  EXPECT_NEAR(get(FlowFeature::kPayloadRatio), 5.8 / 6.0, 1e-9);
}

TEST(FlowFeatures, SinglePacketProbeFiniteRates) {
  capture::FlowRecord f;
  f.tuple = packet::FiveTuple{Ipv4Address(23, 0, 0, 1),
                              Ipv4Address(10, 1, 16, 9), 44000, 3389, 6};
  f.first_ts = f.last_ts = Timestamp::from_seconds(1);
  f.packets = 1;
  f.bytes = 60;
  f.syn_count = 1;
  const auto x = extract_flow_features(f);
  for (const auto v : x) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(FlowFeature::kSynRatio)],
                   1.0);
}

// ---------------------------------------------------------- PacketFeatures

TEST(PacketFeatures, NamesMatchCount) {
  EXPECT_EQ(packet_feature_names().size(), kPacketFeatureCount);
}

TEST(PacketFeatures, RegisterFeaturesFlagged) {
  EXPECT_TRUE(is_register_feature(PacketFeature::kDstInboundPps));
  EXPECT_TRUE(is_register_feature(PacketFeature::kSrcFanout));
  EXPECT_FALSE(is_register_feature(PacketFeature::kSrcPort));
  EXPECT_FALSE(is_register_feature(PacketFeature::kIsUdp));
}

packet::Packet inbound_udp(double t, Ipv4Address src, Ipv4Address dst,
                           std::uint16_t sport, std::size_t payload) {
  using namespace packet;
  return PacketBuilder(Timestamp::from_seconds(t))
      .udp(Endpoint{MacAddress::from_id(1), src, sport},
           Endpoint{MacAddress::from_id(2), dst, 9999})
      .payload_size(payload)
      .build();
}

TEST(PacketFeatures, RateRegistersRiseUnderFlood) {
  StatefulFeatureExtractor extractor;
  const Ipv4Address victim(10, 1, 16, 2);
  std::vector<double> early, late;
  for (int i = 0; i < 5000; ++i) {
    // 1000 pps flood from rotating reflectors.
    const Ipv4Address reflector(
        static_cast<std::uint32_t>(0x08080000 + (i % 200)));
    const auto x = extractor.extract(
        inbound_udp(1.0 + i * 0.001, reflector, victim, 53, 1200),
        Direction::kInbound);
    ASSERT_EQ(x.size(), kPacketFeatureCount);
    if (i == 100) early = x;
    if (i == 4999) late = x;
  }
  auto get = [](const std::vector<double>& x, PacketFeature f) {
    return x[static_cast<std::size_t>(f)];
  };
  EXPECT_GT(get(late, PacketFeature::kDstInboundPps), 500.0);
  EXPECT_GT(get(late, PacketFeature::kDstInboundPps),
            get(early, PacketFeature::kDstInboundPps));
  EXPECT_GT(get(late, PacketFeature::kDstInboundBps), 5e5);
  EXPECT_GT(get(late, PacketFeature::kDstDistinctSrcs), 50.0);
  EXPECT_DOUBLE_EQ(get(late, PacketFeature::kSrcPortIsDns), 1.0);
  EXPECT_DOUBLE_EQ(get(late, PacketFeature::kIsUdp), 1.0);
}

TEST(PacketFeatures, FanoutRisesForScanner) {
  StatefulFeatureExtractor extractor;
  const Ipv4Address scanner(23, 5, 5, 5);
  std::vector<double> last;
  for (int i = 0; i < 200; ++i) {
    const Ipv4Address target(
        static_cast<std::uint32_t>(0x0A011000 + i));
    last = extractor.extract(
        inbound_udp(1.0 + i * 0.01, scanner, target, 40000, 0),
        Direction::kInbound);
  }
  EXPECT_GT(last[static_cast<std::size_t>(PacketFeature::kSrcFanout)],
            80.0);
}

TEST(PacketFeatures, SketchWindowRolls) {
  PacketFeatureConfig cfg;
  cfg.sketch_window = Duration::seconds(2);
  StatefulFeatureExtractor extractor(cfg);
  const Ipv4Address victim(10, 1, 16, 2);
  // Burst of distinct sources, then quiet, then one packet much later.
  for (int i = 0; i < 100; ++i) {
    extractor.extract(
        inbound_udp(1.0 + i * 0.001,
                    Ipv4Address(static_cast<std::uint32_t>(0x17000000 + i)),
                    victim, 53, 100),
        Direction::kInbound);
  }
  const auto x = extractor.extract(
      inbound_udp(10.0, Ipv4Address(23, 9, 9, 9), victim, 53, 100),
      Direction::kInbound);
  // Window rolled: the distinct-src sketch only saw the one new packet.
  EXPECT_LT(
      x[static_cast<std::size_t>(PacketFeature::kDstDistinctSrcs)], 5.0);
}

TEST(PacketFeatures, OutboundPacketsSkipRegisters) {
  StatefulFeatureExtractor extractor;
  const auto x = extractor.extract(
      inbound_udp(1.0, Ipv4Address(10, 1, 16, 2), Ipv4Address(8, 8, 8, 8),
                  5000, 64),
      Direction::kOutbound);
  ASSERT_EQ(x.size(), kPacketFeatureCount);
  EXPECT_EQ(x[static_cast<std::size_t>(PacketFeature::kDstInboundPps)],
            0.0);
  EXPECT_EQ(extractor.tracked_dsts(), 0u);
}

TEST(PacketFeatures, NonIpReturnsEmpty) {
  StatefulFeatureExtractor extractor;
  packet::Packet junk;
  junk.ts = Timestamp::from_seconds(1);
  junk.assign(64, 0xAA);
  EXPECT_TRUE(extractor.extract(junk, Direction::kInbound).empty());
}

TEST(PacketFeatures, HostTrackingBounded) {
  PacketFeatureConfig cfg;
  cfg.max_tracked_hosts = 100;
  StatefulFeatureExtractor extractor(cfg);
  for (int i = 0; i < 1000; ++i) {
    extractor.extract(
        inbound_udp(1.0 + i * 0.001, Ipv4Address(23, 0, 0, 1),
                    Ipv4Address(static_cast<std::uint32_t>(0x0A010000 + i)),
                    40000, 0),
        Direction::kInbound);
  }
  EXPECT_LE(extractor.tracked_dsts(), 100u);
}

// ---------------------------------------------------------- DatasetBuilder

TEST(DatasetBuilder, MulticlassFromSimulatedTraffic) {
  sim::ScenarioConfig scenario;
  scenario.campus.seed = 61;
  scenario.campus.diurnal = false;
  scenario.scenarios.push_back(
      sim::Scenario::attack(sim::BehaviorKind::kDnsAmplification)
          .rate(800)
          .starting_at(Timestamp::from_seconds(3))
          .lasting(Duration::seconds(5)));
  sim::CampusSimulator simulator(scenario);

  capture::FlowMeter meter;
  std::vector<capture::FlowRecord> flows;
  meter.set_sink([&](const capture::FlowRecord& r) { flows.push_back(r); });
  simulator.network().set_tap(
      [&](const packet::Packet& p, Direction d) { meter.offer(p, d); });
  simulator.run_for(Duration::seconds(12));
  meter.flush();

  const auto data = build_flow_dataset(flows);
  EXPECT_EQ(data.n_features(), kFlowFeatureCount);
  EXPECT_EQ(data.n_classes(), 7);
  EXPECT_EQ(data.n_rows(), flows.size());
  const auto counts = data.class_counts();
  EXPECT_GT(counts[0], 0u);  // benign
  EXPECT_GT(counts[static_cast<std::size_t>(
                TrafficLabel::kDnsAmplification)],
            0u);
}

TEST(DatasetBuilder, BinaryTargetCollapsesLabels) {
  std::vector<capture::FlowRecord> flows{amp_flow()};
  capture::FlowRecord benign;
  benign.tuple = packet::FiveTuple{Ipv4Address(10, 1, 16, 3),
                                   Ipv4Address(1, 1, 1, 1), 5000, 443, 6};
  benign.first_ts = benign.last_ts = Timestamp::from_seconds(1);
  benign.packets = 10;
  benign.bytes = 5000;
  benign.label_packets[0] = 10;
  flows.push_back(benign);
  capture::FlowRecord scan = benign;
  scan.label_packets = {};
  scan.label_packets[static_cast<std::size_t>(TrafficLabel::kPortScan)] =
      10;
  flows.push_back(scan);

  FlowDatasetOptions opt;
  opt.binary_target = TrafficLabel::kDnsAmplification;
  const auto data = build_flow_dataset(flows, opt);
  EXPECT_EQ(data.n_classes(), 2);
  EXPECT_EQ(data.label(0), 1);  // the amp flow
  EXPECT_EQ(data.label(1), 0);  // benign
  EXPECT_EQ(data.label(2), 0);  // other attack counts as "rest"
  EXPECT_EQ(data.class_names()[1], "dns_amplification");

  FlowDatasetOptions any_attack;
  any_attack.attack_vs_benign = true;
  const auto binary = build_flow_dataset(flows, any_attack);
  EXPECT_EQ(binary.label(0), 1);
  EXPECT_EQ(binary.label(1), 0);
  EXPECT_EQ(binary.label(2), 1);
}

TEST(DatasetBuilder, FromStoreMatchesFromRecords) {
  std::vector<capture::FlowRecord> flows{amp_flow()};
  store::DataStore ds;
  ds.ingest(flows[0]);
  const auto a = build_flow_dataset(flows);
  const auto b = build_flow_dataset(ds);
  ASSERT_EQ(a.n_rows(), b.n_rows());
  for (std::size_t f = 0; f < a.n_features(); ++f)
    EXPECT_EQ(a.row(0)[f], b.row(0)[f]);
  EXPECT_EQ(a.label(0), b.label(0));
}

}  // namespace
}  // namespace campuslab::features

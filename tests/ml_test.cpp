// Tests for campuslab::ml — dataset mechanics, CART behaviour (XOR,
// purity, depth caps, determinism, serialization), random forest,
// gradient boosting, logistic regression, and hand-computed metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "campuslab/ml/boosting.h"
#include "campuslab/ml/forest.h"
#include "campuslab/ml/linear.h"
#include "campuslab/ml/metrics.h"
#include "campuslab/ml/tree.h"

namespace campuslab::ml {
namespace {

Dataset two_blob_dataset(std::size_t n_per_class, double separation,
                         std::uint64_t seed) {
  Dataset data({"x0", "x1"}, {"neg", "pos"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    const double a[2] = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    data.add(a, 0);
    const double b[2] = {rng.normal(separation, 1.0),
                         rng.normal(separation, 1.0)};
    data.add(b, 1);
  }
  return data;
}

Dataset xor_dataset(std::size_t n, std::uint64_t seed) {
  Dataset data({"x0", "x1"}, {"zero", "one"});
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1, 1);
    const double x1 = rng.uniform(-1, 1);
    const double row[2] = {x0, x1};
    data.add(row, (x0 > 0) != (x1 > 0) ? 1 : 0);
  }
  return data;
}

// --------------------------------------------------------------- Dataset

TEST(Dataset, AddAndAccess) {
  Dataset d({"a", "b"}, {"c0", "c1", "c2"});
  const double r0[2] = {1.0, 2.0};
  const double r1[2] = {3.0, 4.0};
  d.add(r0, 0);
  d.add(r1, 2);
  EXPECT_EQ(d.n_rows(), 2u);
  EXPECT_EQ(d.n_features(), 2u);
  EXPECT_EQ(d.n_classes(), 3);
  EXPECT_EQ(d.row(1)[0], 3.0);
  EXPECT_EQ(d.label(1), 2);
  EXPECT_EQ(d.class_counts(), (std::vector<std::size_t>{1, 0, 1}));
}

TEST(Dataset, StratifiedSplitPreservesClassBalance) {
  auto data = two_blob_dataset(500, 3.0, 1);
  Rng rng(2);
  const auto [train, test] = data.stratified_split(0.3, rng);
  EXPECT_EQ(train.n_rows() + test.n_rows(), data.n_rows());
  const auto train_counts = train.class_counts();
  const auto test_counts = test.class_counts();
  EXPECT_EQ(train_counts[0], train_counts[1]);
  EXPECT_EQ(test_counts[0], test_counts[1]);
  EXPECT_NEAR(static_cast<double>(test.n_rows()) /
                  static_cast<double>(data.n_rows()),
              0.3, 0.01);
}

TEST(Dataset, BootstrapSameSizeFromOriginalRows) {
  auto data = two_blob_dataset(50, 2.0, 3);
  Rng rng(4);
  const auto boot = data.bootstrap(rng);
  EXPECT_EQ(boot.n_rows(), data.n_rows());
}

TEST(Dataset, FeatureRanges) {
  Dataset d({"a"}, {"c0", "c1"});
  for (double v : {3.0, -1.0, 7.0}) {
    const double row[1] = {v};
    d.add(row, 0);
  }
  const auto ranges = d.feature_ranges();
  EXPECT_EQ(ranges[0].first, -1.0);
  EXPECT_EQ(ranges[0].second, 7.0);
}

// ---------------------------------------------------------- DecisionTree

TEST(DecisionTree, LearnsSimpleThreshold) {
  Dataset data({"x"}, {"lo", "hi"});
  for (int i = 0; i < 100; ++i) {
    const double row[1] = {static_cast<double>(i)};
    data.add(row, i < 50 ? 0 : 1);
  }
  DecisionTree tree;
  tree.fit(data);
  const double lo[1] = {10.0}, hi[1] = {90.0}, edge[1] = {49.0};
  EXPECT_EQ(tree.predict(lo), 0);
  EXPECT_EQ(tree.predict(hi), 1);
  EXPECT_EQ(tree.predict(edge), 0);
  EXPECT_EQ(tree.depth(), 1);  // one split suffices
  EXPECT_EQ(tree.leaf_count(), 2u);
}

TEST(DecisionTree, SolvesXor) {
  auto data = xor_dataset(2000, 7);
  TreeConfig cfg;
  cfg.max_depth = 4;
  DecisionTree tree(cfg);
  tree.fit(data);
  const auto cm = evaluate(tree, data);
  EXPECT_GT(cm.accuracy(), 0.95);  // axis-aligned XOR needs depth 2
}

TEST(DecisionTree, RespectsMaxDepth) {
  auto data = xor_dataset(2000, 9);
  TreeConfig cfg;
  cfg.max_depth = 1;
  DecisionTree stump(cfg);
  stump.fit(data);
  EXPECT_LE(stump.depth(), 1);
  // A stump cannot solve XOR.
  EXPECT_LT(evaluate(stump, data).accuracy(), 0.7);
}

TEST(DecisionTree, PureDataMakesSingleLeaf) {
  Dataset data({"x"}, {"only", "other"});
  for (int i = 0; i < 20; ++i) {
    const double row[1] = {static_cast<double>(i)};
    data.add(row, 0);
  }
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.node_count(), 1u);
  const double x[1] = {5.0};
  EXPECT_EQ(tree.predict(x), 0);
  EXPECT_DOUBLE_EQ(tree.confidence(x), 1.0);
}

TEST(DecisionTree, MinSamplesLeafHonored) {
  auto data = two_blob_dataset(100, 1.0, 11);
  TreeConfig cfg;
  cfg.min_samples_leaf = 20;
  DecisionTree tree(cfg);
  tree.fit(data);
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf()) {
      EXPECT_GE(node.samples, 20u);
    }
  }
}

TEST(DecisionTree, DeterministicAcrossFits) {
  auto data = two_blob_dataset(300, 1.5, 13);
  DecisionTree a, b;
  a.fit(data);
  b.fit(data);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.nodes()[i].feature, b.nodes()[i].feature);
    EXPECT_EQ(a.nodes()[i].threshold, b.nodes()[i].threshold);
  }
}

TEST(DecisionTree, SampleWeightsShiftDecision) {
  // Same geometry, but weighting class 1 heavily moves the boundary.
  Dataset data({"x"}, {"a", "b"});
  for (int i = 0; i < 10; ++i) {
    const double row[1] = {static_cast<double>(i)};
    data.add(row, i < 8 ? 0 : 1);  // 8 zeros, 2 ones
  }
  std::vector<double> weights(10, 1.0);
  weights[8] = weights[9] = 100.0;
  TreeConfig cfg;
  cfg.min_samples_leaf = 1;
  DecisionTree tree(cfg);
  tree.fit(data, nullptr, weights);
  // The heavily weighted class must dominate its region's leaf.
  const double x[1] = {9.0};
  EXPECT_EQ(tree.predict(x), 1);
}

TEST(DecisionTree, SerializeRoundTrip) {
  auto data = two_blob_dataset(200, 2.0, 17);
  DecisionTree tree;
  tree.fit(data);
  const auto text = tree.serialize();
  const auto restored = DecisionTree::deserialize(text);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.value().node_count(), tree.node_count());
  Rng rng(18);
  for (int i = 0; i < 200; ++i) {
    const double x[2] = {rng.uniform(-3, 5), rng.uniform(-3, 5)};
    EXPECT_EQ(restored.value().predict(x), tree.predict(x));
    EXPECT_EQ(restored.value().predict_proba(x), tree.predict_proba(x));
  }
  EXPECT_EQ(restored.value().feature_names(), tree.feature_names());
}

TEST(DecisionTree, DeserializeRejectsGarbage) {
  EXPECT_FALSE(DecisionTree::deserialize("not a tree").ok());
  EXPECT_FALSE(DecisionTree::deserialize("campuslab-tree v1\nbroken").ok());
  // Out-of-range child index.
  EXPECT_FALSE(DecisionTree::deserialize(
                   "campuslab-tree v1\n2 1 1\nx\na\nb\n0 0.5 5 6 10 0.5 0.5\n")
                   .ok());
}

TEST(DecisionTree, ToStringMentionsFeatureNames) {
  auto data = two_blob_dataset(200, 3.0, 19);
  DecisionTree tree;
  tree.fit(data);
  const auto text = tree.to_string();
  EXPECT_NE(text.find("if x"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
}

// ---------------------------------------------------------- RandomForest

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  // Noisy, overlapping blobs: a deep single tree overfits; bagging
  // smooths. Evaluate on held-out data.
  auto data = two_blob_dataset(600, 1.2, 23);
  Rng rng(24);
  const auto [train, test] = data.stratified_split(0.4, rng);

  TreeConfig tcfg;
  tcfg.max_depth = 20;
  tcfg.min_samples_leaf = 1;
  DecisionTree tree(tcfg);
  tree.fit(train);

  ForestConfig fcfg;
  fcfg.n_trees = 40;
  fcfg.seed = 25;
  RandomForest forest(fcfg);
  forest.fit(train);

  const double tree_acc = evaluate(tree, test).accuracy();
  const double forest_acc = evaluate(forest, test).accuracy();
  EXPECT_GE(forest_acc, tree_acc - 0.005);
  EXPECT_GT(forest_acc, 0.75);
}

TEST(RandomForest, ProbabilitiesAreDistributions) {
  auto data = two_blob_dataset(200, 2.0, 29);
  ForestConfig cfg;
  cfg.n_trees = 10;
  RandomForest forest(cfg);
  forest.fit(data);
  Rng rng(30);
  for (int i = 0; i < 100; ++i) {
    const double x[2] = {rng.uniform(-3, 5), rng.uniform(-3, 5)};
    const auto probs = forest.predict_proba(x);
    double sum = 0;
    for (const auto p : probs) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RandomForest, DeterministicForSeed) {
  auto data = two_blob_dataset(200, 1.5, 31);
  ForestConfig cfg;
  cfg.n_trees = 8;
  cfg.seed = 77;
  RandomForest a(cfg), b(cfg);
  a.fit(data);
  b.fit(data);
  Rng rng(32);
  for (int i = 0; i < 100; ++i) {
    const double x[2] = {rng.uniform(-3, 5), rng.uniform(-3, 5)};
    EXPECT_EQ(a.predict_proba(x), b.predict_proba(x));
  }
}

TEST(RandomForest, FeatureImportanceFindsSignal) {
  // x0 carries all the signal; x1 is noise.
  Dataset data({"signal", "noise"}, {"a", "b"});
  Rng rng(33);
  for (int i = 0; i < 1000; ++i) {
    const double x0 = rng.uniform(0, 1);
    const double row[2] = {x0, rng.uniform(0, 1)};
    data.add(row, x0 > 0.5 ? 1 : 0);
  }
  ForestConfig cfg;
  cfg.n_trees = 20;
  cfg.features_per_split = 1;  // force both features to be tried
  RandomForest forest(cfg);
  forest.fit(data);
  const auto importance = forest.feature_importance();
  ASSERT_GE(importance.size(), 1u);
  const double noise_imp =
      importance.size() > 1 ? importance[1] : 0.0;
  EXPECT_GT(importance[0], noise_imp * 2);
}

TEST(RandomForest, IsGenuinelyBiggerThanOneTree) {
  auto data = two_blob_dataset(300, 1.0, 37);
  ForestConfig cfg;
  cfg.n_trees = 30;
  RandomForest forest(cfg);
  forest.fit(data);
  EXPECT_EQ(forest.trees().size(), 30u);
  EXPECT_GT(forest.total_nodes(), forest.trees()[0].node_count() * 10);
}

// -------------------------------------------------------- GradientBoosted

TEST(GradientBoosted, LearnsBlobs) {
  auto data = two_blob_dataset(500, 2.0, 41);
  Rng rng(42);
  const auto [train, test] = data.stratified_split(0.3, rng);
  GradientBoosted gbt;
  gbt.fit(train);
  EXPECT_GT(evaluate(gbt, test).accuracy(), 0.9);
}

TEST(GradientBoosted, SolvesXorUnlikeLinear) {
  auto data = xor_dataset(3000, 43);
  Rng rng(44);
  const auto [train, test] = data.stratified_split(0.3, rng);
  GradientBoosted gbt;
  gbt.fit(train);
  LogisticRegression logit;
  logit.fit(train);
  const double gbt_acc = evaluate(gbt, test).accuracy();
  const double logit_acc = evaluate(logit, test).accuracy();
  EXPECT_GT(gbt_acc, 0.93);
  EXPECT_LT(logit_acc, 0.65);  // linear model cannot represent XOR
}

TEST(GradientBoosted, DecisionValueMonotoneInProbability) {
  auto data = two_blob_dataset(300, 2.0, 45);
  GradientBoosted gbt;
  gbt.fit(data);
  Rng rng(46);
  for (int i = 0; i < 50; ++i) {
    const double x[2] = {rng.uniform(-3, 5), rng.uniform(-3, 5)};
    const double value = gbt.decision_value(x);
    const auto probs = gbt.predict_proba(x);
    EXPECT_NEAR(probs[1], 1.0 / (1.0 + std::exp(-value)), 1e-12);
  }
}

TEST(GradientBoosted, MoreRoundsMoreNodes) {
  auto data = two_blob_dataset(200, 1.0, 47);
  BoostConfig small, big;
  small.n_rounds = 5;
  big.n_rounds = 50;
  GradientBoosted a(small), b(big);
  a.fit(data);
  b.fit(data);
  EXPECT_EQ(a.rounds_trained(), 5);
  EXPECT_EQ(b.rounds_trained(), 50);
  EXPECT_GT(b.total_nodes(), a.total_nodes());
}

// ----------------------------------------------------- LogisticRegression

TEST(LogisticRegression, SeparableBlobs) {
  auto data = two_blob_dataset(400, 3.0, 51);
  LogisticRegression logit;
  logit.fit(data);
  EXPECT_GT(evaluate(logit, data).accuracy(), 0.97);
}

TEST(LogisticRegression, MultiClassOneVsRest) {
  Dataset data({"x0", "x1"}, {"a", "b", "c"});
  Rng rng(52);
  const double centers[3][2] = {{0, 0}, {6, 0}, {0, 6}};
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < 200; ++i) {
      const double row[2] = {rng.normal(centers[c][0], 1.0),
                             rng.normal(centers[c][1], 1.0)};
      data.add(row, c);
    }
  LogisticRegression logit;
  logit.fit(data);
  EXPECT_GT(evaluate(logit, data).accuracy(), 0.95);
}

TEST(LogisticRegression, HandlesConstantFeature) {
  Dataset data({"constant", "signal"}, {"a", "b"});
  Rng rng(53);
  for (int i = 0; i < 200; ++i) {
    const double s = rng.uniform(0, 1);
    const double row[2] = {5.0, s};
    data.add(row, s > 0.5 ? 1 : 0);
  }
  LogisticRegression logit;
  logit.fit(data);  // must not NaN out on zero variance
  EXPECT_GT(evaluate(logit, data).accuracy(), 0.9);
}

// ---------------------------------------------------------------- Metrics

TEST(ConfusionMatrix, HandComputed) {
  ConfusionMatrix cm(2);
  // truth 0: 8 correct, 2 predicted 1.  truth 1: 3 predicted 0, 7 correct.
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  for (int i = 0; i < 3; ++i) cm.add(1, 0);
  for (int i = 0; i < 7; ++i) cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 15.0 / 20.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 7.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 7.0 / 10.0);
  const double p = 7.0 / 9.0, r = 0.7;
  EXPECT_DOUBLE_EQ(cm.f1(1), 2 * p * r / (p + r));
}

TEST(ConfusionMatrix, AbsentClassIsZeroNotNan) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_EQ(cm.precision(2), 0.0);
  EXPECT_EQ(cm.recall(2), 0.0);
  EXPECT_EQ(cm.f1(2), 0.0);
}

TEST(RocAuc, PerfectAndRandomAndInverted) {
  const std::vector<double> perfect{0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(perfect, labels), 1.0);

  const std::vector<double> inverted{0.9, 0.8, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(roc_auc(inverted, labels), 0.0);

  const std::vector<double> constant{0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(constant, labels), 0.5);
}

TEST(RocAuc, TiesHandledByMidrank) {
  const std::vector<double> scores{0.1, 0.5, 0.5, 0.9};
  const std::vector<int> labels{0, 0, 1, 1};
  // pairs: (0.1 vs 0.5)=win,(0.1 vs 0.9)=win,(0.5 vs 0.5)=tie,(0.5 vs 0.9)=win
  // AUC = (3 + 0.5)/4
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 3.5 / 4.0);
}

TEST(OperatingPointTest, ThresholdSweepTradesPrecisionRecall) {
  // Scores where high threshold is precise but misses positives.
  std::vector<double> scores;
  std::vector<int> labels;
  Rng rng(54);
  for (int i = 0; i < 2000; ++i) {
    const bool pos = rng.chance(0.3);
    scores.push_back(pos ? rng.uniform(0.4, 1.0) : rng.uniform(0.0, 0.6));
    labels.push_back(pos ? 1 : 0);
  }
  const auto loose = operating_point(scores, labels, 0.45);
  const auto strict = operating_point(scores, labels, 0.9);
  EXPECT_GT(strict.precision, loose.precision);
  EXPECT_LT(strict.recall, loose.recall);
  EXPECT_LT(strict.fpr, loose.fpr);
  EXPECT_DOUBLE_EQ(strict.precision, 1.0);  // >0.6 is pure positive
}

TEST(Dataset, CsvExportRoundShape) {
  Dataset d({"alpha", "beta"}, {"neg", "pos"});
  const double r0[2] = {1.5, -2.0};
  const double r1[2] = {3.25, 0.0};
  d.add(r0, 0);
  d.add(r1, 1);
  std::ostringstream out;
  d.to_csv(out);
  const auto text = out.str();
  EXPECT_NE(text.find("alpha,beta,label"), std::string::npos);
  EXPECT_NE(text.find("1.5,-2,neg"), std::string::npos);
  EXPECT_NE(text.find("3.25,0,pos"), std::string::npos);
  // Exactly header + 2 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Calibration, BinsCoverAllPredictions) {
  auto data = two_blob_dataset(300, 2.0, 55);
  ForestConfig cfg;
  cfg.n_trees = 15;
  RandomForest forest(cfg);
  forest.fit(data);
  const auto bins = calibration_bins(forest, data, 10);
  std::uint64_t total = 0;
  for (const auto& b : bins) {
    total += b.count;
    if (b.count > 0) {
      EXPECT_GE(b.mean_confidence, 0.0);
      EXPECT_LE(b.mean_confidence, 1.0);
    }
  }
  EXPECT_EQ(total, data.n_rows());
}

}  // namespace
}  // namespace campuslab::ml

// ShardedCaptureEngine under real concurrency: lossless accounting
// (offered == accepted + dropped, accepted == consumed after drain),
// shard affinity (a conversation never splits across shards), per-shard
// drop attribution, merged-stats consistency, and the full
// shard -> FlowMeter -> ShardedFlowIngester -> DataStore path.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campuslab/capture/sharded_engine.h"
#include "campuslab/features/flow_merge.h"
#include "campuslab/packet/builder.h"
#include "campuslab/store/sharded_ingest.h"
#include "campuslab/util/rng.h"

namespace campuslab::capture {
namespace {

using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;
using packet::PacketBuilder;
using sim::Direction;

Endpoint ep(std::uint32_t id, Ipv4Address ip, std::uint16_t port) {
  return Endpoint{MacAddress::from_id(id), ip, port};
}

/// Random UDP traffic over `hosts` distinct client endpoints, one
/// packet every microsecond. Roughly half the packets are "reverse"
/// (server -> client) so shard affinity is actually exercised.
std::vector<packet::Packet> make_traffic(std::size_t count,
                                         std::size_t hosts,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<packet::Packet> out;
  out.reserve(count);
  const auto server = ep(1, Ipv4Address(8, 8, 8, 8), 53);
  for (std::size_t i = 0; i < count; ++i) {
    const auto client =
        ep(2, Ipv4Address(static_cast<std::uint32_t>(
               0x0A001000 + rng.below(static_cast<std::uint32_t>(hosts)))),
           static_cast<std::uint16_t>(1024 + rng.below(5000)));
    auto builder = PacketBuilder(
        Timestamp::from_nanos(static_cast<std::int64_t>(i) * 1000));
    out.push_back(rng.chance(0.5)
                      ? builder.udp(client, server).payload_size(64).build()
                      : builder.udp(server, client).payload_size(200).build());
  }
  return out;
}

TEST(ShardedCaptureEngine, ConcurrentLosslessAccounting) {
  ShardedCaptureConfig cfg;
  cfg.shards = 4;
  cfg.ring_capacity = 1 << 10;
  ShardedCaptureEngine engine(cfg);
  ASSERT_EQ(engine.shards(), 4u);

  std::vector<std::uint64_t> per_shard_seen(4, 0);
  engine.add_sink_factory([&](std::size_t shard) {
    return [&per_shard_seen, shard](const TaggedPacket&) {
      ++per_shard_seen[shard];  // worker-local: only shard's thread
    };
  });

  const auto traffic = make_traffic(200'000, 64, 0xBEEF);
  engine.start();
  for (const auto& pkt : traffic)
    engine.offer(pkt, Direction::kInbound);
  engine.stop();  // drain-on-shutdown

  const auto merged = engine.stats();
  EXPECT_EQ(merged.offered, traffic.size());
  EXPECT_EQ(merged.offered, merged.accepted + merged.dropped);
  EXPECT_EQ(merged.accepted, merged.consumed);  // nothing stuck in rings

  // Merged stats are exactly the sum of the shard stats, and each
  // shard balances independently (drops attributable per shard).
  CaptureStats sum;
  for (std::size_t s = 0; s < engine.shards(); ++s) {
    const auto shard = engine.shard_stats(s);
    EXPECT_EQ(shard.offered, shard.accepted + shard.dropped);
    EXPECT_EQ(shard.accepted, shard.consumed);
    EXPECT_EQ(shard.consumed, per_shard_seen[s]);
    EXPECT_EQ(engine.ring_occupancy(s), 0u);
    sum += shard;
  }
  EXPECT_EQ(sum.offered, merged.offered);
  EXPECT_EQ(sum.accepted, merged.accepted);
  EXPECT_EQ(sum.dropped, merged.dropped);
  EXPECT_EQ(sum.consumed, merged.consumed);
  EXPECT_EQ(sum.offered_bytes, merged.offered_bytes);
  EXPECT_EQ(sum.dropped_bytes, merged.dropped_bytes);

  // With 64 hosts and 4 shards the spreader must actually spread.
  std::size_t busy_shards = 0;
  for (std::size_t s = 0; s < engine.shards(); ++s)
    if (engine.shard_stats(s).offered > 0) ++busy_shards;
  EXPECT_GE(busy_shards, 2u);
}

TEST(ShardedCaptureEngine, SameConversationSameShard) {
  ShardedCaptureConfig cfg;
  cfg.shards = 8;
  ShardedCaptureEngine engine(cfg);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto a = ep(1, Ipv4Address(static_cast<std::uint32_t>(
                           0x0A000000 + rng.below(4096))),
                      static_cast<std::uint16_t>(1024 + rng.below(60000)));
    const auto b = ep(2, Ipv4Address(static_cast<std::uint32_t>(
                           0x08080000 + rng.below(256))),
                      static_cast<std::uint16_t>(rng.chance(0.5) ? 53 : 443));
    const auto ts = Timestamp::from_nanos(i);
    const auto fwd = PacketBuilder(ts).udp(a, b).payload_size(64).build();
    const auto rev = PacketBuilder(ts).udp(b, a).payload_size(64).build();
    EXPECT_EQ(engine.shard_of(fwd), engine.shard_of(rev));
    EXPECT_LT(engine.shard_of(fwd), engine.shards());
    // Deterministic: the spreader is a pure function of the tuple.
    EXPECT_EQ(engine.shard_of(fwd), engine.shard_of(fwd));
  }
}

TEST(ShardedCaptureEngine, NonIpFramesSpreadAcrossShards) {
  // Regression for the shard-0 hot spot: frames with no IPv4 tuple
  // (malformed, truncated, non-IP ethertypes) used to all land on
  // shard 0, so a junk flood serialized behind one worker. They now
  // get a cheap byte hash and must spread.
  ShardedCaptureConfig cfg;
  cfg.shards = 8;
  ShardedCaptureEngine engine(cfg);
  Rng rng(42);
  std::vector<std::size_t> hits(cfg.shards, 0);
  for (int i = 0; i < 2000; ++i) {
    packet::Packet junk;
    junk.ts = Timestamp::from_nanos(i);
    junk.resize(14 + rng.below(128));  // too short / garbage headers
    for (auto& b : junk.mutable_bytes())
      b = static_cast<std::uint8_t>(rng.below(256));
    const auto shard = engine.shard_of(junk);
    ASSERT_LT(shard, engine.shards());
    // Deterministic: same bytes -> same shard, every time.
    EXPECT_EQ(engine.shard_of(junk), shard);
    hits[shard]++;
  }
  std::size_t busy = 0;
  for (const auto h : hits) busy += h > 0 ? 1 : 0;
  EXPECT_GE(busy, 6u) << "junk frames still hot-spotting";
  // No shard may swallow the majority of the junk.
  for (const auto h : hits) EXPECT_LT(h, 2000u / 2);
}

TEST(ShardedCaptureEngine, SpreaderOutputPinned) {
  // Pin the spreader's exact outputs. The FNV fold moved to
  // util/hash.h (kFnvCompatBasis + whole-word fnv1a_step); these
  // values are the pre-dedup historical spreads, and a change here
  // means every deployed shard->worker assignment silently moved.
  ShardedCaptureConfig cfg;
  cfg.shards = 8;
  ShardedCaptureEngine engine(cfg);

  const auto tuple_pkt = [&](std::uint32_t src, std::uint32_t dst,
                             std::uint16_t sport, std::uint16_t dport) {
    return PacketBuilder(Timestamp::from_nanos(1))
        .udp(ep(1, Ipv4Address(src), sport), ep(2, Ipv4Address(dst), dport))
        .payload_size(32)
        .build();
  };
  EXPECT_EQ(engine.shard_of(tuple_pkt(0x0A000001, 0x08080808, 4242, 53)),
            0u);
  EXPECT_EQ(engine.shard_of(tuple_pkt(0x0A000002, 0x08080808, 4242, 53)),
            1u);
  EXPECT_EQ(engine.shard_of(tuple_pkt(0x0A000001, 0x08080404, 9999, 443)),
            5u);
  EXPECT_EQ(engine.shard_of(tuple_pkt(0xC0A80101, 0x0A000001, 1, 2)), 5u);

  // Tuple-less frames take the byte-hash path under the same basis.
  packet::Packet junk;
  junk.ts = Timestamp::from_nanos(2);
  junk.resize(32);
  for (std::size_t i = 0; i < 32; ++i)
    junk.mutable_bytes()[i] = static_cast<std::uint8_t>(i * 7 + 3);
  EXPECT_EQ(engine.shard_of(junk), 1u);
}

TEST(ShardedCaptureEngine, DropsAttributedToTheFullShard) {
  ShardedCaptureConfig cfg;
  cfg.shards = 4;
  cfg.ring_capacity = 2;
  ShardedCaptureEngine engine(cfg);  // no workers: rings fill up

  // One conversation -> exactly one shard fills and drops.
  const auto pkt = PacketBuilder(Timestamp::from_nanos(1))
                       .udp(ep(1, Ipv4Address(10, 0, 16, 9), 4242),
                            ep(2, Ipv4Address(8, 8, 8, 8), 53))
                       .payload_size(64)
                       .build();
  const auto victim = engine.shard_of(pkt);
  for (int i = 0; i < 10; ++i) engine.offer(pkt, Direction::kOutbound);

  for (std::size_t s = 0; s < engine.shards(); ++s) {
    const auto stats = engine.shard_stats(s);
    if (s == victim) {
      EXPECT_EQ(stats.offered, 10u);
      EXPECT_EQ(stats.accepted, 2u);  // ring capacity
      EXPECT_EQ(stats.dropped, 8u);
    } else {
      EXPECT_EQ(stats.offered, 0u);
      EXPECT_EQ(stats.dropped, 0u);
    }
  }
  EXPECT_EQ(engine.stats().dropped, 8u);
  EXPECT_EQ(engine.drain(), 2u);
  EXPECT_EQ(engine.stats().consumed, 2u);
}

// The full pipeline: workers meter flows shard-locally, evictions go
// through the ShardedFlowIngester, and the ordered merge lands every
// flow in the DataStore — with identical store content across runs.
TEST(ShardedCapturePipeline, FlowsReachStoreDeterministically) {
  const auto traffic = make_traffic(60'000, 48, 0xCAFE);

  auto run_once = [&](std::size_t shards) {
    ShardedCaptureConfig cfg;
    cfg.shards = shards;
    cfg.ring_capacity = 1 << 12;
    ShardedCaptureEngine engine(cfg);
    features::ShardedFlowCollector flows(shards);
    store::ShardedFlowIngester ingester(shards);
    for (std::size_t s = 0; s < shards; ++s)
      flows.meter(s).set_sink([&ingester, s](const FlowRecord& r) {
        ingester.ingest(s, r);
      });
    engine.add_sink_factory([&](std::size_t s) {
      return [&flows, s](const TaggedPacket& t) {
        flows.meter(s).offer(t.pkt, t.dir);
      };
    });

    engine.start();
    for (const auto& pkt : traffic) {
      // Retry on ring-full: this test is about flow conservation, so
      // every packet must get through.
      while (!engine.offer(pkt, Direction::kInbound)) std::this_thread::yield();
    }
    engine.stop();
    // Workers are quiesced: flush the residual flow tables.
    for (std::size_t s = 0; s < shards; ++s) flows.meter(s).flush();

    store::DataStore store;
    const auto ingested = ingester.merge_into(store);
    EXPECT_EQ(ingester.pending(), 0u);
    EXPECT_EQ(ingester.merged_total(), ingested);

    // Conservation: every consumed IPv4 packet sits in exactly one
    // stored flow.
    const auto meter_stats = flows.merged_meter_stats();
    EXPECT_EQ(meter_stats.packets_seen, engine.stats().consumed);
    std::uint64_t stored_packets = 0;
    std::vector<std::pair<std::string, std::uint64_t>> signature;
    store.for_each([&](const store::StoredFlow& f) {
      stored_packets += f.flow.packets;
      signature.emplace_back(f.flow.tuple.to_string(), f.flow.packets);
    });
    EXPECT_EQ(stored_packets,
              meter_stats.packets_seen - meter_stats.non_ip_packets);
    EXPECT_EQ(store.size(), ingested);
    return signature;
  };

  const auto first = run_once(4);
  const auto second = run_once(4);
  // Same trace, same shard count -> byte-identical store order, no
  // matter how the workers were scheduled.
  EXPECT_EQ(first, second);
  EXPECT_GT(first.size(), 40u);
}

}  // namespace
}  // namespace campuslab::capture

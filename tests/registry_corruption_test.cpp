// ModelRegistry corruption suite: the CLMRG01 decoder must be total.
//
// A truncated, bit-flipped, zeroed, saturated, garbage-extended, or
// checksum-resealed-but-structurally-wrong registry file yields a clean
// util::Result error with a stable code — never a crash, an
// out-of-bounds read (the ASAN CI job runs this binary), or an
// allocation bomb — and ModelRegistry::open over any such file degrades
// to an empty start instead of refusing to boot. Reuses the
// segment_corruption_test seeded-mutation pattern: every failure
// replays from (seed, iteration).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "campuslab/control/model_registry.h"
#include "campuslab/util/rng.h"

namespace campuslab::control {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHeaderBytes = 32;

constexpr const char* kTreeText =
    "campuslab-tree v1\n"
    "2 2 3\n"
    "udp_fraction\n"
    "pkt_len\n"
    "benign\n"
    "attack\n"
    "0 3.5 1 2 100 0.5 0.5\n"
    "-1 0 -1 -1 75 0.75 0.25\n"
    "-1 0 -1 -1 25 0.125 0.875\n";

RegistryEntry sample_entry(Rng& rng, std::uint32_t version) {
  RegistryEntry entry;
  entry.version = version;
  entry.trained_at = Timestamp::from_nanos(
      static_cast<std::int64_t>(rng.below(1'000'000'000'000ull)));
  entry.candidate_accuracy =
      static_cast<double>(rng.below(1'000'000)) * 1e-6;
  entry.incumbent_accuracy =
      static_cast<double>(rng.below(1'000'000)) * 1e-6;
  entry.package.task = AutomationTask::dns_amplification_drop();
  entry.package.task.rate_limit_pps =
      static_cast<double>(1 + rng.below(10'000));
  auto tree = ml::DecisionTree::deserialize(kTreeText);
  EXPECT_TRUE(tree.ok());
  entry.package.student = std::move(tree).value();
  entry.package.quantizer = dataplane::Quantizer::from_levels(
      {static_cast<double>(rng.below(100)), -1.5},
      {0.25, static_cast<double>(1 + rng.below(8))});
  entry.package.strategy = rng.chance(0.5) ? "rule_tcam" : "tree_walk";
  entry.package.resources.stages_used = static_cast<int>(rng.below(12));
  entry.package.resources.tcam_entries = rng.below(4096);
  entry.package.resources.sram_bits = rng.below(1 << 20);
  entry.package.resources.register_arrays_used =
      static_cast<int>(rng.below(8));
  return entry;
}

std::vector<std::uint8_t> valid_file(Rng& rng, std::size_t entries) {
  RegistryFile file;
  for (std::size_t i = 0; i < entries; ++i)
    file.entries.push_back(
        sample_entry(rng, static_cast<std::uint32_t>(i + 1)));
  if (entries > 0)
    file.active_version =
        static_cast<std::uint32_t>(1 + rng.below(entries));
  return encode_registry(file);
}

bool known_code(const std::string& code) {
  return code == "registry_magic" || code == "registry_version" ||
         code == "registry_truncated" || code == "registry_checksum" ||
         code == "registry_corrupt" || code == "registry_io";
}

// One random structural mutation, in place.
void mutate(Rng& rng, std::vector<std::uint8_t>& file) {
  switch (rng.below(6)) {
    case 0:  // truncate anywhere, including to zero
      file.resize(rng.below(file.size() + 1));
      break;
    case 1: {  // flip 1-8 random bytes
      if (file.empty()) break;
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t i = 0; i < flips; ++i)
        file[rng.below(file.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      break;
    }
    case 2: {  // zero a random region (wipes counts/lengths)
      if (file.empty()) break;
      const std::size_t begin = rng.below(file.size());
      const std::size_t len = rng.below(file.size() - begin + 1);
      for (std::size_t i = begin; i < begin + len; ++i) file[i] = 0;
      break;
    }
    case 3: {  // saturate a random region (maxes the same fields)
      if (file.empty()) break;
      const std::size_t begin = rng.below(file.size());
      const std::size_t len = rng.below(file.size() - begin + 1);
      for (std::size_t i = begin; i < begin + len; ++i) file[i] = 0xFF;
      break;
    }
    case 4: {  // append garbage
      const std::size_t extra = 1 + rng.below(64);
      for (std::size_t i = 0; i < extra; ++i)
        file.push_back(static_cast<std::uint8_t>(rng.below(256)));
      break;
    }
    default: {  // replace the whole tail with noise
      if (file.empty()) break;
      const std::size_t begin = rng.below(file.size());
      for (std::size_t i = begin; i < file.size(); ++i)
        file[i] = static_cast<std::uint8_t>(rng.below(256));
      break;
    }
  }
}

// FNV-1a 64, the file's checksum function — the test-side copy lets the
// suite craft files whose checksums are *valid* but whose payload is
// structurally wrong, reaching the validators behind the checksum gate.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u64_be(std::vector<std::uint8_t>& buf, std::size_t at,
                std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

// Recompute both checksums after a deliberate payload tamper.
// Header: 8 magic + 1 ver + 1 flags + 2 reserved + 4 len | fnv64(payload)
// at 16 | fnv64(header[0..24)) at 24.
void reseal(std::vector<std::uint8_t>& file) {
  put_u64_be(file, 16,
             fnv1a(file.data() + kHeaderBytes, file.size() - kHeaderBytes));
  put_u64_be(file, 24, fnv1a(file.data(), kHeaderBytes - 8));
}

// ----------------------------------------------------------- the suite

TEST(RegistryCorruption, StableErrorCodes) {
  Rng rng(11);
  const auto base = valid_file(rng, 5);
  ASSERT_TRUE(decode_registry(base).ok());

  auto bad = base;
  bad[0] ^= 0xFF;
  EXPECT_EQ(decode_registry(bad).error().code, "registry_magic");

  bad = base;
  bad[8] = 0x7F;  // future format version (checked before the checksum)
  EXPECT_EQ(decode_registry(bad).error().code, "registry_version");

  bad = base;
  bad.resize(kHeaderBytes - 1);  // shorter than the header
  EXPECT_EQ(decode_registry(bad).error().code, "registry_truncated");

  bad = base;
  bad.pop_back();  // payload length disagrees with file size
  EXPECT_EQ(decode_registry(bad).error().code, "registry_truncated");

  bad = base;
  bad[10] ^= 0x01;  // reserved header byte: header checksum catches it
  EXPECT_EQ(decode_registry(bad).error().code, "registry_checksum");

  bad = base;
  bad[kHeaderBytes + 3] ^= 0x01;  // payload byte
  EXPECT_EQ(decode_registry(bad).error().code, "registry_checksum");

  // Valid checksums, structurally wrong payload: version order breaks.
  bad = base;
  bad[kHeaderBytes] = 0xFF;  // entry-count varint becomes huge
  reseal(bad);
  auto resealed = decode_registry(bad);
  ASSERT_FALSE(resealed.ok());
  EXPECT_EQ(resealed.error().code, "registry_corrupt");

  EXPECT_EQ(read_registry_file("/nonexistent/campuslab.clmr").error().code,
            "registry_io");
}

// Every prefix of a valid file, byte by byte: errors all the way up,
// no crash, no over-read.
TEST(RegistryCorruption, TruncationLadder) {
  Rng rng(22);
  const auto base = valid_file(rng, 3);
  for (std::size_t len = 0; len < base.size(); ++len) {
    std::vector<std::uint8_t> cut(
        base.begin(), base.begin() + static_cast<std::ptrdiff_t>(len));
    auto r = decode_registry(cut);
    ASSERT_FALSE(r.ok()) << "decoded a " << len << "-byte prefix of a "
                         << base.size() << "-byte file";
    ASSERT_TRUE(known_code(r.error().code)) << r.error().code;
  }
}

// Seeded mutation storm: any mutation either still decodes (mutations
// can cancel) or fails with a stable code. ASAN is the other half of
// this test.
TEST(RegistryCorruption, SeededMutationStorm) {
  Rng rng(33);
  for (int round = 0; round < 400; ++round) {
    auto file = valid_file(rng, 1 + rng.below(6));
    const std::size_t mutations = 1 + rng.below(3);
    for (std::size_t m = 0; m < mutations; ++m) mutate(rng, file);
    auto r = decode_registry(file);
    if (!r.ok()) {
      ASSERT_TRUE(known_code(r.error().code))
          << "round " << round << ": unstable code " << r.error().code;
    }
  }
}

// Mutations behind resealed checksums: drives the structural validators
// (bounds, enum ranges, monotonic versions, exact consumption) rather
// than the checksum gate.
TEST(RegistryCorruption, ResealedMutationStorm) {
  Rng rng(44);
  for (int round = 0; round < 400; ++round) {
    auto file = valid_file(rng, 1 + rng.below(4));
    const std::size_t begin =
        kHeaderBytes + rng.below(file.size() - kHeaderBytes);
    const std::size_t flips = 1 + rng.below(6);
    for (std::size_t i = 0; i < flips; ++i)
      file[begin + rng.below(file.size() - begin)] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    reseal(file);
    auto r = decode_registry(file);
    if (!r.ok()) {
      ASSERT_TRUE(r.error().code == "registry_corrupt")
          << "round " << round << ": resealed file failed with "
          << r.error().code << " (" << r.error().message << ")";
    }
  }
}

// ModelRegistry::open over arbitrarily mutated files: never a crash,
// never a failed open — corrupt registries degrade to an empty start.
TEST(RegistryCorruption, OpenDegradesToEmptyStartNotCrash) {
  Rng rng(55);
  const auto dir =
      fs::path(::testing::TempDir()) / "campuslab_registry_storm";
  for (int round = 0; round < 60; ++round) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    auto file = valid_file(rng, 1 + rng.below(4));
    const std::size_t mutations = 1 + rng.below(3);
    for (std::size_t m = 0; m < mutations; ++m) mutate(rng, file);
    {
      std::ofstream out(dir / "registry.clmr",
                        std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(file.data()),
                static_cast<std::streamsize>(file.size()));
    }
    auto reg = ModelRegistry::open(dir.string());
    ASSERT_TRUE(reg.ok()) << "round " << round << ": open failed: "
                          << reg.error().message;
    if (reg.value().recovered_from_corruption()) {
      EXPECT_TRUE(reg.value().entries().empty());
      EXPECT_EQ(reg.value().active_version(), 0u);
    }
    // Whatever happened, the registry must be immediately usable.
    RegistryEntry next;
    next.version = reg.value().next_version();
    next.trained_at = Timestamp::from_nanos(round);
    next.package = sample_entry(rng, next.version).package;
    ASSERT_TRUE(reg.value().publish(next, "post-recovery").ok());
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace campuslab::control

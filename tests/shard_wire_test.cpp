// CLRP01 wire-protocol suite: every StoreShard message round-trips
// bit-exactly through its codec, the frame layer rejects each class of
// damage with its stable error code, the incremental FrameAssembler
// reproduces frames from arbitrary byte-stream choppings, and the
// committed golden fixture tests/data/golden_shard_rpc_v2.bin pins the
// v2 byte format (regenerate with CAMPUSLAB_UPDATE_GOLDEN=1 after an
// intentional format change, and bump wire::kVersion).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "campuslab/store/wire.h"
#include "campuslab/util/hash.h"
#include "campuslab/util/rng.h"

namespace campuslab::store::wire {
namespace {

using capture::FlowRecord;
using packet::Ipv4Address;
using packet::TrafficLabel;

constexpr std::size_t kNoLimit = std::numeric_limits<std::size_t>::max();

FlowRecord sample_flow(Rng& rng) {
  FlowRecord f;
  f.tuple = packet::FiveTuple{
      Ipv4Address(static_cast<std::uint32_t>(0x0A000000 + rng.below(1024))),
      Ipv4Address(static_cast<std::uint32_t>(0xC0000200 + rng.below(64))),
      static_cast<std::uint16_t>(rng.below(65536)),
      static_cast<std::uint16_t>(rng.below(65536)),
      static_cast<std::uint8_t>(rng.chance(0.3) ? 17 : 6)};
  f.initial_direction =
      rng.chance(0.5) ? sim::Direction::kInbound : sim::Direction::kOutbound;
  f.first_ts = Timestamp::from_nanos(
      static_cast<std::int64_t>(rng.below(1'000'000'000'000ull)));
  f.last_ts = f.first_ts + Duration::nanos(
                  static_cast<std::int64_t>(rng.below(60'000'000'000ull)));
  f.packets = rng.below(100'000);
  f.bytes = rng.below(100'000'000);
  f.payload_bytes = rng.below(1'000'000);
  f.fwd_packets = rng.below(50'000);
  f.rev_packets = rng.below(50'000);
  f.syn_count = static_cast<std::uint32_t>(rng.below(8));
  f.synack_count = static_cast<std::uint32_t>(rng.below(8));
  f.fin_count = static_cast<std::uint32_t>(rng.below(4));
  f.rst_count = static_cast<std::uint32_t>(rng.below(4));
  f.psh_count = static_cast<std::uint32_t>(rng.below(64));
  f.saw_dns = rng.chance(0.2);
  f.label_packets[rng.below(packet::kTrafficLabelCount)] = 1 + rng.below(999);
  if (rng.chance(0.3))
    f.label_packets[rng.below(packet::kTrafficLabelCount)] += rng.below(100);
  return f;
}

void expect_flow_equal(const FlowRecord& a, const FlowRecord& b,
                       const char* what) {
  EXPECT_EQ(a.tuple.src, b.tuple.src) << what;
  EXPECT_EQ(a.tuple.dst, b.tuple.dst) << what;
  EXPECT_EQ(a.tuple.src_port, b.tuple.src_port) << what;
  EXPECT_EQ(a.tuple.dst_port, b.tuple.dst_port) << what;
  EXPECT_EQ(a.tuple.proto, b.tuple.proto) << what;
  EXPECT_EQ(a.initial_direction, b.initial_direction) << what;
  EXPECT_EQ(a.first_ts.nanos(), b.first_ts.nanos()) << what;
  EXPECT_EQ(a.last_ts.nanos(), b.last_ts.nanos()) << what;
  EXPECT_EQ(a.packets, b.packets) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.payload_bytes, b.payload_bytes) << what;
  EXPECT_EQ(a.fwd_packets, b.fwd_packets) << what;
  EXPECT_EQ(a.rev_packets, b.rev_packets) << what;
  EXPECT_EQ(a.syn_count, b.syn_count) << what;
  EXPECT_EQ(a.synack_count, b.synack_count) << what;
  EXPECT_EQ(a.fin_count, b.fin_count) << what;
  EXPECT_EQ(a.rst_count, b.rst_count) << what;
  EXPECT_EQ(a.psh_count, b.psh_count) << what;
  EXPECT_EQ(a.saw_dns, b.saw_dns) << what;
  EXPECT_EQ(a.label_packets, b.label_packets) << what;
}

void expect_rows_equal(const std::vector<StoredFlow>& a,
                       const std::vector<StoredFlow>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << what << " row " << i;
    expect_flow_equal(a[i].flow, b[i].flow, what);
  }
}

void expect_stats_equal(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.segments_pinned, b.segments_pinned);
  EXPECT_EQ(a.segments_scanned, b.segments_scanned);
  EXPECT_EQ(a.index_hits, b.index_hits);
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.cold_loaded, b.cold_loaded);
  EXPECT_EQ(a.cold_pruned, b.cold_pruned);
  EXPECT_EQ(a.cold_load_failures, b.cold_load_failures);
}

void expect_query_equal(const FlowQuery& a, const FlowQuery& b) {
  EXPECT_EQ(a.from.has_value(), b.from.has_value());
  if (a.from && b.from) EXPECT_EQ(a.from->nanos(), b.from->nanos());
  EXPECT_EQ(a.to.has_value(), b.to.has_value());
  if (a.to && b.to) EXPECT_EQ(a.to->nanos(), b.to->nanos());
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.host, b.host);
  EXPECT_EQ(a.port, b.port);
  EXPECT_EQ(a.proto, b.proto);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.dns_only, b.dns_only);
  EXPECT_EQ(a.direction, b.direction);
  EXPECT_EQ(a.min_bytes, b.min_bytes);
  EXPECT_EQ(a.limit, b.limit);
}

// --------------------------------------------------- message round-trips

TEST(WireRoundTrip, EmptyIngestBatch) {
  const ShardIngestBatch batch;
  const auto decoded = decode_ingest(encode_ingest(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_TRUE(decoded.value().rows.empty());
}

TEST(WireRoundTrip, RandomIngestBatches) {
  Rng rng(0xC1E901);
  for (const std::size_t n : {1u, 2u, 17u, 256u}) {
    ShardIngestBatch batch;
    std::uint64_t id = 1 + rng.below(1000);
    for (std::size_t i = 0; i < n; ++i) {
      batch.rows.push_back(StoredFlow{id, sample_flow(rng)});
      id += 1 + rng.below(5);
    }
    const auto decoded = decode_ingest(encode_ingest(batch));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    expect_rows_equal(batch.rows, decoded.value().rows, "ingest");
  }
}

TEST(WireRoundTrip, MaxSizeChunkSurvives) {
  // A cursor_chunk-scale pull (4096 rows, the cluster default) — the
  // realistic "max-size chunk" a socket peer streams.
  Rng rng(0xC1E902);
  ShardQueryRows rows;
  for (std::size_t i = 0; i < 4096; ++i)
    rows.rows.push_back(StoredFlow{i + 1, sample_flow(rng)});
  rows.exhausted = false;
  rows.stats.index = IndexKind::kHost;
  rows.stats.rows_scanned = 4096;
  const auto body = encode_query_rows(rows);
  ASSERT_LT(body.size(), kDefaultMaxBody);
  const auto decoded = decode_query_rows(body);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  expect_rows_equal(rows.rows, decoded.value().rows, "chunk");
  EXPECT_FALSE(decoded.value().exhausted);
  expect_stats_equal(rows.stats, decoded.value().stats);
}

TEST(WireRoundTrip, ExtremeTimestampsAndCounters) {
  // Timestamp deltas are computed through unsigned space, so the
  // extremes of the i64 range must round-trip without overflow UB.
  ShardIngestBatch batch;
  const std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Rng rng(0xC1E903);
  auto extreme = [&](std::int64_t first, std::int64_t last) {
    FlowRecord f = sample_flow(rng);
    f.first_ts = Timestamp::from_nanos(first);
    f.last_ts = Timestamp::from_nanos(last);
    f.packets = std::numeric_limits<std::uint64_t>::max();
    f.bytes = std::numeric_limits<std::uint64_t>::max();
    f.syn_count = std::numeric_limits<std::uint32_t>::max();
    return f;
  };
  batch.rows.push_back(StoredFlow{1, extreme(kMin, kMax)});
  batch.rows.push_back(StoredFlow{2, extreme(kMax, kMin)});
  batch.rows.push_back(StoredFlow{std::numeric_limits<std::uint64_t>::max(),
                                  extreme(0, 0)});
  const auto decoded = decode_ingest(encode_ingest(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  expect_rows_equal(batch.rows, decoded.value().rows, "extremes");
}

TEST(WireRoundTrip, IngestAck) {
  for (const std::uint64_t applied :
       {std::uint64_t{0}, std::uint64_t{1},
        std::numeric_limits<std::uint64_t>::max()}) {
    const auto decoded = decode_ingest_ack(encode_ingest_ack({applied}));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().applied, applied);
  }
}

TEST(WireRoundTrip, LogEvents) {
  LogEvent ev;
  ev.ts = Timestamp::from_nanos(-123456789);
  ev.source = "firewall";
  ev.severity = -3;
  ev.subject = Ipv4Address(10, 1, 0, 7);
  ev.message = "deny tcp 10.1.0.7:4444 -> 151.101.1.1:443";
  auto decoded = decode_log_event(encode_log_event(ev));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().ts.nanos(), ev.ts.nanos());
  EXPECT_EQ(decoded.value().source, ev.source);
  EXPECT_EQ(decoded.value().severity, ev.severity);
  EXPECT_EQ(decoded.value().subject, ev.subject);
  EXPECT_EQ(decoded.value().message, ev.message);

  // Empty strings and an empty reply vector are valid messages.
  const auto empty = decode_log_event(encode_log_event(LogEvent{}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().source.empty());
  const auto none = decode_log_reply(encode_log_reply({}));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());

  const auto many = decode_log_reply(encode_log_reply({ev, LogEvent{}, ev}));
  ASSERT_TRUE(many.ok());
  ASSERT_EQ(many.value().size(), 3u);
  EXPECT_EQ(many.value()[0].message, ev.message);
  EXPECT_EQ(many.value()[2].source, ev.source);
}

TEST(WireRoundTrip, EveryFlowQueryFilterCombination) {
  // 11 optional predicates = 2048 presence combinations; encode/decode
  // each one. This is the combo sweep the issue asks for — any bitmap
  // mixup between encoder and decoder desyncs some combination.
  for (std::uint32_t bits = 0; bits < (1u << 11); ++bits) {
    FlowQuery q;
    if (bits & (1u << 0)) q.from = Timestamp::from_seconds(100);
    if (bits & (1u << 1)) q.to = Timestamp::from_seconds(900);
    if (bits & (1u << 2)) q.src = Ipv4Address(10, 1, 2, 3);
    if (bits & (1u << 3)) q.dst = Ipv4Address(151, 101, 1, 1);
    if (bits & (1u << 4)) q.host = Ipv4Address(10, 0, 0, 1);
    if (bits & (1u << 5)) q.port = 443;
    if (bits & (1u << 6)) q.proto = 17;
    if (bits & (1u << 7)) q.label = TrafficLabel::kPortScan;
    if (bits & (1u << 8)) q.dns_only = (bits & 1) != 0;
    if (bits & (1u << 9)) q.direction = sim::Direction::kOutbound;
    if (bits & (1u << 10)) q.limit = 57;
    q.min_bytes = bits;  // always present, varies per combo

    ShardQueryPlan plan;
    plan.query = q;
    plan.after_id = bits * 3;
    plan.max_rows = (bits % 2) ? 4096 : kNoLimit;
    const auto decoded = decode_query_plan(encode_query_plan(plan));
    ASSERT_TRUE(decoded.ok())
        << "combo " << bits << ": " << decoded.error().message;
    expect_query_equal(q, decoded.value().query);
    EXPECT_EQ(decoded.value().after_id, plan.after_id);
    EXPECT_EQ(decoded.value().max_rows, plan.max_rows);
  }
}

TEST(WireRoundTrip, AggregatePlansAndResults) {
  for (const GroupBy by : {GroupBy::kHost, GroupBy::kPort, GroupBy::kLabel}) {
    AggregatePlan plan;
    plan.query.on_port(443).at_least_bytes(1000);
    plan.group_by = by;
    plan.top_k = 5;
    const auto dp = decode_aggregate_plan(encode_aggregate_plan(plan));
    ASSERT_TRUE(dp.ok()) << dp.error().message;
    EXPECT_EQ(dp.value().group_by, by);
    EXPECT_EQ(dp.value().top_k, 5u);
    expect_query_equal(plan.query, dp.value().query);

    AggregateResult r;
    r.group_by = by;
    r.matched_flows = 12345;
    r.rows = {{0x0A010203, 10, 1000, 64000}, {443, 7, 900, 1}};
    r.stats.index = IndexKind::kPort;
    r.stats.threads = 8;
    const auto dr = decode_aggregate_result(encode_aggregate_result(r));
    ASSERT_TRUE(dr.ok()) << dr.error().message;
    EXPECT_EQ(dr.value().group_by, by);
    EXPECT_EQ(dr.value().matched_flows, r.matched_flows);
    ASSERT_EQ(dr.value().rows.size(), 2u);
    EXPECT_EQ(dr.value().rows[0].key, r.rows[0].key);
    EXPECT_EQ(dr.value().rows[1].bytes, r.rows[1].bytes);
    expect_stats_equal(r.stats, dr.value().stats);
  }
}

TEST(WireRoundTrip, LogQueryCombinations) {
  for (std::uint32_t bits = 0; bits < (1u << 5); ++bits) {
    LogQuery q;
    if (bits & (1u << 0)) q.from = Timestamp::from_seconds(10);
    if (bits & (1u << 1)) q.to = Timestamp::from_seconds(20);
    if (bits & (1u << 2)) q.source = "ids";
    if (bits & (1u << 3)) q.subject = Ipv4Address(10, 9, 8, 7);
    if (bits & (1u << 4)) q.limit = 99;
    q.min_severity = static_cast<int>(bits) - 16;
    const auto decoded = decode_log_query(encode_log_query(q));
    ASSERT_TRUE(decoded.ok())
        << "combo " << bits << ": " << decoded.error().message;
    EXPECT_EQ(decoded.value().source, q.source);
    EXPECT_EQ(decoded.value().subject, q.subject);
    EXPECT_EQ(decoded.value().min_severity, q.min_severity);
    EXPECT_EQ(decoded.value().limit, q.limit);
    EXPECT_EQ(decoded.value().from.has_value(), q.from.has_value());
    EXPECT_EQ(decoded.value().to.has_value(), q.to.has_value());
  }
}

TEST(WireRoundTrip, CatalogAndFlowCount) {
  CatalogInfo info;
  info.total_flows = 123456789;
  info.total_packets = std::numeric_limits<std::uint64_t>::max();
  info.total_bytes = 1ull << 62;
  info.total_log_events = 42;
  info.segments = 17;
  info.cold_segments = 5;
  info.earliest = Timestamp::from_nanos(std::numeric_limits<std::int64_t>::max());
  info.latest = Timestamp::from_nanos(std::numeric_limits<std::int64_t>::min());
  for (std::size_t i = 0; i < info.flows_per_label.size(); ++i)
    info.flows_per_label[i] = i * 1000 + 1;
  info.evicted_by_retention = 7;
  const auto decoded = decode_catalog(encode_catalog(info));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().total_flows, info.total_flows);
  EXPECT_EQ(decoded.value().total_packets, info.total_packets);
  EXPECT_EQ(decoded.value().total_bytes, info.total_bytes);
  EXPECT_EQ(decoded.value().total_log_events, info.total_log_events);
  EXPECT_EQ(decoded.value().segments, info.segments);
  EXPECT_EQ(decoded.value().cold_segments, info.cold_segments);
  EXPECT_EQ(decoded.value().earliest.nanos(), info.earliest.nanos());
  EXPECT_EQ(decoded.value().latest.nanos(), info.latest.nanos());
  EXPECT_EQ(decoded.value().flows_per_label, info.flows_per_label);
  EXPECT_EQ(decoded.value().evicted_by_retention, info.evicted_by_retention);

  const auto count = decode_flow_count(encode_flow_count(987654321));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 987654321u);
}

TEST(WireRoundTrip, ErrorReply) {
  const auto body =
      encode_error(Error::make("node_dead", "node 3 marked dead"));
  Error out;
  ASSERT_TRUE(decode_error(body, out).ok());
  EXPECT_EQ(out.code, "node_dead");
  EXPECT_EQ(out.message, "node 3 marked dead");
}

TEST(WireRoundTrip, DecodersRejectTrailingBytes) {
  auto body = encode_ingest_ack({7});
  body.push_back(0);
  const auto decoded = decode_ingest_ack(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "wire_corrupt");
}

TEST(WireRoundTrip, DecodersRejectEmptyBodiesWhereInvalid) {
  const std::vector<std::uint8_t> empty;
  EXPECT_FALSE(decode_ingest_ack(empty).ok());
  EXPECT_FALSE(decode_log_event(empty).ok());
  EXPECT_FALSE(decode_query_plan(empty).ok());
  EXPECT_FALSE(decode_catalog(empty).ok());
  EXPECT_FALSE(decode_flow_count(empty).ok());
  Error out;
  EXPECT_FALSE(decode_error(empty, out).ok());
}

// ------------------------------------------------------- frame layer

// Patch helpers: mutate header bytes, then restore the header checksum
// so the mutation is seen by its own check, not the checksum's.
void store_u64_be(std::vector<std::uint8_t>& buf, std::size_t at,
                  std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

void fix_header_checksum(std::vector<std::uint8_t>& frame) {
  store_u64_be(frame, 32,
               util::fnv1a(std::span<const std::uint8_t>(frame).subspan(0, 32)));
}

std::vector<std::uint8_t> ping_frame() {
  return encode_frame(MsgType::kPing, 3, 42, {});
}

TEST(WireFrame, HeaderRoundTrips) {
  const auto body = encode_flow_count(9);
  const auto frame = encode_frame(MsgType::kFlowCountReply, 7, 1234, body);
  ASSERT_EQ(frame.size(), kHeaderSize + body.size());
  const auto header = parse_frame_header(frame);
  ASSERT_TRUE(header.ok()) << header.error().message;
  EXPECT_EQ(header.value().type, MsgType::kFlowCountReply);
  EXPECT_EQ(header.value().shard, 7u);
  EXPECT_EQ(header.value().request_id, 1234u);
  EXPECT_EQ(header.value().body_len, body.size());
  EXPECT_TRUE(verify_body(header.value(),
                          std::span<const std::uint8_t>(frame).subspan(
                              kHeaderSize))
                  .ok());
}

TEST(WireFrame, RejectsBadMagic) {
  auto frame = ping_frame();
  frame[0] ^= 0xFF;
  EXPECT_EQ(parse_frame_header(frame).error().code, "wire_magic");
}

TEST(WireFrame, RejectsUnknownVersion) {
  auto frame = ping_frame();
  frame[4] = 9;
  fix_header_checksum(frame);
  EXPECT_EQ(parse_frame_header(frame).error().code, "wire_version");
}

TEST(WireFrame, RejectsNonzeroFlags) {
  auto frame = ping_frame();
  frame[6] = 0x80;
  fix_header_checksum(frame);
  EXPECT_EQ(parse_frame_header(frame).error().code, "wire_flags");
}

TEST(WireFrame, RejectsUnknownType) {
  auto frame = ping_frame();
  frame[5] = 99;  // not a v1 MsgType
  fix_header_checksum(frame);
  EXPECT_EQ(parse_frame_header(frame).error().code, "wire_type");
}

TEST(WireFrame, RejectsOversizedBodyBeforeAllocation) {
  auto frame = ping_frame();
  frame[20] = 0x7F;  // body_len ~= 2 GiB
  fix_header_checksum(frame);
  EXPECT_EQ(parse_frame_header(frame).error().code, "wire_oversize");
  // And an honest length over a smaller per-connection bound.
  const auto small = encode_frame(MsgType::kIngest, 0, 1,
                                  std::vector<std::uint8_t>(100));
  EXPECT_EQ(parse_frame_header(small, 64).error().code, "wire_oversize");
}

TEST(WireFrame, ChecksumDamageWinsOverDerivedErrors) {
  // A corrupted header byte without a checksum fix-up reads as
  // checksum damage — not as a bogus flags/type/length violation.
  auto frame = ping_frame();
  frame[20] = 0x7F;
  EXPECT_EQ(parse_frame_header(frame).error().code, "wire_checksum");
}

TEST(WireFrame, RejectsShortHeaderAndBodyDamage) {
  const auto frame =
      encode_frame(MsgType::kIngestAck, 0, 5, encode_ingest_ack({3}));
  EXPECT_EQ(parse_frame_header(std::span<const std::uint8_t>(frame).subspan(
                                   0, kHeaderSize - 1))
                .error()
                .code,
            "wire_truncated");
  const auto header = parse_frame_header(frame);
  ASSERT_TRUE(header.ok());
  auto body = std::vector<std::uint8_t>(frame.begin() + kHeaderSize,
                                        frame.end());
  body[0] ^= 0x01;
  EXPECT_EQ(verify_body(header.value(), body).error().code, "wire_checksum");
  body.pop_back();
  EXPECT_EQ(verify_body(header.value(), body).error().code, "wire_truncated");
}

// --------------------------------------------------- frame assembler

TEST(WireAssembler, ReassemblesAcrossArbitraryChoppings) {
  Rng rng(0xA55E);
  std::vector<std::uint8_t> stream;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    const auto body = encode_flow_count(i * 1000);
    const auto frame =
        encode_frame(MsgType::kFlowCountReply, 0, i, body);
    stream.insert(stream.end(), frame.begin(), frame.end());
    ids.push_back(i);
  }
  for (int round = 0; round < 20; ++round) {
    FrameAssembler assembler;
    std::vector<std::uint64_t> seen;
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.below(97), stream.size() - at);
      assembler.feed(std::span<const std::uint8_t>(stream).subspan(at, chunk));
      at += chunk;
      while (true) {
        auto next = assembler.next();
        ASSERT_TRUE(next.ok()) << next.error().message;
        if (!next.value().has_value()) break;
        seen.push_back(next.value()->header.request_id);
        const auto count = decode_flow_count(next.value()->body);
        ASSERT_TRUE(count.ok());
        EXPECT_EQ(count.value(), next.value()->header.request_id * 1000);
      }
    }
    EXPECT_EQ(seen, ids);
    EXPECT_EQ(assembler.buffered(), 0u);
  }
}

TEST(WireAssembler, PoisonsPermanentlyOnViolation) {
  auto bad = ping_frame();
  bad[0] ^= 0xFF;
  FrameAssembler assembler;
  assembler.feed(bad);
  auto first = assembler.next();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, "wire_magic");
  // Feeding a perfectly valid frame afterwards cannot revive it: the
  // stream has no recoverable framing.
  assembler.feed(ping_frame());
  auto second = assembler.next();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, "wire_magic");
}

// ------------------------------------------------------ golden fixture

// One deterministic frame per message type, concatenated. Any byte
// change in the committed fixture is a wire-format break: bump
// wire::kVersion and regenerate with CAMPUSLAB_UPDATE_GOLDEN=1.
std::vector<std::uint8_t> golden_stream() {
  std::vector<std::uint8_t> out;
  std::uint64_t request = 1;
  auto add = [&out, &request](MsgType type, std::uint32_t shard,
                              const std::vector<std::uint8_t>& body) {
    const auto frame = encode_frame(type, shard, request++, body);
    out.insert(out.end(), frame.begin(), frame.end());
  };

  ShardIngestBatch batch;
  for (int i = 0; i < 8; ++i) {
    FlowRecord f;
    f.tuple = packet::FiveTuple{
        Ipv4Address(10, 2, 0, static_cast<std::uint8_t>(1 + i % 3)),
        Ipv4Address(192, 0, 2, static_cast<std::uint8_t>(1 + i % 2)),
        static_cast<std::uint16_t>(40'000 + i), i % 4 == 0 ? 53 : 443,
        i % 3 == 0 ? std::uint8_t{17} : std::uint8_t{6}};
    f.initial_direction =
        i % 2 == 0 ? sim::Direction::kInbound : sim::Direction::kOutbound;
    f.first_ts = Timestamp::from_seconds(100 + 10 * i);
    f.last_ts = f.first_ts + Duration::seconds(2);
    f.packets = 10 + static_cast<std::uint64_t>(i);
    f.bytes = 1000 + 17 * static_cast<std::uint64_t>(i);
    f.payload_bytes = 900 + static_cast<std::uint64_t>(i);
    f.fwd_packets = 7;
    f.rev_packets = 3;
    f.syn_count = 1;
    f.psh_count = static_cast<std::uint32_t>(i);
    f.saw_dns = i % 4 == 0;
    f.label_packets[static_cast<std::size_t>(
        i % 5 == 0 ? TrafficLabel::kPortScan : TrafficLabel::kBenign)] =
        f.packets;
    batch.rows.push_back(StoredFlow{static_cast<std::uint64_t>(101 + i), f});
  }
  add(MsgType::kIngest, 0, encode_ingest(batch));
  add(MsgType::kIngestAck, 0, encode_ingest_ack({8}));

  LogEvent ev;
  ev.ts = Timestamp::from_seconds(123);
  ev.source = "firewall";
  ev.severity = 2;
  ev.subject = Ipv4Address(10, 2, 0, 1);
  ev.message = "deny";
  add(MsgType::kIngestLog, 0, encode_log_event(ev));
  add(MsgType::kIngestLogOk, 0, {});

  ShardQueryPlan plan;
  plan.query.about_host(Ipv4Address(10, 2, 0, 1)).on_port(443).top(100);
  plan.after_id = 101;
  plan.max_rows = 50;
  add(MsgType::kQuery, 1, encode_query_plan(plan));

  ShardQueryRows rows;
  rows.rows = {batch.rows[1], batch.rows[4]};
  rows.exhausted = true;
  rows.stats.index = IndexKind::kHost;
  rows.stats.segments_pinned = 2;
  rows.stats.segments_scanned = 1;
  rows.stats.index_hits = 2;
  rows.stats.rows_scanned = 2;
  add(MsgType::kQueryRows, 1, encode_query_rows(rows));

  AggregatePlan agg;
  agg.query.with_label(TrafficLabel::kBenign);
  agg.group_by = GroupBy::kPort;
  agg.top_k = 3;
  add(MsgType::kAggregate, 0, encode_aggregate_plan(agg));

  AggregateResult agg_result;
  agg_result.group_by = GroupBy::kPort;
  agg_result.matched_flows = 6;
  agg_result.rows = {{443, 5, 60, 5555}, {53, 1, 12, 1017}};
  agg_result.stats.index = IndexKind::kLabel;
  add(MsgType::kAggregateReply, 0, encode_aggregate_result(agg_result));

  LogQuery lq;
  lq.from_source("firewall").at_least_severity(1).top(10);
  add(MsgType::kQueryLogs, 0, encode_log_query(lq));
  add(MsgType::kLogReply, 0, encode_log_reply({ev}));

  CatalogInfo info;
  info.total_flows = 8;
  info.total_packets = 108;
  info.total_bytes = 8476;
  info.total_log_events = 1;
  info.segments = 1;
  info.earliest = Timestamp::from_seconds(100);
  info.latest = Timestamp::from_seconds(172);
  info.flows_per_label[0] = 6;
  info.flows_per_label[3] = 2;
  add(MsgType::kCatalog, 0, {});
  add(MsgType::kCatalogReply, 0, encode_catalog(info));

  add(MsgType::kFlowCount, 0, {});
  add(MsgType::kFlowCountReply, 0, encode_flow_count(8));

  add(MsgType::kPing, 0, {});
  add(MsgType::kPong, 0, {});
  add(MsgType::kError, 0,
      encode_error(Error::make("node_dead", "node 2 marked dead")));
  return out;
}

std::string golden_path() {
  return std::string(CAMPUSLAB_TEST_DATA_DIR) + "/golden_shard_rpc_v2.bin";
}

TEST(WireGolden, FixturePinsV2ByteFormat) {
  const auto bytes = golden_stream();

  // Layout invariants independent of the fixture file.
  ASSERT_GE(bytes.size(), kHeaderSize);
  EXPECT_EQ(bytes[0], 'C');
  EXPECT_EQ(bytes[1], 'L');
  EXPECT_EQ(bytes[2], 'R');
  EXPECT_EQ(bytes[3], 'P');
  EXPECT_EQ(bytes[4], kVersion);

  const auto path = golden_path();
  if (std::getenv("CAMPUSLAB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "golden fixture regenerated at " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing " << path
                  << " — regenerate with CAMPUSLAB_UPDATE_GOLDEN=1";
  std::vector<std::uint8_t> golden{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  ASSERT_EQ(bytes.size(), golden.size())
      << "CLRP01 wire format changed size; if intentional, bump "
         "wire::kVersion and regenerate with CAMPUSLAB_UPDATE_GOLDEN=1";
  EXPECT_EQ(bytes, golden)
      << "CLRP01 wire format changed; if intentional, bump wire::kVersion "
         "and regenerate with CAMPUSLAB_UPDATE_GOLDEN=1";
}

TEST(WireGolden, CommittedFixtureStillDecodes) {
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture — regenerate with "
                     "CAMPUSLAB_UPDATE_GOLDEN=1";
  std::vector<std::uint8_t> golden{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  FrameAssembler assembler;
  assembler.feed(golden);
  std::size_t frames = 0;
  std::vector<MsgType> types;
  while (true) {
    auto next = assembler.next();
    ASSERT_TRUE(next.ok()) << next.error().message;
    if (!next.value().has_value()) break;
    const Frame frame = std::move(*next.value());
    types.push_back(frame.header.type);
    // Every body decodes through its own codec.
    switch (frame.header.type) {
      case MsgType::kIngest:
        EXPECT_TRUE(decode_ingest(frame.body).ok());
        break;
      case MsgType::kIngestAck:
        EXPECT_TRUE(decode_ingest_ack(frame.body).ok());
        break;
      case MsgType::kIngestLog:
        EXPECT_TRUE(decode_log_event(frame.body).ok());
        break;
      case MsgType::kQuery:
        EXPECT_TRUE(decode_query_plan(frame.body).ok());
        break;
      case MsgType::kQueryRows:
        EXPECT_TRUE(decode_query_rows(frame.body).ok());
        break;
      case MsgType::kAggregate:
        EXPECT_TRUE(decode_aggregate_plan(frame.body).ok());
        break;
      case MsgType::kAggregateReply:
        EXPECT_TRUE(decode_aggregate_result(frame.body).ok());
        break;
      case MsgType::kQueryLogs:
        EXPECT_TRUE(decode_log_query(frame.body).ok());
        break;
      case MsgType::kLogReply:
        EXPECT_TRUE(decode_log_reply(frame.body).ok());
        break;
      case MsgType::kCatalogReply:
        EXPECT_TRUE(decode_catalog(frame.body).ok());
        break;
      case MsgType::kFlowCountReply:
        EXPECT_TRUE(decode_flow_count(frame.body).ok());
        break;
      case MsgType::kError: {
        Error out;
        EXPECT_TRUE(decode_error(frame.body, out).ok());
        break;
      }
      default:
        EXPECT_TRUE(frame.body.empty());
        break;
    }
    ++frames;
  }
  EXPECT_EQ(frames, 17u) << "one frame per v1 message type";
  EXPECT_EQ(assembler.buffered(), 0u);
  // The stream exercises every v1 type exactly once.
  for (const MsgType t :
       {MsgType::kIngest, MsgType::kIngestLog, MsgType::kQuery,
        MsgType::kAggregate, MsgType::kQueryLogs, MsgType::kCatalog,
        MsgType::kFlowCount, MsgType::kPing, MsgType::kIngestAck,
        MsgType::kIngestLogOk, MsgType::kQueryRows, MsgType::kAggregateReply,
        MsgType::kLogReply, MsgType::kCatalogReply, MsgType::kFlowCountReply,
        MsgType::kPong, MsgType::kError}) {
    EXPECT_EQ(std::count(types.begin(), types.end(), t), 1)
        << "type " << static_cast<int>(t);
  }
}

}  // namespace
}  // namespace campuslab::store::wire

// Decoder fuzz suite: tens of thousands of seeded, mutated
// Ethernet/IPv4/UDP/TCP/ICMP/DNS frames through the eager PacketView
// decode and the on-demand DNS parser. The decoders must never crash,
// read out of bounds (the ASAN CI job runs this binary), or loop on
// adversarial compression pointers — malformed input is an error
// Result or an invalid view, nothing more. Also pins the spreader
// property that undecodable frames do not hot-spot one capture shard.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campuslab/capture/sharded_engine.h"
#include "campuslab/packet/builder.h"
#include "campuslab/packet/dns.h"
#include "campuslab/packet/view.h"
#include "campuslab/util/rng.h"

namespace campuslab {
namespace {

using packet::DnsMessage;
using packet::DnsType;
using packet::Endpoint;
using packet::Ipv4Address;
using packet::MacAddress;
using packet::PacketBuilder;
using packet::PacketView;
using packet::TcpFlags;

Endpoint random_endpoint(Rng& rng) {
  return Endpoint{
      MacAddress::from_id(static_cast<std::uint32_t>(rng.below(1 << 16))),
      Ipv4Address(10, static_cast<std::uint8_t>(rng.below(256)),
                  static_cast<std::uint8_t>(rng.below(256)),
                  static_cast<std::uint8_t>(rng.below(256))),
      static_cast<std::uint16_t>(rng.below(65536))};
}

/// A well-formed frame of a random flavor — the seed corpus member.
std::vector<std::uint8_t> random_valid_frame(Rng& rng) {
  const auto ts = Timestamp::from_nanos(static_cast<std::int64_t>(
      rng.below(1'000'000'000)));
  const auto src = random_endpoint(rng);
  const auto dst = random_endpoint(rng);
  PacketBuilder b(ts);
  switch (rng.below(4)) {
    case 0:
      b.udp(src, dst).payload_size(rng.below(512));
      break;
    case 1:
      b.tcp(src, dst, static_cast<std::uint8_t>(rng.below(64)),
            static_cast<std::uint32_t>(rng.below(1u << 31)),
            static_cast<std::uint32_t>(rng.below(1u << 31)))
          .payload_size(rng.below(512));
      break;
    case 2:
      b.icmp(src, dst);
      break;
    default: {
      // DNS over UDP: query or padded amplification-style response.
      auto query = packet::make_dns_query(
          static_cast<std::uint16_t>(rng.below(65536)),
          "host" + std::to_string(rng.below(1000)) + ".example.com",
          rng.chance(0.5) ? DnsType::kA : DnsType::kAny);
      if (rng.chance(0.5)) {
        const auto resp =
            packet::make_dns_response(query, 1 + rng.below(8),
                                      64 + rng.below(1024));
        return packet::build_dns_packet(ts, src, dst, resp).copy_bytes();
      }
      return packet::build_dns_packet(ts, src, dst, query).copy_bytes();
    }
  }
  return b.build().copy_bytes();
}

/// One random structural mutation, in place.
void mutate(Rng& rng, std::vector<std::uint8_t>& frame) {
  switch (rng.below(6)) {
    case 0:  // truncate anywhere, including to zero
      frame.resize(rng.below(frame.size() + 1));
      break;
    case 1: {  // flip 1-8 random bytes
      if (frame.empty()) break;
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t i = 0; i < flips; ++i)
        frame[rng.below(frame.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      break;
    }
    case 2: {  // zero a random region (wipes length/offset fields)
      if (frame.empty()) break;
      const std::size_t begin = rng.below(frame.size());
      const std::size_t len = rng.below(frame.size() - begin + 1);
      for (std::size_t i = begin; i < begin + len; ++i) frame[i] = 0;
      break;
    }
    case 3: {  // saturate a random region (maxes the same fields)
      if (frame.empty()) break;
      const std::size_t begin = rng.below(frame.size());
      const std::size_t len = rng.below(frame.size() - begin + 1);
      for (std::size_t i = begin; i < begin + len; ++i) frame[i] = 0xFF;
      break;
    }
    case 4: {  // append random garbage (trailing junk past L3 length)
      const std::size_t extra = 1 + rng.below(64);
      for (std::size_t i = 0; i < extra; ++i)
        frame.push_back(static_cast<std::uint8_t>(rng.below(256)));
      break;
    }
    default: {  // replace wholesale with noise
      frame.resize(rng.below(256));
      for (auto& byte : frame)
        byte = static_cast<std::uint8_t>(rng.below(256));
      break;
    }
  }
}

/// Walk every accessor a pipeline stage would touch. The return value
/// defeats dead-code elimination; the assertions are "did not crash".
std::uint64_t exercise_view(const PacketView& view) {
  std::uint64_t acc = view.frame_size();
  if (view.is_ipv4()) {
    acc += view.ipv4().protocol;
    acc += view.ipv4().total_length;
  }
  if (view.is_tcp()) acc += view.tcp().flags;
  if (view.is_udp()) acc += view.udp().dst_port;
  if (view.is_icmp()) acc += view.icmp().type;
  acc += view.payload().size();
  if (const auto tuple = view.five_tuple()) acc += tuple->hash();
  if (view.is_dns()) {
    // On-demand app-layer parse: must return an error Result for junk,
    // never crash or hang (compression-pointer loops are bounded).
    const auto dns = view.dns();
    if (dns.ok()) acc += dns.value().questions.size();
  }
  return acc;
}

TEST(DecoderFuzz, MutatedFramesNeverCrashTheDecoders) {
  constexpr int kIterations = 20000;  // ISSUE floor is 10k
  Rng rng(0xC0FFEE);
  capture::ShardedCaptureEngine engine({.shards = 8, .ring_capacity = 64});
  std::vector<std::uint64_t> reject_shard_counts(engine.shards(), 0);
  std::uint64_t rejects = 0;
  std::uint64_t sink = 0;

  for (int i = 0; i < kIterations; ++i) {
    auto frame = random_valid_frame(rng);
    // Keep a sprinkle of pristine frames so the corpus always contains
    // deep, fully-decodable structure; mutate the rest 1-3 times.
    if (!rng.chance(0.1)) {
      const std::size_t rounds = 1 + rng.below(3);
      for (std::size_t r = 0; r < rounds; ++r) mutate(rng, frame);
    }

    const PacketView view{std::span<const std::uint8_t>(frame)};
    sink += exercise_view(view);

    // Adversarial app-layer input, independent of UDP framing: feed the
    // (possibly mutated) tail straight to the DNS parser.
    if (!frame.empty() && rng.chance(0.25)) {
      const std::size_t begin = rng.below(frame.size());
      const auto slice =
          std::span<const std::uint8_t>(frame).subspan(begin);
      const auto parsed = DnsMessage::parse(slice);
      if (parsed.ok()) sink += parsed.value().answers.size();
    }

    // Spreader anti-hot-spot property: frames without an IPv4 5-tuple
    // must spread by byte hash, not pin one shard.
    if (!view.five_tuple().has_value()) {
      ++rejects;
      ++reject_shard_counts[engine.shard_of(view)];
    }
  }

  // The mutation mix reliably produces thousands of undecodable frames;
  // if this floor fails the corpus generator regressed.
  ASSERT_GT(rejects, 1000u);
  for (std::size_t s = 0; s < reject_shard_counts.size(); ++s) {
    EXPECT_LT(reject_shard_counts[s], rejects * 2 / 5)
        << "rejects hot-spotted shard " << s << " ("
        << reject_shard_counts[s] << " of " << rejects << ")";
  }
  // Keep `sink` alive so the exercise loops cannot be optimized out.
  EXPECT_NE(sink, std::uint64_t{0x5EED});
}

TEST(DecoderFuzz, TruncationLadderIsTotal) {
  // Every prefix of a deep valid frame (Eth/IPv4/UDP/DNS response)
  // decodes without fault — the boundary-check sweep a random fuzzer
  // can miss between its samples.
  Rng rng(42);
  const auto query = packet::make_dns_query(7, "ladder.example.com",
                                            DnsType::kAny);
  const auto resp = packet::make_dns_response(query, 4, 512);
  const auto frame =
      packet::build_dns_packet(Timestamp::from_nanos(0), random_endpoint(rng),
                               random_endpoint(rng), resp)
          .copy_bytes();
  std::uint64_t sink = 0;
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    const auto prefix = std::span<const std::uint8_t>(frame).first(len);
    sink += exercise_view(PacketView{prefix});
    const auto parsed = DnsMessage::parse(
        prefix.size() > 42 ? prefix.subspan(42) : prefix);
    if (parsed.ok()) sink += parsed.value().answer_bytes();
  }
  EXPECT_NE(sink, std::uint64_t{0x5EED});
}

TEST(DecoderFuzz, DnsCompressionPointerLoopTerminates) {
  // Hand-built malice: a DNS "response" whose name is a compression
  // pointer to itself. parse() must hit its jump limit and error out.
  std::vector<std::uint8_t> payload = {
      0x12, 0x34,              // id
      0x81, 0x80,              // response flags
      0x00, 0x01,              // qdcount = 1
      0x00, 0x00, 0x00, 0x00,  // ancount
      0x00, 0x00,              // arcount... (nscount/arcount)
      0xC0, 0x0C,              // name: pointer to offset 12 (itself)
      0x00, 0x01, 0x00, 0x01,  // qtype/qclass
  };
  const auto parsed = DnsMessage::parse(payload);
  EXPECT_FALSE(parsed.ok());
}

TEST(DecoderFuzz, ViewOfEmptyAndTinyFramesIsInvalid) {
  EXPECT_FALSE(PacketView{std::span<const std::uint8_t>{}}.valid());
  const std::vector<std::uint8_t> tiny = {0xDE, 0xAD, 0xBE, 0xEF};
  const PacketView view{std::span<const std::uint8_t>(tiny)};
  EXPECT_FALSE(view.valid());
  EXPECT_FALSE(view.five_tuple().has_value());
  EXPECT_FALSE(view.is_dns());
}

}  // namespace
}  // namespace campuslab
